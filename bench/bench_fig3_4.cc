// Figures 3 & 4: the three threshold-optimized base algorithms on the
// citation All-words corpus.
//
//   Fig 3: running time vs dataset size at fixed T.
//   Fig 4: running time vs threshold at fixed size.
//
// Paper shape: ProbeCount-optMerge is ~an order of magnitude faster than
// Word-Groups except at very low thresholds (T = 20% of the average set
// size) where Word-Groups can win; PairCount-optMerge only completes tiny
// inputs before exhausting memory (plotted as "dnf").

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

JoinOptions BoundedOptions() {
  JoinOptions options;
  // The paper's Pair-Count runs ran out of 1 GB at 20k records; this cap
  // emulates that abort so sweeps finish.
  options.pair_count.max_aggregated_pairs = 20u * 1000 * 1000;
  // Safety valves against the Word-Groups exponential blowup at very low
  // thresholds (the paper reports multi-hour runs there).
  options.word_groups.apriori.max_level = 8;
  options.word_groups.apriori.deadline_seconds = 15;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<uint32_t> sizes;
  for (uint32_t n : {1000, 2000, 4000, 6000}) sizes.push_back(Scaled(n, scale));
  const double fixed_t = 17;  // ~70% of the average set size
  std::vector<double> thresholds = {5, 9, 13, 17, 21};
  uint32_t fixed_size = sizes.back();

  std::vector<std::string> texts = CitationTexts(sizes.back());
  JoinOptions options = BoundedOptions();

  std::printf("# Figure 3: running time (s) vs dataset size, T=%.0f "
              "(citation All-words)\n",
              fixed_t);
  PrintRow({"records", "ProbeCount-optMerge", "PairCount-optMerge",
            "Word-Groups-optMerge"});
  for (uint32_t n : sizes) {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, n, &dict);
    OverlapPredicate pred(fixed_t);
    PrintRow({std::to_string(n),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kProbeOptMerge,
                            options)),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kPairCountOptMerge,
                            options)),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kWordGroupsOptMerge,
                            options))});
  }

  std::printf("\n# Figure 4: running time (s) vs threshold, %u records "
              "(citation All-words)\n",
              fixed_size);
  PrintRow({"threshold", "ProbeCount-optMerge", "PairCount-optMerge",
            "Word-Groups-optMerge"});
  {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, fixed_size, &dict);
    for (double t : thresholds) {
      OverlapPredicate pred(t);
      PrintRow({std::to_string((int)t),
                Cell(TimeJoin(corpus, pred, JoinAlgorithm::kProbeOptMerge,
                              options)),
                Cell(TimeJoin(corpus, pred,
                              JoinAlgorithm::kPairCountOptMerge, options)),
                Cell(TimeJoin(corpus, pred,
                              JoinAlgorithm::kWordGroupsOptMerge, options))});
    }
  }
  return 0;
}
