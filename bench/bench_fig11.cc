// Figure 11: ClusterMem under shrinking memory budgets. Three panels:
//
//   (a) citation data, several dataset sizes, fixed threshold;
//   (b) citation data, several thresholds, fixed size;
//   (c) address data, several dataset sizes, fixed threshold.
//
// Each series reports running time normalized to the full-memory run
// (index fraction 1.0), exactly as the paper's y-axis. Paper shape:
// memory / 5 => time x ~1.5; memory / 50 => time x <= ~2.5.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

const double kFractions[] = {1.0, 0.5, 0.2, 0.1, 0.05, 0.02};

/// One series: normalized ClusterMem time per index-size fraction.
std::vector<double> Series(const RecordSet& corpus, double threshold) {
  OverlapPredicate pred(threshold);
  uint64_t full_index = corpus.total_token_occurrences();
  std::vector<double> times;
  for (double fraction : kFractions) {
    JoinOptions options;
    options.cluster_mem.memory_budget_postings = std::max<uint64_t>(
        1, static_cast<uint64_t>(fraction * full_index));
    options.cluster_mem.temp_dir = "/tmp";
    times.push_back(
        TimeJoin(corpus, pred, JoinAlgorithm::kClusterMem, options).seconds);
  }
  double base = times[0] > 0 ? times[0] : 1e-9;
  for (double& t : times) t /= base;
  return times;
}

void PrintPanel(const char* title, const std::vector<std::string>& labels,
                const std::vector<std::vector<double>>& series) {
  std::printf("%s\n", title);
  std::vector<std::string> header = {"index_fraction"};
  header.insert(header.end(), labels.begin(), labels.end());
  PrintRow(header);
  for (size_t f = 0; f < std::size(kFractions); ++f) {
    std::vector<std::string> row;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", kFractions[f]);
    row.push_back(buf);
    for (const std::vector<double>& s : series) {
      std::snprintf(buf, sizeof(buf), "%.2f", s[f]);
      row.push_back(buf);
    }
    PrintRow(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<uint32_t> citation_sizes = {Scaled(4000, scale),
                                          Scaled(8000, scale),
                                          Scaled(16000, scale)};
  std::vector<double> citation_thresholds = {9, 13, 17};
  std::vector<uint32_t> address_sizes = {Scaled(4000, scale),
                                         Scaled(8000, scale),
                                         Scaled(16000, scale)};

  std::vector<std::string> citation_texts = CitationTexts(
      citation_sizes.back());
  std::vector<std::string> address_texts = AddressTexts(address_sizes.back());

  {
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (uint32_t n : citation_sizes) {
      TokenDictionary dict;
      RecordSet corpus = WordCorpusPrefix(citation_texts, n, &dict);
      labels.push_back("Datasize=" + std::to_string(n));
      series.push_back(Series(corpus, 17));
    }
    PrintPanel("# Figure 11a: normalized time vs index-size fraction "
               "(citation, T=17)",
               labels, series);
  }
  {
    TokenDictionary dict;
    RecordSet corpus =
        WordCorpusPrefix(citation_texts, citation_sizes[1], &dict);
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (double t : citation_thresholds) {
      labels.push_back("T=" + std::to_string((int)t));
      series.push_back(Series(corpus, t));
    }
    std::printf("\n");
    PrintPanel("# Figure 11b: normalized time vs index-size fraction "
               "(citation, varying T)",
               labels, series);
  }
  {
    std::vector<std::string> labels;
    std::vector<std::vector<double>> series;
    for (uint32_t n : address_sizes) {
      TokenDictionary dict;
      RecordSet corpus = QGramCorpusPrefix(address_texts, n, &dict);
      labels.push_back("Datasize=" + std::to_string(n));
      series.push_back(Series(corpus, 40));
    }
    std::printf("\n");
    PrintPanel("# Figure 11c: normalized time vs index-size fraction "
               "(address, T=40)",
               labels, series);
  }
  return 0;
}
