// Figures 5 & 6: the three threshold-optimized base algorithms on the
// address All-3grams corpus.
//
//   Fig 5: running time vs dataset size at fixed T = 40.
//   Fig 6: running time vs threshold at fixed size.
//
// Paper shape: same ordering as Figures 3/4, and the ProbeCount-optMerge
// vs Word-Groups gap widens at large absolute thresholds (T = 45) because
// more weight-T word combinations mean more redundant itemsets.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

JoinOptions BoundedOptions() {
  JoinOptions options;
  options.pair_count.max_aggregated_pairs = 20u * 1000 * 1000;
  // 3-gram corpora are Word-Groups' worst case (the paper reports runs of
  // 1000s of seconds and non-completion); the valves keep the join exact
  // while bounding each cell.
  options.word_groups.apriori.max_level = 8;
  options.word_groups.apriori.deadline_seconds = 15;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<uint32_t> sizes;
  for (uint32_t n : {500, 1000, 2000, 3000}) sizes.push_back(Scaled(n, scale));
  const double fixed_t = 40;  // address 3-gram sets average ~47
  std::vector<double> thresholds = {20, 25, 30, 35, 40, 45};
  uint32_t fixed_size = Scaled(2000, scale);

  std::vector<std::string> texts = AddressTexts(sizes.back());
  JoinOptions options = BoundedOptions();

  std::printf("# Figure 5: running time (s) vs dataset size, T=%.0f "
              "(address All-3grams)\n",
              fixed_t);
  PrintRow({"records", "ProbeCount-optMerge", "PairCount-optMerge",
            "Word-Groups-optMerge"});
  for (uint32_t n : sizes) {
    TokenDictionary dict;
    RecordSet corpus = QGramCorpusPrefix(texts, n, &dict);
    OverlapPredicate pred(fixed_t);
    PrintRow({std::to_string(n),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kProbeOptMerge,
                            options)),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kPairCountOptMerge,
                            options)),
              Cell(TimeJoin(corpus, pred, JoinAlgorithm::kWordGroupsOptMerge,
                            options))});
  }

  std::printf("\n# Figure 6: running time (s) vs threshold, %u records "
              "(address All-3grams)\n",
              fixed_size);
  PrintRow({"threshold", "ProbeCount-optMerge", "PairCount-optMerge",
            "Word-Groups-optMerge"});
  {
    TokenDictionary dict;
    RecordSet corpus = QGramCorpusPrefix(texts, fixed_size, &dict);
    for (double t : thresholds) {
      OverlapPredicate pred(t);
      PrintRow({std::to_string((int)t),
                Cell(TimeJoin(corpus, pred, JoinAlgorithm::kProbeOptMerge,
                              options)),
                Cell(TimeJoin(corpus, pred,
                              JoinAlgorithm::kPairCountOptMerge, options)),
                Cell(TimeJoin(corpus, pred,
                              JoinAlgorithm::kWordGroupsOptMerge, options))});
    }
  }
  return 0;
}
