#ifndef SSJOIN_BENCH_BENCH_UTIL_H_
#define SSJOIN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/join.h"
#include "data/address_generator.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

namespace ssjoin {
namespace bench {

/// Raw texts for the two evaluation corpora. Generated once at the
/// largest size a bench needs; prefixes give smaller corpora with
/// identical records (the generators are sequential), matching how the
/// paper sweeps dataset size.
inline std::vector<std::string> CitationTexts(uint32_t max_records,
                                              uint64_t seed = 42) {
  CitationGeneratorOptions options;
  options.num_records = max_records;
  options.seed = seed;
  return CitationGenerator(options).Generate();
}

inline std::vector<std::string> AddressTexts(uint32_t max_records,
                                             uint64_t seed = 1234) {
  AddressGeneratorOptions options;
  options.num_records = max_records;
  options.seed = seed;
  return AddressGenerator(options).GenerateFullTexts();
}

/// The paper's "All-words" corpus over the first `n` texts.
inline RecordSet WordCorpusPrefix(const std::vector<std::string>& texts,
                                  size_t n, TokenDictionary* dict) {
  std::vector<std::string> slice(texts.begin(),
                                 texts.begin() + std::min(n, texts.size()));
  return BuildWordCorpus(slice, dict);
}

/// The paper's "All-3grams" corpus over the first `n` texts.
inline RecordSet QGramCorpusPrefix(const std::vector<std::string>& texts,
                                   size_t n, TokenDictionary* dict) {
  std::vector<std::string> slice(texts.begin(),
                                 texts.begin() + std::min(n, texts.size()));
  return BuildQGramCorpus(slice, 3, dict);
}

struct RunResult {
  bool completed = false;  // false: aborted (e.g. Pair-Count memory blowup)
  double seconds = 0;
  uint64_t pairs = 0;
  JoinStats stats;
};

/// Copies the corpus (outside the timed region), runs the join and times
/// it end to end (Prepare + algorithm), like the paper's wall-clock
/// measurements.
inline RunResult TimeJoin(const RecordSet& base, const Predicate& pred,
                          JoinAlgorithm algorithm,
                          JoinOptions options = {}) {
  RecordSet working = base;
  RunResult result;
  Timer timer;
  Result<JoinStats> stats =
      RunJoin(&working, pred, algorithm, options,
              [&result](RecordId, RecordId) { ++result.pairs; });
  result.seconds = timer.ElapsedSeconds();
  if (!stats.ok()) return result;  // completed stays false
  result.completed = true;
  result.stats = stats.value();
  return result;
}

/// Formats a run for a series cell: seconds, or "dnf" for aborted runs
/// (the paper plots these algorithms as missing points).
inline std::string Cell(const RunResult& result) {
  if (!result.completed) return "dnf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", result.seconds);
  return buf;
}

/// --scale=<float> multiplies every dataset size in a bench; --quick
/// is shorthand for --scale=0.25.
inline double ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      double scale = std::atof(argv[i] + 8);
      if (scale > 0) return scale;
    }
    if (std::strcmp(argv[i], "--quick") == 0) return 0.25;
  }
  return 1.0;
}

inline uint32_t Scaled(uint32_t n, double scale) {
  return static_cast<uint32_t>(std::max(1.0, n * scale));
}

/// --threads=<N> sets JoinOptions::num_threads for benches that support
/// parallel probing (default 1 = serial, matching the paper's setup).
inline int ParseThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int threads = std::atoi(argv[i] + 10);
      if (threads >= 1) return threads;
      std::fprintf(stderr, "ignoring invalid %s\n", argv[i]);
    }
  }
  return 1;
}

/// Prints a CSV header + rows helper.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? "," : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace ssjoin

#endif  // SSJOIN_BENCH_BENCH_UTIL_H_
