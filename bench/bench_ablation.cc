// Ablations over the design choices DESIGN.md calls out:
//
//   (a) band-partition strategies (Section 5.3): Simple vs Greedy vs
//       Optimal partition cost and end-to-end edit-distance join time,
//       vs the default inline filter;
//   (b) stopword budget sweep for Probe-stopWords;
//   (c) Probe-Cluster assignment-similarity knob (cluster count vs time);
//   (d) posting-list compression ratio on both corpora (the Section 4
//       "orthogonal IR compression" headroom).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/band_partition.h"
#include "core/edit_distance_predicate.h"
#include "core/overlap_predicate.h"
#include "index/compressed_postings.h"
#include "util/timer.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

void BandPartitionAblation(double scale) {
  uint32_t n = Scaled(3000, scale);
  std::vector<std::string> texts = AddressTexts(n);
  TokenDictionary dict;
  RecordSet base = QGramCorpusPrefix(texts, n, &dict);
  const int k = 2;
  EditDistancePredicate pred(k, 3);

  std::printf("# Ablation (a): Section 5.3 filter evaluation strategies, "
              "edit distance <= %d, %u addresses\n",
              k, n);
  PrintRow({"strategy", "partitions", "partition_cost", "seconds", "pairs"});

  {
    RunResult inline_run = TimeJoin(base, pred, JoinAlgorithm::kProbeCluster);
    char secs[32], pairs[32];
    std::snprintf(secs, sizeof(secs), "%.3f", inline_run.seconds);
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(inline_run.pairs));
    PrintRow({"inline-filter", "1", "-", secs, pairs});
  }
  for (BandStrategy strategy : {BandStrategy::kSimple, BandStrategy::kGreedy,
                                BandStrategy::kOptimal}) {
    const char* name = strategy == BandStrategy::kSimple   ? "simple"
                       : strategy == BandStrategy::kGreedy ? "greedy"
                                                           : "optimal";
    RecordSet working = base;
    pred.Prepare(&working);
    // Partition cost (the DP objective).
    std::vector<RecordId> ids(working.size());
    auto partitions = BandPartitionByNorm(working, k, strategy);
    uint64_t cost = 0;
    for (const auto& p : partitions) cost += p.size() * p.size();

    RecordSet timed = base;
    uint64_t pair_count = 0;
    Timer timer;
    Result<JoinStats> stats = BandPartitionedJoin(
        &timed, pred, k, strategy,
        [&pair_count](RecordId, RecordId) { ++pair_count; });
    double seconds = timer.ElapsedSeconds();
    if (!stats.ok()) continue;
    char cost_buf[32], secs[32], pairs[32];
    std::snprintf(cost_buf, sizeof(cost_buf), "%llu",
                  static_cast<unsigned long long>(cost));
    std::snprintf(secs, sizeof(secs), "%.3f", seconds);
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(pair_count));
    PrintRow({name, std::to_string(partitions.size()), cost_buf, secs,
              pairs});
  }
}

void StopwordAblation(double scale) {
  uint32_t n = Scaled(6000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, n, &dict);

  std::printf("\n# Ablation (b): Probe vs Probe-stopWords vs Probe-optMerge "
              "across thresholds, %u citations\n",
              n);
  PrintRow({"threshold", "Probe", "Probe-stopWords", "Probe-optMerge",
            "pairs"});
  for (double t : {9, 13, 17, 21}) {
    OverlapPredicate pred(t);
    RunResult plain = TimeJoin(corpus, pred, JoinAlgorithm::kProbeCount);
    RunResult stop = TimeJoin(corpus, pred, JoinAlgorithm::kProbeStopwords);
    RunResult opt = TimeJoin(corpus, pred, JoinAlgorithm::kProbeOptMerge);
    char pairs[32];
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(opt.pairs));
    PrintRow({std::to_string((int)t), Cell(plain), Cell(stop), Cell(opt),
              pairs});
  }
}

void ClusterKnobAblation(double scale) {
  uint32_t n = Scaled(10000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, n, &dict);
  OverlapPredicate pred(17);

  std::printf("\n# Ablation (c): Probe-Cluster assignment-similarity "
              "threshold, %u citations, T=17\n",
              n);
  PrintRow({"assign_similarity", "seconds", "index_postings", "pairs"});
  for (double sim : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    JoinOptions options;
    options.cluster.cluster.assign_similarity_threshold = sim;
    RunResult r =
        TimeJoin(corpus, pred, JoinAlgorithm::kProbeCluster, options);
    char sim_buf[32], postings[32], pairs[32];
    std::snprintf(sim_buf, sizeof(sim_buf), "%.1f", sim);
    std::snprintf(postings, sizeof(postings), "%llu",
                  static_cast<unsigned long long>(r.stats.index_postings));
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(r.pairs));
    PrintRow({sim_buf, Cell(r), postings, pairs});
  }
}

void CompressionAblation(double scale) {
  std::printf("\n# Ablation (d): varint-delta posting compression "
              "(Section 4's orthogonal IR-compression headroom)\n");
  PrintRow({"corpus", "postings", "raw_bytes", "compressed_bytes", "ratio"});
  auto report = [](const char* name, const RecordSet& corpus) {
    InvertedIndex index;
    for (RecordId id = 0; id < corpus.size(); ++id) {
      index.Insert(id, corpus.record(id));
    }
    IndexCompressionStats stats = CompressIndex(index);
    char postings[32], raw[32], compressed[32], ratio[32];
    std::snprintf(postings, sizeof(postings), "%llu",
                  static_cast<unsigned long long>(stats.total_postings));
    std::snprintf(raw, sizeof(raw), "%llu",
                  static_cast<unsigned long long>(stats.uncompressed_bytes));
    std::snprintf(compressed, sizeof(compressed), "%llu",
                  static_cast<unsigned long long>(stats.compressed_bytes));
    std::snprintf(ratio, sizeof(ratio), "%.3f", stats.ratio());
    PrintRow({name, postings, raw, compressed, ratio});
  };
  {
    uint32_t n = Scaled(10000, scale);
    std::vector<std::string> texts = CitationTexts(n);
    TokenDictionary dict;
    report("citation-words", WordCorpusPrefix(texts, n, &dict));
  }
  {
    uint32_t n = Scaled(10000, scale);
    std::vector<std::string> texts = AddressTexts(n);
    TokenDictionary dict;
    report("address-3grams", QGramCorpusPrefix(texts, n, &dict));
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  BandPartitionAblation(scale);
  StopwordAblation(scale);
  ClusterKnobAblation(scale);
  CompressionAblation(scale);
  return 0;
}
