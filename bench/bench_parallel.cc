// Parallel probe scaling: serial vs multi-threaded wall clock for the
// probe-family and prefix-filter joins on the citation corpus. Not a
// paper figure (the paper's experiments are single-threaded); this
// validates that ParallelProbeDriver turns cores into speedup while the
// output stays byte-identical to serial.
//
//   bench_parallel [--scale=X] [--threads=N ...]
//
// With no --threads flags, measures 1, 2, 4 and the hardware default.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "util/thread_pool.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int threads = std::atoi(argv[i] + 10);
      if (threads >= 1) thread_counts.push_back(threads);
    }
  }
  if (thread_counts.empty()) {
    thread_counts = {1, 2, 4};
    int hw = ThreadPool::DefaultNumThreads();
    if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
        thread_counts.end()) {
      thread_counts.push_back(hw);
    }
  }

  uint32_t n = Scaled(12000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, n, &dict);

  struct Case {
    const char* label;
    JoinAlgorithm algorithm;
  };
  const Case cases[] = {
      {"Probe-optMerge", JoinAlgorithm::kProbeOptMerge},
      {"Probe", JoinAlgorithm::kProbeCount},
      {"PrefixFilter", JoinAlgorithm::kPrefixFilter},
  };

  std::printf("# Parallel probe scaling, %u records (citation All-words), "
              "overlap T=9 / jaccard f=0.6\n",
              n);
  PrintRow({"algorithm", "predicate", "threads", "seconds", "speedup",
            "pairs"});
  for (const Case& c : cases) {
    OverlapPredicate overlap(9);
    JaccardPredicate jaccard(0.6);
    const Predicate* predicates[] = {
        static_cast<const Predicate*>(&overlap),
        static_cast<const Predicate*>(&jaccard)};
    for (const Predicate* pred : predicates) {
      double serial_seconds = 0;
      uint64_t serial_pairs = 0;
      for (int threads : thread_counts) {
        JoinOptions options;
        options.num_threads = threads;
        RunResult result = TimeJoin(corpus, *pred, c.algorithm, options);
        if (!result.completed) {
          PrintRow({c.label, pred->name(), std::to_string(threads), "dnf",
                    "-", "-"});
          continue;
        }
        if (threads == thread_counts.front()) {
          serial_seconds = result.seconds;
          serial_pairs = result.pairs;
        } else if (result.pairs != serial_pairs) {
          std::fprintf(stderr,
                       "MISMATCH: %s/%s at %d threads emitted %llu pairs, "
                       "serial emitted %llu\n",
                       c.label, pred->name().c_str(), threads,
                       static_cast<unsigned long long>(result.pairs),
                       static_cast<unsigned long long>(serial_pairs));
          return 1;
        }
        char seconds_buf[32], speedup_buf[32];
        std::snprintf(seconds_buf, sizeof(seconds_buf), "%.3f",
                      result.seconds);
        std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                      serial_seconds / std::max(result.seconds, 1e-9));
        PrintRow({c.label, pred->name(), std::to_string(threads),
                  seconds_buf, speedup_buf, std::to_string(result.pairs)});
      }
    }
  }
  return 0;
}
