// Figures 8 & 10: the cumulative Probe-Count optimization ladder on the
// address All-3grams corpus.
//
//   Fig 8: running time vs dataset size (averaged over thresholds).
//   Fig 10: running time vs threshold at fixed size.
//
// Paper shape: same ladder as Figures 7/9 but clustering gains less than
// on citations — the address data has fewer high-overlap record groups.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

const JoinAlgorithm kLadder[] = {
    JoinAlgorithm::kProbeOptMerge,
    JoinAlgorithm::kProbeOnline,
    JoinAlgorithm::kProbeSort,
    JoinAlgorithm::kProbeCluster,
};

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<uint32_t> sizes;
  for (uint32_t n : {4000, 8000, 12000, 16000}) {
    sizes.push_back(Scaled(n, scale));
  }
  std::vector<double> thresholds = {25, 30, 35, 40, 45};
  uint32_t fixed_size = Scaled(8000, scale);

  std::vector<std::string> texts = AddressTexts(sizes.back());

  std::printf("# Figure 8: running time (s) vs dataset size, averaged over "
              "thresholds {25,30,35,40,45} (address All-3grams)\n");
  PrintRow({"records", "ProbeCount-optMerge", "ProbeCount-online",
            "ProbeCount-sort", "Cluster"});
  for (uint32_t n : sizes) {
    TokenDictionary dict;
    RecordSet corpus = QGramCorpusPrefix(texts, n, &dict);
    std::vector<std::string> row = {std::to_string(n)};
    for (JoinAlgorithm algorithm : kLadder) {
      double total = 0;
      for (double t : thresholds) {
        OverlapPredicate pred(t);
        total += TimeJoin(corpus, pred, algorithm).seconds;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", total / thresholds.size());
      row.push_back(buf);
    }
    PrintRow(row);
  }

  std::printf("\n# Figure 10: running time (s) vs threshold, %u records "
              "(address All-3grams; paper plots log scale)\n",
              fixed_size);
  PrintRow({"threshold", "ProbeCount-optMerge", "ProbeCount-online",
            "ProbeCount-sort", "Cluster"});
  {
    TokenDictionary dict;
    RecordSet corpus = QGramCorpusPrefix(texts, fixed_size, &dict);
    for (double t : thresholds) {
      OverlapPredicate pred(t);
      std::vector<std::string> row = {std::to_string((int)t)};
      for (JoinAlgorithm algorithm : kLadder) {
        row.push_back(Cell(TimeJoin(corpus, pred, algorithm)));
      }
      PrintRow(row);
    }
  }
  return 0;
}
