#!/usr/bin/env sh
# Network serving bench: boots ssjoin_server over a synthetic corpus and
# sweeps the closed-loop load generator across connection counts,
# emitting the JSON rows recorded under "net_serving" in
# BENCH_serve.json.
#
#   bench/run_net_bench.sh [build-dir]
#
# Knobs (env): SSJOIN_NET_RECORDS (corpus size, default 20000),
# SSJOIN_NET_OPS (requests per connection per sweep point, default
# 2000), SSJOIN_NET_PIPELINE (in-flight requests per connection,
# default 8), SSJOIN_NET_CONNECTIONS (sweep list, default 1,8,64,256),
# SSJOIN_NET_THREADS (server worker event loops, default 4),
# SSJOIN_NET_INSERT_PCT / SSJOIN_NET_DELETE_PCT (op mix, default 0/0 —
# pure query replay, matching the bench_serve point-lookup rows).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
records=${SSJOIN_NET_RECORDS:-20000}
ops=${SSJOIN_NET_OPS:-2000}
pipeline=${SSJOIN_NET_PIPELINE:-8}
connections=${SSJOIN_NET_CONNECTIONS:-1,8,64,256}
net_threads=${SSJOIN_NET_THREADS:-4}
insert_pct=${SSJOIN_NET_INSERT_PCT:-0}
delete_pct=${SSJOIN_NET_DELETE_PCT:-0}

server="$build_dir/tools/ssjoin_server"
loadgen="$build_dir/tools/ssjoin_loadgen"
for binary in "$server" "$loadgen"; do
  if [ ! -x "$binary" ]; then
    echo "missing $binary — build the tools first (cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

workdir=$(mktemp -d)
server_pid=
cleanup() {
  [ -n "$server_pid" ] && kill -KILL "$server_pid" 2>/dev/null
  rm -rf "$workdir"
}
trap cleanup EXIT

# Synthetic corpus: zipf-ish skew via rand()*rand(), the same flavor of
# token-frequency skew the in-process benches use.
awk -v n="$records" 'BEGIN {
  srand(42)
  for (i = 0; i < n; i++) {
    len = 5 + int(rand() * 10)
    line = ""
    for (t = 0; t < len; t++) {
      w = int(rand() * rand() * 5000)
      line = line "w" w (t + 1 < len ? " " : "")
    }
    print line
  }
}' > "$workdir/corpus"

"$server" --corpus="$workdir/corpus" --predicate=jaccard --threshold=0.6 \
  --port=0 --net-threads="$net_threads" \
  > "$workdir/stdout" 2> "$workdir/stderr" &
server_pid=$!

port=
tries=0
while [ $tries -lt 600 ]; do
  port=$(sed -n 's/^PORT //p' "$workdir/stdout")
  [ -n "$port" ] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "server died during startup:" >&2
    cat "$workdir/stderr" >&2
    exit 1
  fi
  sleep 0.1
  tries=$((tries + 1))
done
if [ -z "$port" ]; then
  echo "server never printed the PORT handshake" >&2
  exit 1
fi
echo "server up on port $port ($records records); sweeping connections=$connections pipeline=$pipeline ops/conn=$ops" >&2

"$loadgen" --port="$port" --input="$workdir/corpus" \
  --connections="$connections" --pipeline="$pipeline" --ops="$ops" \
  --insert-pct="$insert_pct" --delete-pct="$delete_pct" --json

kill -TERM "$server_pid"
wait "$server_pid" || {
  echo "server exited non-zero after SIGTERM" >&2
  exit 1
}
server_pid=
grep 'served ' "$workdir/stderr" >&2 || true
