// Figures 1 & 2: the threshold-sensitive merge optimization.
//
//   Fig 1: running time vs dataset size (averaged over thresholds) for
//          Probe, Probe-stopWords and Probe-optMerge on citation words.
//   Fig 2: running time vs threshold T at a fixed dataset size.
//
// Paper shape to reproduce: Probe-optMerge beats Probe by 1-2 orders of
// magnitude at high thresholds (factor ~80 at T = 87% of the average set
// size) and still >5x at low thresholds; Probe-stopWords lands between;
// optMerge's curve drops super-linearly as T grows.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

const JoinAlgorithm kAlgorithms[] = {
    JoinAlgorithm::kProbeCount,
    JoinAlgorithm::kProbeStopwords,
    JoinAlgorithm::kProbeOptMerge,
};

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  JoinOptions join_options;
  join_options.num_threads = ParseThreads(argc, argv);
  // The unoptimized Probe baseline is quadratic-ish; sizes stay modest.
  std::vector<uint32_t> sizes;
  for (uint32_t n : {1000, 2000, 3000, 4500, 6000}) {
    sizes.push_back(Scaled(n, scale));
  }
  std::vector<double> thresholds = {5, 9, 13, 17, 21};  // avg set size ~24
  uint32_t fixed_size = sizes.back();

  std::vector<std::string> texts = CitationTexts(sizes.back());

  std::printf("# Figure 1: running time (s) vs dataset size, averaged over "
              "thresholds {5,9,13,17,21} (citation All-words)\n");
  PrintRow({"records", "Probe", "Probe-stopWords", "Probe-optMerge"});
  for (uint32_t n : sizes) {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, n, &dict);
    std::vector<std::string> row = {std::to_string(n)};
    for (JoinAlgorithm algorithm : kAlgorithms) {
      double total = 0;
      for (double t : thresholds) {
        OverlapPredicate pred(t);
        total += TimeJoin(corpus, pred, algorithm, join_options).seconds;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", total / thresholds.size());
      row.push_back(buf);
    }
    PrintRow(row);
  }

  std::printf("\n# Figure 2: running time (s) vs threshold T, %u records "
              "(citation All-words)\n",
              fixed_size);
  PrintRow({"threshold", "Probe", "Probe-stopWords", "Probe-optMerge"});
  {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, fixed_size, &dict);
    for (double t : thresholds) {
      OverlapPredicate pred(t);
      std::vector<std::string> row = {std::to_string((int)t)};
      for (JoinAlgorithm algorithm : kAlgorithms) {
        row.push_back(Cell(TimeJoin(corpus, pred, algorithm, join_options)));
      }
      PrintRow(row);
    }
  }
  return 0;
}
