// Figures 7 & 9: the cumulative Probe-Count optimization ladder on
// citation words — optMerge -> online -> sort -> Cluster.
//
//   Fig 7: running time vs dataset size (averaged over thresholds).
//   Fig 9: running time vs threshold at fixed size (log axis in the
//          paper; we print raw seconds).
//
// Paper shape: online is 2-3x faster than optMerge, sort up to another
// 2x, and clustering helps most on the duplicate-heavy citation data;
// the full ladder is ~2 orders of magnitude below the original Probe.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

const JoinAlgorithm kLadder[] = {
    JoinAlgorithm::kProbeOptMerge,
    JoinAlgorithm::kProbeOnline,
    JoinAlgorithm::kProbeSort,
    JoinAlgorithm::kProbeCluster,
};

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  std::vector<uint32_t> sizes;
  for (uint32_t n : {5000, 10000, 20000, 30000}) {
    sizes.push_back(Scaled(n, scale));
  }
  std::vector<double> thresholds = {9, 13, 17, 21};
  uint32_t fixed_size = Scaled(10000, scale);

  std::vector<std::string> texts = CitationTexts(sizes.back());

  std::printf("# Figure 7: running time (s) vs dataset size, averaged over "
              "thresholds {9,13,17,21} (citation All-words)\n");
  PrintRow({"records", "ProbeCount-optMerge", "ProbeCount-online",
            "ProbeCount-sort", "Cluster"});
  for (uint32_t n : sizes) {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, n, &dict);
    std::vector<std::string> row = {std::to_string(n)};
    for (JoinAlgorithm algorithm : kLadder) {
      double total = 0;
      for (double t : thresholds) {
        OverlapPredicate pred(t);
        total += TimeJoin(corpus, pred, algorithm).seconds;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", total / thresholds.size());
      row.push_back(buf);
    }
    PrintRow(row);
  }

  std::printf("\n# Figure 9: running time (s) vs threshold, %u records "
              "(citation All-words; paper plots log scale)\n",
              fixed_size);
  PrintRow({"threshold", "ProbeCount-optMerge", "ProbeCount-online",
            "ProbeCount-sort", "Cluster"});
  {
    TokenDictionary dict;
    RecordSet corpus = WordCorpusPrefix(texts, fixed_size, &dict);
    for (double t : thresholds) {
      OverlapPredicate pred(t);
      std::vector<std::string> row = {std::to_string((int)t)};
      for (JoinAlgorithm algorithm : kLadder) {
        row.push_back(Cell(TimeJoin(corpus, pred, algorithm)));
      }
      PrintRow(row);
    }
  }
  return 0;
}
