// Figure 12: the generality claim — running time as a function of output
// size for three different join predicates (intersect size, Jaccard
// coefficient, TF-IDF cosine) at two dataset sizes. If the general
// framework optimizes every predicate equally well, the three curves lie
// close together (the paper reports within 20-30%).
//
// Each predicate sweeps its own threshold range; we report (output pairs,
// seconds) points per predicate, sorted by output size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cosine_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

struct Point {
  uint64_t pairs;
  double seconds;
};

void RunPanel(const RecordSet& corpus) {
  std::vector<std::pair<std::string, std::vector<Point>>> curves;

  {
    std::vector<Point> points;
    for (double t : {7, 9, 11, 13, 15, 17, 19, 21}) {
      OverlapPredicate pred(t);
      RunResult r = TimeJoin(corpus, pred, JoinAlgorithm::kProbeCluster);
      points.push_back({r.pairs, r.seconds});
    }
    curves.emplace_back("IntersectSize", points);
  }
  {
    std::vector<Point> points;
    for (double f : {0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}) {
      JaccardPredicate pred(f);
      RunResult r = TimeJoin(corpus, pred, JoinAlgorithm::kProbeCluster);
      points.push_back({r.pairs, r.seconds});
    }
    curves.emplace_back("Jaccard", points);
  }
  {
    std::vector<Point> points;
    for (double f : {0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.97}) {
      CosinePredicate pred(f);
      RunResult r = TimeJoin(corpus, pred, JoinAlgorithm::kProbeCluster);
      points.push_back({r.pairs, r.seconds});
    }
    curves.emplace_back("Cosine", points);
  }

  PrintRow({"predicate", "output_pairs", "seconds"});
  for (auto& [name, points] : curves) {
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) { return a.pairs < b.pairs; });
    for (const Point& p : points) {
      char pairs_buf[32], secs_buf[32];
      std::snprintf(pairs_buf, sizeof(pairs_buf), "%llu",
                    static_cast<unsigned long long>(p.pairs));
      std::snprintf(secs_buf, sizeof(secs_buf), "%.3f", p.seconds);
      PrintRow({name, pairs_buf, secs_buf});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  uint32_t large = Scaled(12000, scale);
  uint32_t small = Scaled(5000, scale);

  std::vector<std::string> texts = CitationTexts(large);

  std::printf("# Figure 12 (top): time vs output size, %u records "
              "(citation All-words)\n",
              large);
  {
    TokenDictionary dict;
    RunPanel(WordCorpusPrefix(texts, large, &dict));
  }
  std::printf("\n# Figure 12 (bottom): time vs output size, %u records\n",
              small);
  {
    TokenDictionary dict;
    RunPanel(WordCorpusPrefix(texts, small, &dict));
  }
  return 0;
}
