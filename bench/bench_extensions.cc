// Extension benchmarks (beyond the paper's figures):
//
//   (a) prefix filtering (AllPairs-style) vs the paper's MergeOpt ladder
//       on a Jaccard join — the successor idea against the original;
//   (b) Word-Groups miners: level-wise Apriori vs depth-first vertical
//       (the FP-growth stand-in) — time and peak open-state;
//   (c) top-k join scaling in k.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "core/topk_join.h"
#include "util/timer.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

void PrefixVsMergeOpt(double scale) {
  uint32_t n = Scaled(15000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, n, &dict);

  std::printf("# Extension (a): prefix filter vs the MergeOpt ladder, "
              "Jaccard join, %u citations\n",
              n);
  PrintRow({"jaccard_f", "ProbeCount-sort", "Cluster", "PrefixFilter",
            "prefix_index_postings", "pairs"});
  for (double f : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    JaccardPredicate pred(f);
    RunResult sort = TimeJoin(corpus, pred, JoinAlgorithm::kProbeSort);
    RunResult cluster = TimeJoin(corpus, pred, JoinAlgorithm::kProbeCluster);
    RunResult prefix = TimeJoin(corpus, pred, JoinAlgorithm::kPrefixFilter);
    char f_buf[16], postings[32], pairs[32];
    std::snprintf(f_buf, sizeof(f_buf), "%.1f", f);
    std::snprintf(postings, sizeof(postings), "%llu",
                  static_cast<unsigned long long>(
                      prefix.stats.index_postings));
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(prefix.pairs));
    PrintRow({f_buf, Cell(sort), Cell(cluster), Cell(prefix), postings,
              pairs});
  }
}

void MinerComparison(double scale) {
  uint32_t n = Scaled(3000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, n, &dict);

  // Paper, Section 2.4: "An FP-growth based implementation took much less
  // memory but did not complete in two hours" — expect the DFS column to
  // be slower (it shares no work across siblings) while holding only one
  // root-to-leaf chain in memory. Valves bound each cell.
  std::printf("\n# Extension (b): Word-Groups miners, %u citations\n", n);
  PrintRow({"threshold", "apriori_seconds", "dfs_seconds", "pairs"});
  for (double t : {9, 13, 17}) {
    OverlapPredicate pred(t);
    JoinOptions apriori_options;
    apriori_options.word_groups.miner = WordGroupsMiner::kApriori;
    apriori_options.word_groups.apriori.deadline_seconds = 20;
    JoinOptions dfs_options;
    dfs_options.word_groups.miner = WordGroupsMiner::kDepthFirst;
    dfs_options.word_groups.apriori.deadline_seconds = 20;
    RunResult apriori = TimeJoin(corpus, pred,
                                 JoinAlgorithm::kWordGroupsOptMerge,
                                 apriori_options);
    RunResult dfs = TimeJoin(corpus, pred,
                             JoinAlgorithm::kWordGroupsOptMerge,
                             dfs_options);
    char pairs[32];
    std::snprintf(pairs, sizeof(pairs), "%llu",
                  static_cast<unsigned long long>(dfs.pairs));
    PrintRow({std::to_string((int)t), Cell(apriori), Cell(dfs), pairs});
  }
}

void TopKScaling(double scale) {
  uint32_t n = Scaled(15000, scale);
  std::vector<std::string> texts = CitationTexts(n);
  TokenDictionary dict;
  RecordSet base = WordCorpusPrefix(texts, n, &dict);

  std::printf("\n# Extension (c): top-k Jaccard join scaling in k, "
              "%u citations\n",
              n);
  PrintRow({"k", "seconds", "kth_score"});
  for (size_t k : {1u, 10u, 100u, 1000u, 10000u}) {
    RecordSet working = base;
    JoinStats stats;
    Timer timer;
    Result<std::vector<TopKMatch>> result =
        TopKJoin(&working, TopKMetric::kJaccard, k, &stats);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) continue;
    char secs[32], kth[32];
    std::snprintf(secs, sizeof(secs), "%.3f", seconds);
    std::snprintf(kth, sizeof(kth), "%.4f",
                  result.value().empty() ? 0.0
                                         : result.value().back().score);
    PrintRow({std::to_string(k), secs, kth});
  }
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  PrefixVsMergeOpt(scale);
  MinerComparison(scale);
  TopKScaling(scale);
  return 0;
}
