// Substrate microbenchmarks (google-benchmark): the primitives whose
// constants drive the figure-level results — heap merge vs MergeOpt,
// galloping search, MinHash signatures, varint coding, banded vs full
// edit distance.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/merge_opt.h"
#include "index/compressed_postings.h"
#include "index/posting_list.h"
#include "minhash/minhash.h"
#include "text/edit_distance.h"
#include "util/rng.h"
#include "util/varint.h"

namespace ssjoin {
namespace {

std::vector<PostingList> SkewedLists(int num_lists, uint32_t universe,
                                     uint64_t seed) {
  // One hot list (every other id) + progressively sparser lists, the skew
  // regime MergeOpt exploits.
  Rng rng(seed);
  std::vector<PostingList> lists(num_lists);
  for (int i = 0; i < num_lists; ++i) {
    double density = i == 0 ? 0.5 : 0.5 / (i * 4);
    for (uint32_t id = 0; id < universe; ++id) {
      if (rng.Bernoulli(density)) lists[i].Append(id, 1.0);
    }
  }
  return lists;
}

void BM_MergePlain(benchmark::State& state) {
  std::vector<PostingList> lists = SkewedLists(8, 20000, 1);
  std::vector<const PostingList*> ptrs;
  for (const auto& l : lists) ptrs.push_back(&l);
  std::vector<double> scores(lists.size(), 1.0);
  double threshold = static_cast<double>(state.range(0));
  for (auto _ : state) {
    ListMerger merger(ptrs, scores, threshold, nullptr, nullptr,
                      {.split_lists = false}, nullptr);
    MergeCandidate c;
    uint64_t count = 0;
    while (merger.Next(&c)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MergePlain)->Arg(3)->Arg(5)->Arg(7);

void BM_MergeOpt(benchmark::State& state) {
  std::vector<PostingList> lists = SkewedLists(8, 20000, 1);
  std::vector<const PostingList*> ptrs;
  for (const auto& l : lists) ptrs.push_back(&l);
  std::vector<double> scores(lists.size(), 1.0);
  double threshold = static_cast<double>(state.range(0));
  for (auto _ : state) {
    ListMerger merger(ptrs, scores, threshold, nullptr, nullptr,
                      {.split_lists = true}, nullptr);
    MergeCandidate c;
    uint64_t count = 0;
    while (merger.Next(&c)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MergeOpt)->Arg(3)->Arg(5)->Arg(7);

void BM_GallopFind(benchmark::State& state) {
  PostingList list;
  for (uint32_t id = 0; id < 1u << 20; id += 2) list.Append(id, 1.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.GallopFind(rng.NextU32() % (1u << 20)));
  }
}
BENCHMARK(BM_GallopFind);

void BM_MinHashSignature(benchmark::State& state) {
  MinHasher hasher(static_cast<int>(state.range(0)), 7);
  Rng rng(9);
  std::vector<uint32_t> ids(200);
  for (uint32_t& id : ids) id = rng.NextU32();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(ids));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(64);

void BM_VarintDeltaRoundTrip(benchmark::State& state) {
  Rng rng(11);
  std::vector<uint32_t> ids;
  uint32_t v = 0;
  for (int i = 0; i < 10000; ++i) {
    v += 1 + rng.UniformU32(50);
    ids.push_back(v);
  }
  for (auto _ : state) {
    std::string encoded = EncodeDeltaList(ids);
    std::vector<uint32_t> decoded;
    DecodeDeltaList(encoded, &decoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_VarintDeltaRoundTrip);

void BM_EditDistanceFull(benchmark::State& state) {
  Rng rng(13);
  std::string a(64, 'x'), b(64, 'x');
  for (char& c : a) c = static_cast<char>('a' + rng.UniformU32(26));
  b = a;
  b[10] = '!';
  b[40] = '?';
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull);

void BM_EditDistanceBanded(benchmark::State& state) {
  Rng rng(13);
  std::string a(64, 'x');
  for (char& c : a) c = static_cast<char>('a' + rng.UniformU32(26));
  std::string b = a;
  b[10] = '!';
  b[40] = '?';
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceAtMost(a, b, k));
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(2)->Arg(4);

void BM_CompressPostingList(benchmark::State& state) {
  PostingList list;
  Rng rng(15);
  uint32_t id = 0;
  for (int i = 0; i < 10000; ++i) {
    id += 1 + rng.UniformU32(20);
    list.Append(id, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompressedPostingList::FromPostingList(list));
  }
}
BENCHMARK(BM_CompressPostingList);

}  // namespace
}  // namespace ssjoin
