// Substrate microbenchmarks (google-benchmark): the primitives whose
// constants drive the figure-level results — heap merge vs MergeOpt,
// galloping search, MinHash signatures, varint coding, banded vs full
// edit distance — plus the storage-layout benches (index build and probe
// throughput with heap-allocation counters) that track the CSR arena.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/merge_opt.h"
#include "core/overlap_predicate.h"
#include "core/probe_common.h"
#include "core/probe_join.h"
#include "data/record_set.h"
#include "index/compressed_postings.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "minhash/minhash.h"
#include "text/edit_distance.h"
#include "util/rng.h"
#include "util/varint.h"

// Global allocation counter: every operator new in the process bumps it,
// so a delta across a timed region counts heap allocations exactly. Used
// by the layout benches to verify the probe loop performs zero per-record
// allocations.
static std::atomic<uint64_t> g_alloc_calls{0};

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ssjoin {
namespace {

std::vector<PostingList> SkewedLists(int num_lists, uint32_t universe,
                                     uint64_t seed) {
  // One hot list (every other id) + progressively sparser lists, the skew
  // regime MergeOpt exploits.
  Rng rng(seed);
  std::vector<PostingList> lists(num_lists);
  for (int i = 0; i < num_lists; ++i) {
    double density = i == 0 ? 0.5 : 0.5 / (i * 4);
    for (uint32_t id = 0; id < universe; ++id) {
      if (rng.Bernoulli(density)) lists[i].Append(id, 1.0);
    }
  }
  return lists;
}

void BM_MergePlain(benchmark::State& state) {
  std::vector<PostingList> lists = SkewedLists(8, 20000, 1);
  std::vector<PostingListView> views;
  for (const auto& l : lists) views.push_back(l.view());
  std::vector<double> scores(lists.size(), 1.0);
  double threshold = static_cast<double>(state.range(0));
  for (auto _ : state) {
    ListMerger merger(views, scores, threshold, nullptr, nullptr,
                      {.split_lists = false}, nullptr);
    MergeCandidate c;
    uint64_t count = 0;
    while (merger.Next(&c)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MergePlain)->Arg(3)->Arg(5)->Arg(7);

void BM_MergeOpt(benchmark::State& state) {
  std::vector<PostingList> lists = SkewedLists(8, 20000, 1);
  std::vector<PostingListView> views;
  for (const auto& l : lists) views.push_back(l.view());
  std::vector<double> scores(lists.size(), 1.0);
  double threshold = static_cast<double>(state.range(0));
  for (auto _ : state) {
    ListMerger merger(views, scores, threshold, nullptr, nullptr,
                      {.split_lists = true}, nullptr);
    MergeCandidate c;
    uint64_t count = 0;
    while (merger.Next(&c)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MergeOpt)->Arg(3)->Arg(5)->Arg(7);

void BM_GallopFind(benchmark::State& state) {
  PostingList list;
  for (uint32_t id = 0; id < 1u << 20; id += 2) list.Append(id, 1.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.GallopFind(rng.NextU32() % (1u << 20)));
  }
}
BENCHMARK(BM_GallopFind);

void BM_MinHashSignature(benchmark::State& state) {
  MinHasher hasher(static_cast<int>(state.range(0)), 7);
  Rng rng(9);
  std::vector<uint32_t> ids(200);
  for (uint32_t& id : ids) id = rng.NextU32();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(ids));
  }
}
BENCHMARK(BM_MinHashSignature)->Arg(16)->Arg(64);

void BM_VarintDeltaRoundTrip(benchmark::State& state) {
  Rng rng(11);
  std::vector<uint32_t> ids;
  uint32_t v = 0;
  for (int i = 0; i < 10000; ++i) {
    v += 1 + rng.UniformU32(50);
    ids.push_back(v);
  }
  for (auto _ : state) {
    std::string encoded = EncodeDeltaList(ids);
    std::vector<uint32_t> decoded;
    DecodeDeltaList(encoded, &decoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_VarintDeltaRoundTrip);

void BM_EditDistanceFull(benchmark::State& state) {
  Rng rng(13);
  std::string a(64, 'x'), b(64, 'x');
  for (char& c : a) c = static_cast<char>('a' + rng.UniformU32(26));
  b = a;
  b[10] = '!';
  b[40] = '?';
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceFull);

void BM_EditDistanceBanded(benchmark::State& state) {
  Rng rng(13);
  std::string a(64, 'x');
  for (char& c : a) c = static_cast<char>('a' + rng.UniformU32(26));
  std::string b = a;
  b[10] = '!';
  b[40] = '?';
  size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceAtMost(a, b, k));
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(2)->Arg(4);

// ---- Storage-layout benches (BENCH_layout.json before/after) -----------

RecordSet MakeLayoutBenchSet(uint32_t num_records, uint32_t vocab,
                             uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(vocab, 0.9);
  RecordSet set;
  for (uint32_t i = 0; i < num_records; ++i) {
    std::vector<TokenId> tokens;
    int count = rng.UniformInt(4, 24);
    for (int t = 0; t < count; ++t) tokens.push_back(zipf.Sample(rng));
    set.Add(Record::FromTokens(tokens), "");
  }
  return set;
}

void BM_LayoutIndexBuild(benchmark::State& state) {
  RecordSet set =
      MakeLayoutBenchSet(static_cast<uint32_t>(state.range(0)), 600, 21);
  OverlapPredicate pred(4.0);
  pred.Prepare(&set);
  uint64_t postings = set.total_token_occurrences();
  for (auto _ : state) {
    InvertedIndex index;
    index.PlanFromRecords(set);
    for (RecordId id = 0; id < set.size(); ++id) {
      index.Insert(id, set.record(id));
    }
    benchmark::DoNotOptimize(index.total_postings());
  }
  state.SetItemsProcessed(state.iterations() * set.size());  // records/s
  state.counters["postings/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * postings),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LayoutIndexBuild)->Arg(2000)->Arg(10000);

void BM_LayoutProbe(benchmark::State& state) {
  RecordSet set =
      MakeLayoutBenchSet(static_cast<uint32_t>(state.range(0)), 600, 22);
  OverlapPredicate pred(4.0);
  pred.Prepare(&set);
  InvertedIndex index;
  index.PlanFromRecords(set);
  for (RecordId id = 0; id < set.size(); ++id) {
    index.Insert(id, set.record(id));
  }
  const uint32_t n = set.size();
  std::vector<PostingListView> lists;
  std::vector<double> probe_scores;
  ListMerger merger;
  MergeStats merge_stats;
  uint64_t candidates = 0;
  uint64_t allocs = 0;
  // Untimed warm-up pass: grows the scratch buffers to steady-state
  // capacity so the timed counter isolates per-probe allocations.
  for (RecordId id = 0; id < n; ++id) {
    const RecordView probe = set.record(id);
    double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
    CollectProbeLists(index, probe, &lists, &probe_scores);
    merger.Reset(lists, probe_scores, floor, nullptr, nullptr,
                 {.split_lists = true}, &merge_stats);
    MergeCandidate candidate;
    while (merger.Next(&candidate)) {
    }
  }
  merge_stats = MergeStats();
  for (auto _ : state) {
    uint64_t alloc_start = g_alloc_calls.load(std::memory_order_relaxed);
    for (RecordId id = 0; id < n; ++id) {
      const RecordView probe = set.record(id);
      double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
      CollectProbeLists(index, probe, &lists, &probe_scores);
      merger.Reset(lists, probe_scores, floor, nullptr, nullptr,
                   {.split_lists = true}, &merge_stats);
      MergeCandidate candidate;
      while (merger.Next(&candidate)) ++candidates;
    }
    allocs += g_alloc_calls.load(std::memory_order_relaxed) - alloc_start;
  }
  benchmark::DoNotOptimize(candidates);
  state.SetItemsProcessed(state.iterations() * n);  // probes/s
  state.counters["postings/s"] = benchmark::Counter(
      static_cast<double>(merge_stats.heap_pops + merge_stats.gallop_probes),
      benchmark::Counter::kIsRate);
  state.counters["allocs_per_probe"] =
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * n);
}
BENCHMARK(BM_LayoutProbe)->Arg(2000)->Arg(10000);

// The bitmap-sweep workload: near-duplicate detection over a
// boilerplate-heavy corpus, the regime the prefilter targets. Three
// vocabulary tiers model citation records: a small boilerplate band
// (venue/publisher strings — 40% of records carry nearly all of it, the
// rest almost none), a mid band of common phrase tokens, and a long
// tail of content tokens. 30% of records are lightly edited copies of
// an earlier record, so a high overlap threshold has real matches to
// find. Under Probe-stopWords the boilerplate band becomes the stopword
// set, so boilerplate-heavy probes get tiny reduced thresholds and the
// merge emits swarms of candidates that merely share a few mid-band
// tokens. Full verification rejects them — and the parity bitmaps bound
// the clean ones out near 12, far under the threshold, so the bitmap
// gate skips those verifications wholesale. (Total distinct tokens per
// record stay near 55, well below 256-bit parity saturation.)
constexpr uint32_t kBenchBoilerplate = 26;  // boilerplate band tokens
constexpr uint32_t kBenchMidBand = 30;      // common-phrase band tokens

RecordSet MakeBitmapBenchSet(uint32_t num_records, uint32_t vocab,
                             uint64_t seed) {
  Rng rng(seed);
  RecordSet set;
  std::vector<std::vector<TokenId>> bodies;
  bodies.reserve(num_records);
  const uint32_t tail_base = kBenchBoilerplate + kBenchMidBand;
  for (uint32_t i = 0; i < num_records; ++i) {
    std::vector<TokenId> tokens;
    if (!bodies.empty() && rng.Bernoulli(0.3)) {
      tokens = bodies[rng.UniformU32(static_cast<uint32_t>(bodies.size()))];
      int edits = rng.UniformInt(1, 4);
      for (int e = 0; e < edits; ++e) {
        tokens[rng.UniformU32(static_cast<uint32_t>(tokens.size()))] =
            tail_base + rng.UniformU32(vocab - tail_base);
      }
    } else {
      // Boilerplate presence is bimodal so the corpus frequency of the
      // band stays above the mid band (stopword selection is by corpus
      // frequency) while clean records share almost none of it.
      const double boiler_rate = rng.Bernoulli(0.4) ? 0.95 : 0.04;
      for (uint32_t b = 0; b < kBenchBoilerplate; ++b) {
        if (rng.Bernoulli(boiler_rate)) tokens.push_back(b);
      }
      for (int m = 0; m < 12; ++m) {
        tokens.push_back(kBenchBoilerplate + rng.UniformU32(kBenchMidBand));
      }
      int tail = rng.UniformInt(18, 30);
      for (int t = 0; t < tail; ++t) {
        tokens.push_back(tail_base + rng.UniformU32(vocab - tail_base));
      }
    }
    bodies.push_back(tokens);
    set.Add(Record::FromTokens(tokens), "");
  }
  return set;
}

// Bitmap-prefilter sweep (BENCH_layout.json bitmap section): the
// serving-style probe (ProbeOne under per-candidate required bounds)
// over corpora of increasing size, with the token-bitmap gate off
// (words = 0) and fully on (words = 4). Vocabulary grows with the
// corpus so per-list lengths — and thus per-probe cost — stay roughly
// flat while the candidate population scales. The gate may only skip
// gallop work, never change the candidate stream, so the bench ABORTS
// if a gated run's candidate count deviates from the ungated baseline.
// The label records the merge backend; pin with SSJOIN_FORCE_SCALAR=1
// and re-run for the scalar column.
void BM_LayoutProbeBitmap(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const size_t gate_words = static_cast<size_t>(state.range(1));
  RecordSet set = MakeBitmapBenchSet(n, n, 23);
  OverlapPredicate pred(28.0);
  pred.Prepare(&set);
  InvertedIndex index;
  index.PlanFromRecords(set);
  for (RecordId id = 0; id < set.size(); ++id) {
    index.Insert(id, set.record(id));
  }
  const uint32_t probes =
      static_cast<uint32_t>(std::min<size_t>(set.size(), 2000));
  probe_internal::ProbeScratch scratch;
  auto lookup = [&set](RecordId m) {
    const TokenBitmapEntry& e = set.token_bitmap_entry(m);
    return BitmapCandidate{e.bits, static_cast<uint32_t>(e.tokens)};
  };
  auto run_pass = [&](size_t words, MergeStats* stats) {
    uint64_t candidates = 0;
    auto emit = [&candidates](const MergeCandidate&) { ++candidates; };
    for (RecordId q = 0; q < probes; ++q) {
      const RecordView probe = set.record(q);
      double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
      auto required_fn = [&](RecordId m) {
        return pred.ThresholdForNorms(probe.norm(), set.record(m).norm());
      };
      FunctionRef<double(RecordId)> required = required_fn;
      BitmapGate gate;
      gate.lookup = lookup;
      gate.probe_bits = set.token_bitmap(q);
      gate.probe_tokens = static_cast<uint32_t>(probe.size());
      gate.words = words;
      probe_internal::ProbeOne(index, probe, floor, required, nullptr,
                               MergeOptions{}, stats, &scratch, emit,
                               words > 0 ? &gate : nullptr);
    }
    return candidates;
  };
  // Untimed ungated pass: warms the scratch buffers and pins the
  // candidate count every gated pass must reproduce exactly.
  MergeStats warm_stats;
  const uint64_t baseline = run_pass(0, &warm_stats);
  uint64_t candidates = 0;
  MergeStats timed_stats;
  for (auto _ : state) {
    candidates += run_pass(gate_words, &timed_stats);
  }
  if (candidates != baseline * static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("bitmap-gated probe changed the candidate count");
    return;
  }
  state.SetItemsProcessed(state.iterations() * probes);  // probes/s
  state.SetLabel(ActiveMergeBackend());
  state.counters["pruned_per_probe"] =
      static_cast<double>(timed_stats.bitmap_pruned) /
      static_cast<double>(state.iterations() * probes);
  state.counters["gallops_per_probe"] =
      static_cast<double>(timed_stats.gallop_probes) /
      static_cast<double>(state.iterations() * probes);
}
BENCHMARK(BM_LayoutProbeBitmap)
    ->Args({10000, 0})
    ->Args({10000, 4})
    ->Args({50000, 0})
    ->Args({50000, 4})
    ->Args({100000, 0})
    ->Args({100000, 4})
    ->Unit(benchmark::kMillisecond);

// Join-level bitmap sweep: the stopword join holds candidates to each
// probe's REDUCED threshold and re-verifies every emitted candidate on
// the full records, so the bitmap's emit-level gate skips whole
// verifications (an O(record length) overlap merge each) rather than
// just gallops. Pairs must be identical with the filter on and off —
// the bench ABORTS on any drift in the pair count.
void BM_JoinBitmap(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const bool bitmaps = state.range(1) != 0;
  RecordSet set = MakeBitmapBenchSet(n, n, 24);
  OverlapPredicate pred(28.0);
  pred.Prepare(&set);
  ProbeJoinOptions options;
  options.stopwords = true;
  bool failed = false;
  auto run_join = [&](bool filter, JoinStats* stats) {
    ProbeJoinOptions o = options;
    o.bitmap_filter = filter;
    uint64_t pairs = 0;
    Result<JoinStats> result =
        ProbeJoin(set, pred, o, [&pairs](RecordId, RecordId) { ++pairs; });
    if (!result.ok()) failed = true;
    if (stats != nullptr && result.ok()) *stats = result.value();
    return pairs;
  };
  const uint64_t baseline_pairs = run_join(false, nullptr);
  uint64_t pairs = 0;
  JoinStats stats;
  for (auto _ : state) {
    pairs += run_join(bitmaps, &stats);
  }
  if (failed) {
    state.SkipWithError("ProbeJoin returned an error");
    return;
  }
  if (pairs != baseline_pairs * static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("bitmap-filtered join changed the pair count");
    return;
  }
  state.SetItemsProcessed(state.iterations() * set.size());  // records/s
  state.SetLabel(ActiveMergeBackend());
  state.counters["verified_per_record"] =
      static_cast<double>(stats.candidates_verified) /
      static_cast<double>(set.size());
  state.counters["pruned_per_record"] =
      static_cast<double>(stats.merge.bitmap_pruned) /
      static_cast<double>(set.size());
}
BENCHMARK(BM_JoinBitmap)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_CompressPostingList(benchmark::State& state) {
  PostingList list;
  Rng rng(15);
  uint32_t id = 0;
  for (int i = 0; i < 10000; ++i) {
    id += 1 + rng.UniformU32(20);
    list.Append(id, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompressedPostingList::FromPostingList(list.view()));
  }
}
BENCHMARK(BM_CompressPostingList);

}  // namespace
}  // namespace ssjoin
