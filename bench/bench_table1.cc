// Table 1: similarity functions with the average set size and the number
// of distinct elements, for the four corpus/tokenization combinations the
// paper evaluates (citation All-words / All-3grams, address All-3grams /
// Name-3grams).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/corpus_stats.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::bench;

void Report(const char* function, const RecordSet& records) {
  CorpusStats stats = ComputeCorpusStats(records);
  std::printf("%-24s %16.0f %20llu\n", function, stats.average_set_size,
              static_cast<unsigned long long>(stats.num_distinct_elements));
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  uint32_t citation_n = Scaled(20000, scale);
  uint32_t address_n = Scaled(40000, scale);

  std::printf("Table 1: similarity functions (scaled: %u citations, "
              "%u addresses; paper used 250k / 500k)\n\n",
              citation_n, address_n);
  std::printf("%-24s %16s %20s\n", "Function", "Average set size",
              "Number of elements");

  std::vector<std::string> citations = CitationTexts(citation_n);
  {
    TokenDictionary dict;
    Report("Citation All-words", WordCorpusPrefix(citations, citation_n,
                                                  &dict));
  }
  {
    TokenDictionary dict;
    Report("Citation All-3grams",
           QGramCorpusPrefix(citations, citation_n, &dict));
  }

  AddressGeneratorOptions address_options;
  address_options.num_records = address_n;
  std::vector<AddressRecord> addresses =
      AddressGenerator(address_options).Generate();
  {
    std::vector<std::string> full;
    full.reserve(addresses.size());
    for (const AddressRecord& a : addresses) full.push_back(a.FullText());
    TokenDictionary dict;
    Report("Address All-3grams", QGramCorpusPrefix(full, address_n, &dict));
  }
  {
    std::vector<std::string> names;
    names.reserve(addresses.size());
    for (const AddressRecord& a : addresses) names.push_back(a.name);
    TokenDictionary dict;
    Report("Address Name-3grams",
           QGramCorpusPrefix(names, address_n, &dict));
  }
  std::printf(
      "\npaper (Table 1): All-words 24 / 70000; Citation All-3grams 127 / "
      "29000; Address All-3grams 47 / 37000; Name-3grams 16 / 14000\n");
  return 0;
}
