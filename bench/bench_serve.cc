// Serving-layer benchmark: point-lookup QPS and latency quantiles as a
// function of memtable size, plus batched-query throughput.
//
// The interesting trade-off is the two-tier design: every probe pays for
// the flat base index AND the hash-map memtable, so lookups slow down as
// the memtable grows and recover after compaction. This bench sweeps the
// memtable fill level on a fixed corpus and reports, per level:
//   - point-query QPS and p50/p99/max latency (from ServiceStats)
//   - batched-query records/sec with the service thread pool
//   - the compaction cost to fold that memtable back into the base
//
// Usage: bench_serve [--scale=F | --quick] [--threads=N]

#include <cinttypes>

#include "bench_util.h"
#include "core/jaccard_predicate.h"
#include "serve/similarity_service.h"

using namespace ssjoin;
using namespace ssjoin::bench;

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  int threads = ParseThreads(argc, argv);

  const uint32_t kCorpus = Scaled(20000, scale);
  const uint32_t kQueries = Scaled(2000, scale);
  const uint32_t kMemtableLevels[] = {0, Scaled(64, scale),
                                      Scaled(256, scale), Scaled(1024, scale),
                                      Scaled(4096, scale)};

  std::vector<std::string> texts =
      CitationTexts(kCorpus + kMemtableLevels[4]);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, kCorpus, &dict);
  // Extra records beyond the base corpus feed the memtable; queries replay
  // a prefix of the corpus itself so every lookup does real probe work.
  std::vector<std::string> extra(texts.begin() + kCorpus, texts.end());
  RecordSet inserts = BuildWordCorpus(extra, &dict);
  RecordSet queries = WordCorpusPrefix(texts, kQueries, &dict);

  JaccardPredicate pred(0.6);

  std::printf(
      "memtable,point_qps,p50_us,p99_us,max_us,batch_records_per_sec,"
      "compact_sec\n");
  for (uint32_t level : kMemtableLevels) {
    ServiceOptions options;
    options.memtable_limit = 0;  // manual compaction only
    options.num_threads = threads;
    SimilarityService service(corpus, pred, options);
    for (uint32_t i = 0; i < level && i < inserts.size(); ++i) {
      service.Insert(inserts.record(i), inserts.text(i));
    }

    Timer point_timer;
    for (RecordId q = 0; q < queries.size(); ++q) {
      service.Query(queries.record(q), queries.text(q));
    }
    double point_seconds = point_timer.ElapsedSeconds();

    Timer batch_timer;
    service.BatchQuery(queries);
    double batch_seconds = batch_timer.ElapsedSeconds();

    Timer compact_timer;
    service.Compact();
    double compact_seconds = compact_timer.ElapsedSeconds();

    ServiceStats stats = service.stats();
    std::printf("%u,%.0f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.0f,%.3f\n",
                level, queries.size() / point_seconds,
                stats.query_latency_us.QuantileUpperBound(0.5),
                stats.query_latency_us.QuantileUpperBound(0.99),
                stats.query_latency_us.max_micros(),
                queries.size() / batch_seconds, compact_seconds);
    std::fflush(stdout);
  }
  return 0;
}
