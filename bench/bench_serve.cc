// Serving-layer benchmark: point-lookup QPS and latency quantiles as a
// function of memtable size, plus batched-query throughput, plus the
// shard-count sweep for the token-range-sharded base tier.
//
// The interesting trade-off is the two-tier design: every probe pays for
// the flat base index AND the hash-map memtable, so lookups slow down as
// the memtable grows and recover after compaction. This bench sweeps the
// memtable fill level on a fixed corpus and reports, per level:
//   - point-query QPS and p50/p99/max latency (from ServiceStats)
//   - batched-query records/sec with the service thread pool
//   - the compaction cost to fold that memtable back into the base
//
// The second sweep varies the shard count (answers are byte-identical;
// sharding buys incremental compaction and probe fan-out) and reports,
// per count:
//   - point and batch throughput
//   - full-compaction cost (every shard dirty after a spread of inserts)
//   - dirty-compaction cost (ONE insert, then Compact: only one shard
//     rebuilds) and how many shards that compaction actually rebuilt
//
// The third sweep varies the DELETE rate: with a fixed fraction of the
// corpus tombstoned (pending, uncompacted), point lookups pay the
// per-candidate tombstone check, and the following compaction pays the
// physical drop. Reported per rate: point QPS with tombstones pending,
// the delete throughput itself, and the compaction cost.
//
// The fourth sweep prices durability: insert throughput with every op
// framed into the write-ahead log (both fsync policies) against the
// memory-only baseline, the compaction cost including the checkpoint it
// now writes, the checkpoint size, and the Open() restore time
// (checkpoint load + WAL-tail replay).
//
// The fifth sweep is the bitmap-prefilter claim: point lookups over
// growing corpora with the token-bitmap gate at the serving default
// (256 bits) against a gate-disabled twin on the same corpus and
// queries. The gate may only skip merge work, never change an answer,
// so the sweep ABORTS (exit 1) if the gated service's total result
// count deviates from the ungated baseline.
//
// The sixth sweep is the segmented-compaction scaling claim: a fixed
// 1k-record delta folded into corpora of increasing size, with the
// segment chain (default merge ratio) against the collapse-every-time
// baseline (segment_merge_ratio = 0, the pre-segmented behaviour).
// Steady-state segmented compaction must stay ~flat in the corpus size
// — it builds one delta-sized segment and occasionally merges
// delta-scale neighbours — while the baseline rewrites the whole corpus
// every round.
//
// The seventh sweep prices the out-of-core base tier: the same durable
// corpus opened materialized (resident_budget_bytes = 0, every segment
// arena heap-copied) and mapped (a budget a quarter of the segment
// bytes, arenas served from the mmap'd .sseg files). Reported per mode:
// cold Open time, point QPS, RSS after the query replay and after
// re-applying the residency advice. The sweep ABORTS if the two modes
// disagree on a single result count, or if dropping the over-budget
// segments does not actually shrink RSS.
//
// Usage: bench_serve [--scale=F | --quick] [--threads=N]

#include <sys/stat.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "bench_util.h"
#include "core/jaccard_predicate.h"
#include "serve/checkpoint.h"
#include "serve/similarity_service.h"

using namespace ssjoin;
using namespace ssjoin::bench;

namespace {

/// Resident set size from /proc/self/status, in kilobytes.
uint64_t ResidentKb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScale(argc, argv);
  int threads = ParseThreads(argc, argv);

  const uint32_t kCorpus = Scaled(20000, scale);
  const uint32_t kQueries = Scaled(2000, scale);
  const uint32_t kMemtableLevels[] = {0, Scaled(64, scale),
                                      Scaled(256, scale), Scaled(1024, scale),
                                      Scaled(4096, scale)};

  std::vector<std::string> texts =
      CitationTexts(kCorpus + kMemtableLevels[4]);
  TokenDictionary dict;
  RecordSet corpus = WordCorpusPrefix(texts, kCorpus, &dict);
  // Extra records beyond the base corpus feed the memtable; queries replay
  // a prefix of the corpus itself so every lookup does real probe work.
  std::vector<std::string> extra(texts.begin() + kCorpus, texts.end());
  RecordSet inserts = BuildWordCorpus(extra, &dict);
  RecordSet queries = WordCorpusPrefix(texts, kQueries, &dict);

  JaccardPredicate pred(0.6);

  std::printf(
      "memtable,point_qps,p50_us,p99_us,max_us,batch_records_per_sec,"
      "compact_sec\n");
  for (uint32_t level : kMemtableLevels) {
    ServiceOptions options;
    options.memtable_limit = 0;  // manual compaction only
    options.num_threads = threads;
    SimilarityService service(corpus, pred, options);
    for (uint32_t i = 0; i < level && i < inserts.size(); ++i) {
      service.Insert(inserts.record(i), inserts.text(i));
    }

    Timer point_timer;
    for (RecordId q = 0; q < queries.size(); ++q) {
      service.Query(queries.record(q), queries.text(q));
    }
    double point_seconds = point_timer.ElapsedSeconds();

    Timer batch_timer;
    service.BatchQuery(queries);
    double batch_seconds = batch_timer.ElapsedSeconds();

    Timer compact_timer;
    service.Compact();
    double compact_seconds = compact_timer.ElapsedSeconds();

    ServiceStats stats = service.stats();
    std::printf("%u,%.0f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.0f,%.3f\n",
                level, queries.size() / point_seconds,
                stats.query_latency_us.QuantileUpperBound(0.5),
                stats.query_latency_us.QuantileUpperBound(0.99),
                stats.query_latency_us.max_micros(),
                queries.size() / batch_seconds, compact_seconds);
    std::fflush(stdout);
  }

  const uint32_t kShardInserts = Scaled(512, scale);
  std::printf(
      "\nshards,point_qps,batch_records_per_sec,full_compact_sec,"
      "full_shards_rebuilt,dirty_compact_sec,dirty_shards_rebuilt\n");
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ServiceOptions options;
    options.memtable_limit = 0;
    options.num_threads = threads;
    options.num_shards = shards;
    SimilarityService service(corpus, pred, options);

    Timer point_timer;
    for (RecordId q = 0; q < queries.size(); ++q) {
      service.Query(queries.record(q), queries.text(q));
    }
    double point_seconds = point_timer.ElapsedSeconds();

    Timer batch_timer;
    service.BatchQuery(queries);
    double batch_seconds = batch_timer.ElapsedSeconds();

    auto total_rebuilds = [&service] {
      uint64_t total = 0;
      for (const ShardStats& s : service.stats().shards) total += s.rebuilds;
      return total;
    };

    // Full compaction: inserts spread over the token space dirty every
    // shard, so this measures the sharded rebuild of the whole base.
    for (uint32_t i = 0; i < kShardInserts && i < inserts.size(); ++i) {
      service.Insert(inserts.record(i), inserts.text(i));
    }
    uint64_t rebuilds_before = total_rebuilds();
    Timer full_timer;
    service.Compact();
    double full_seconds = full_timer.ElapsedSeconds();
    uint64_t full_rebuilt = total_rebuilds() - rebuilds_before;

    // Dirty compaction: one insert dirties one shard; Compact() must
    // rebuild only it and share the other shards' bases untouched.
    rebuilds_before = total_rebuilds();
    service.Insert(inserts.record(0), inserts.text(0));
    Timer dirty_timer;
    service.Compact();
    double dirty_seconds = dirty_timer.ElapsedSeconds();
    uint64_t dirty_rebuilt = total_rebuilds() - rebuilds_before;

    std::printf("%zu,%.0f,%.0f,%.3f,%" PRIu64 ",%.4f,%" PRIu64 "\n", shards,
                queries.size() / point_seconds,
                queries.size() / batch_seconds, full_seconds, full_rebuilt,
                dirty_seconds, dirty_rebuilt);
    std::fflush(stdout);
  }

  // Delete-rate sweep: tombstone every Nth record (a spread across all
  // token-range shards), measure lookups against the tombstone-laden
  // snapshot, then the compaction that drops the bodies.
  const double kDeleteRates[] = {0.0, 0.01, 0.05, 0.20};
  std::printf(
      "\ndelete_rate,deletes,delete_ops_per_sec,point_qps_pending,"
      "compact_sec\n");
  for (double rate : kDeleteRates) {
    ServiceOptions options;
    options.memtable_limit = 0;
    options.num_threads = threads;
    options.num_shards = 4;
    SimilarityService service(corpus, pred, options);

    const uint32_t stride =
        rate > 0 ? static_cast<uint32_t>(1.0 / rate) : 0;
    Timer delete_timer;
    uint64_t deletes = 0;
    if (stride > 0) {
      for (RecordId id = 0; id < corpus.size(); id += stride) {
        if (service.Delete(id)) ++deletes;
      }
    }
    double delete_seconds = delete_timer.ElapsedSeconds();

    Timer point_timer;
    for (RecordId q = 0; q < queries.size(); ++q) {
      service.Query(queries.record(q), queries.text(q));
    }
    double point_seconds = point_timer.ElapsedSeconds();

    Timer compact_timer;
    service.Compact();
    double compact_seconds = compact_timer.ElapsedSeconds();

    std::printf("%.2f,%" PRIu64 ",%.0f,%.0f,%.3f\n", rate, deletes,
                deletes > 0 ? deletes / delete_seconds : 0.0,
                queries.size() / point_seconds, compact_seconds);
    std::fflush(stdout);
  }

  // Durability sweep: the same insert workload memory-only, WAL'd to the
  // page cache, and WAL'd with per-op fsync; then the checkpointing
  // compaction and a full restore.
  const uint32_t kDurableInserts = Scaled(2048, scale);
  std::printf(
      "\ndurability,insert_ops_per_sec,compact_sec,checkpoint_bytes,"
      "open_sec\n");
  struct DurabilityMode {
    const char* name;
    bool durable;
    WalSyncPolicy sync;
  };
  const DurabilityMode kModes[] = {
      {"none", false, WalSyncPolicy::kNever},
      {"wal_never", true, WalSyncPolicy::kNever},
      {"wal_always", true, WalSyncPolicy::kAlways},
  };
  for (const DurabilityMode& mode : kModes) {
    ServiceOptions options;
    options.memtable_limit = 0;
    options.num_threads = threads;
    options.num_shards = 4;
    const std::string dir = "bench_serve_durability";
    if (mode.durable) {
      options.data_dir = dir;
      options.wal_sync = mode.sync;
    }
    SimilarityService service(corpus, pred, options);

    Timer insert_timer;
    uint32_t inserted = 0;
    for (; inserted < kDurableInserts && inserted < inserts.size();
         ++inserted) {
      service.Insert(inserts.record(inserted), inserts.text(inserted));
    }
    double insert_seconds = insert_timer.ElapsedSeconds();

    Timer compact_timer;
    service.Compact();
    double compact_seconds = compact_timer.ElapsedSeconds();

    uint64_t checkpoint_bytes = 0;
    double open_seconds = 0;
    if (mode.durable) {
      if (!service.durability_status().ok()) {
        std::fprintf(stderr, "durability degraded: %s\n",
                     service.durability_status().ToString().c_str());
        return 1;
      }
      struct stat st;
      if (::stat(CheckpointFilePath(dir).c_str(), &st) == 0) {
        checkpoint_bytes = static_cast<uint64_t>(st.st_size);
      }
      Timer open_timer;
      Result<std::unique_ptr<SimilarityService>> restored =
          SimilarityService::Open(pred, options);
      open_seconds = open_timer.ElapsedSeconds();
      if (!restored.ok() || restored.value()->size() != service.size() ||
          restored.value()->epoch() != service.epoch()) {
        std::fprintf(stderr, "restore mismatch\n");
        return 1;
      }
      ::unlink(CheckpointFilePath(dir).c_str());
      ::unlink(WalFilePath(dir).c_str());
      ::rmdir(dir.c_str());
    }
    std::printf("%s,%.0f,%.3f,%" PRIu64 ",%.3f\n", mode.name,
                inserted / insert_seconds, compact_seconds, checkpoint_bytes,
                open_seconds);
    std::fflush(stdout);
  }

  // Bitmap-prefilter sweep: gate on (serving default) vs off, growing
  // corpus, identical queries — aborts on any result-count drift.
  std::printf(
      "\ncorpus,bitmap_bits,point_qps,checked_per_query,pruned_per_query,"
      "results\n");
  for (uint32_t corpus_size :
       {Scaled(10000, scale), Scaled(50000, scale), Scaled(100000, scale)}) {
    std::vector<std::string> bm_texts = CitationTexts(corpus_size);
    TokenDictionary bm_dict;
    RecordSet bm_corpus = WordCorpusPrefix(bm_texts, corpus_size, &bm_dict);
    RecordSet bm_queries = WordCorpusPrefix(bm_texts, kQueries, &bm_dict);
    // Both legs are built up front and their query passes interleaved,
    // best-of-three per leg: on a shared machine a sequential
    // leg-then-leg timing mostly measures load drift, not the gate.
    std::vector<std::unique_ptr<SimilarityService>> legs;
    for (size_t bits : {size_t{0}, kTokenBitmapBits}) {
      ServiceOptions options;
      options.memtable_limit = 0;
      options.num_threads = threads;
      options.num_shards = 4;
      options.bitmap_bits = bits;
      legs.push_back(
          std::make_unique<SimilarityService>(bm_corpus, pred, options));
    }
    uint64_t leg_results[2] = {0, 0};
    double leg_best_qps[2] = {0, 0};
    for (int round = 0; round < 3; ++round) {
      for (size_t leg = 0; leg < legs.size(); ++leg) {
        uint64_t results = 0;
        Timer point_timer;
        for (RecordId q = 0; q < bm_queries.size(); ++q) {
          results += legs[leg]
                         ->Query(bm_queries.record(q), bm_queries.text(q))
                         .size();
        }
        double qps = bm_queries.size() / point_timer.ElapsedSeconds();
        leg_best_qps[leg] = std::max(leg_best_qps[leg], qps);
        leg_results[leg] = results;
      }
      if (leg_results[1] != leg_results[0]) {
        std::fprintf(stderr,
                     "bitmap sweep result mismatch: corpus=%u gated leg got "
                     "%" PRIu64 " results, ungated baseline has %" PRIu64 "\n",
                     corpus_size, leg_results[1], leg_results[0]);
        return 1;
      }
    }
    for (size_t leg = 0; leg < legs.size(); ++leg) {
      // Per-query stats are per-leg totals over all rounds.
      uint64_t checked = legs[leg]->stats().merge.bitmap_checked;
      uint64_t pruned = legs[leg]->stats().merge.bitmap_pruned;
      double queries = 3.0 * bm_queries.size();
      std::printf("%u,%zu,%.0f,%.1f,%.1f,%" PRIu64 "\n", corpus_size,
                  leg == 0 ? size_t{0} : kTokenBitmapBits, leg_best_qps[leg],
                  static_cast<double>(checked) / queries,
                  static_cast<double>(pruned) / queries, leg_results[leg]);
      std::fflush(stdout);
    }
  }

  // Compaction scaling: fixed delta, growing corpus, chain vs collapse.
  const uint32_t kScaleDelta = Scaled(1000, scale);
  constexpr uint32_t kScaleRounds = 3;
  std::printf(
      "\ncorpus,mode,compact1_sec,compact2_sec,compact3_sec,segments,"
      "point_qps\n");
  for (uint32_t corpus_size :
       {Scaled(10000, scale), Scaled(50000, scale), Scaled(100000, scale)}) {
    std::vector<std::string> scale_texts =
        CitationTexts(corpus_size + kScaleRounds * kScaleDelta);
    TokenDictionary scale_dict;
    RecordSet scale_corpus =
        WordCorpusPrefix(scale_texts, corpus_size, &scale_dict);
    std::vector<std::string> delta_texts(scale_texts.begin() + corpus_size,
                                         scale_texts.end());
    RecordSet deltas = BuildWordCorpus(delta_texts, &scale_dict);
    RecordSet scale_queries =
        WordCorpusPrefix(scale_texts, kQueries, &scale_dict);
    for (bool segmented : {true, false}) {
      ServiceOptions options;
      options.memtable_limit = 0;
      options.num_threads = threads;
      options.num_shards = 4;
      options.segment_merge_ratio = segmented ? 2 : 0;
      SimilarityService service(scale_corpus, pred, options);
      double round_seconds[kScaleRounds] = {0, 0, 0};
      RecordId next = 0;
      for (uint32_t round = 0; round < kScaleRounds; ++round) {
        for (uint32_t i = 0; i < kScaleDelta && next < deltas.size();
             ++i, ++next) {
          service.Insert(deltas.record(next), deltas.text(next));
        }
        Timer compact_timer;
        service.Compact();
        round_seconds[round] = compact_timer.ElapsedSeconds();
      }
      Timer point_timer;
      for (RecordId q = 0; q < scale_queries.size(); ++q) {
        service.Query(scale_queries.record(q), scale_queries.text(q));
      }
      double point_seconds = point_timer.ElapsedSeconds();
      std::printf("%u,%s,%.3f,%.3f,%.3f,%" PRIu64 ",%.0f\n", corpus_size,
                  segmented ? "segmented" : "baseline", round_seconds[0],
                  round_seconds[1], round_seconds[2],
                  static_cast<uint64_t>(service.stats().segments),
                  scale_queries.size() / point_seconds);
      std::fflush(stdout);
    }
  }

  // Out-of-core sweep: one durable corpus, opened materialized vs
  // mapped under a budget a quarter of its segment bytes (so most of
  // the chain is over budget and must be served from disk).
  {
    const std::string dir = "bench_serve_ooc";
    uint64_t segment_bytes = 0;
    uint64_t expected_size = 0;
    {
      ServiceOptions options;
      options.memtable_limit = 0;
      options.num_threads = threads;
      options.num_shards = 4;
      options.data_dir = dir;
      options.wal_sync = WalSyncPolicy::kNever;
      SimilarityService builder(corpus, pred, options);
      const uint32_t kOocInserts = Scaled(2048, scale);
      for (uint32_t i = 0; i < kOocInserts && i < inserts.size(); ++i) {
        builder.Insert(inserts.record(i), inserts.text(i));
      }
      builder.Compact();
      if (!builder.durability_status().ok()) {
        std::fprintf(stderr, "durability degraded: %s\n",
                     builder.durability_status().ToString().c_str());
        return 1;
      }
      segment_bytes = builder.stats().segment_bytes;
      expected_size = builder.size();
    }
    const uint64_t budget = segment_bytes / 4;
    std::printf("\nout_of_core,segment_bytes=%" PRIu64 ",budget=%" PRIu64
                "\nmode,open_sec,point_qps,rss_queries_kb,rss_advised_kb,"
                "results\n",
                segment_bytes, budget);
    uint64_t leg_results[2] = {0, 0};
    for (int leg = 0; leg < 2; ++leg) {
      const bool mapped = leg == 0;
      ServiceOptions options;
      options.memtable_limit = 0;
      options.num_threads = threads;
      options.num_shards = 4;
      options.data_dir = dir;
      options.wal_sync = WalSyncPolicy::kNever;
      options.resident_budget_bytes = mapped ? budget : 0;
      Timer open_timer;
      Result<std::unique_ptr<SimilarityService>> opened =
          SimilarityService::Open(pred, options);
      double open_seconds = open_timer.ElapsedSeconds();
      if (!opened.ok() || opened.value()->size() != expected_size) {
        std::fprintf(stderr, "out-of-core open failed\n");
        return 1;
      }
      SimilarityService& service = *opened.value();
      if (mapped && service.stats().mapped_bytes == 0) {
        std::fprintf(stderr, "mapped leg has no mapped segments\n");
        return 1;
      }
      uint64_t results = 0;
      Timer point_timer;
      for (RecordId q = 0; q < queries.size(); ++q) {
        results += service.Query(queries.record(q), queries.text(q)).size();
      }
      double point_seconds = point_timer.ElapsedSeconds();
      leg_results[leg] = results;
      uint64_t rss_queries_kb = ResidentKb();
      service.ApplyResidencyAdvice();
      uint64_t rss_advised_kb = ResidentKb();
      if (mapped) {
        // The budget must have teeth: re-advising after the query replay
        // faulted the arenas back in has to return the over-budget
        // segments' pages to the kernel. (A quarter of the over-budget
        // span is a conservative floor — queries leave text blobs and
        // cold postings untouched.)
        const uint64_t mapped_bytes = service.stats().mapped_bytes;
        const uint64_t dropped_kb =
            rss_queries_kb > rss_advised_kb ? rss_queries_kb - rss_advised_kb
                                            : 0;
        if (mapped_bytes > budget &&
            dropped_kb * 1024 < (mapped_bytes - budget) / 4) {
          std::fprintf(stderr,
                       "residency budget had no effect: dropped %" PRIu64
                       "KB, expected >= %" PRIu64 "KB\n",
                       dropped_kb, (mapped_bytes - budget) / 4096);
          return 1;
        }
      }
      std::printf("%s,%.3f,%.0f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  mapped ? "mapped" : "materialized", open_seconds,
                  queries.size() / point_seconds, rss_queries_kb,
                  rss_advised_kb, results);
      std::fflush(stdout);
    }
    if (leg_results[0] != leg_results[1]) {
      std::fprintf(stderr,
                   "out-of-core result mismatch: mapped %" PRIu64
                   " vs materialized %" PRIu64 "\n",
                   leg_results[0], leg_results[1]);
      return 1;
    }
    for (uint64_t id : ListSegmentFiles(dir)) {
      ::unlink(SegmentFilePath(dir, id).c_str());
    }
    ::unlink(CheckpointFilePath(dir).c_str());
    ::unlink(WalFilePath(dir).c_str());
    ::rmdir(dir.c_str());
  }
  return 0;
}
