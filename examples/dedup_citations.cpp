// Deduplicating a citation corpus — the paper's motivating data-cleaning
// scenario. Generates a synthetic CiteSeer-like bibliography (many entries
// cite the same paper with formatting differences), joins it under a
// TF-IDF cosine predicate, and groups the matches into duplicate clusters
// with a union-find pass.
//
//   $ ./dedup_citations [num_records] [cosine_threshold]

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/join.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

namespace {

/// Minimal union-find for grouping matched pairs into clusters.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_records = argc > 1 ? std::atoi(argv[1]) : 5000;
  double threshold = argc > 2 ? std::atof(argv[2]) : 0.8;

  ssjoin::CitationGeneratorOptions gen_options;
  gen_options.num_records = num_records;
  gen_options.duplicate_fraction = 0.5;
  std::vector<std::string> citations =
      ssjoin::CitationGenerator(gen_options).Generate();

  ssjoin::TokenDictionary dict;
  ssjoin::RecordSet records = ssjoin::BuildWordCorpus(citations, &dict);
  std::printf("corpus: %zu citations, %zu distinct words, avg %.1f words\n",
              records.size(), dict.size(), records.average_record_size());

  ssjoin::CosinePredicate pred(threshold);
  ssjoin::JoinOptions options;
  UnionFind clusters(records.size());
  uint64_t pairs = 0;

  ssjoin::Timer timer;
  ssjoin::Result<ssjoin::JoinStats> stats = ssjoin::RunJoin(
      &records, pred, ssjoin::JoinAlgorithm::kProbeCluster, options,
      [&](ssjoin::RecordId a, ssjoin::RecordId b) {
        clusters.Union(a, b);
        ++pairs;
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  double elapsed = timer.ElapsedSeconds();

  // Collect duplicate clusters (size >= 2).
  std::vector<std::vector<ssjoin::RecordId>> groups(records.size());
  for (ssjoin::RecordId id = 0; id < records.size(); ++id) {
    groups[clusters.Find(id)].push_back(id);
  }
  size_t duplicate_groups = 0;
  size_t duplicated_records = 0;
  for (const auto& group : groups) {
    if (group.size() >= 2) {
      ++duplicate_groups;
      duplicated_records += group.size();
    }
  }

  std::printf(
      "cosine >= %.2f join: %llu matching pairs in %.2fs "
      "(%llu candidates verified)\n",
      threshold, static_cast<unsigned long long>(pairs), elapsed,
      static_cast<unsigned long long>(stats.value().candidates_verified));
  std::printf("duplicate clusters: %zu (covering %zu records)\n",
              duplicate_groups, duplicated_records);

  // Show a few example clusters.
  int shown = 0;
  for (const auto& group : groups) {
    if (group.size() < 2 || shown >= 3) continue;
    std::printf("\ncluster of %zu:\n", group.size());
    for (ssjoin::RecordId id : group) {
      std::printf("  - %.90s\n", records.text(id).c_str());
    }
    ++shown;
  }
  return 0;
}
