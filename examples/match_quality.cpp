// Match quality against ground truth — the data-cleaning question behind
// the paper's motivating applications: which similarity predicate and
// threshold actually *find the duplicates*?
//
// The synthetic citation generator knows which base paper every record
// cites (GenerateWithProvenance), so true duplicate pairs are known
// exactly. This example sweeps thresholds for four predicates, runs the
// Probe-Cluster join, and reports precision / recall / F1 against that
// ground truth.
//
//   $ ./match_quality [num_records]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"

namespace {

using namespace ssjoin;

struct Quality {
  uint64_t matched = 0;
  uint64_t true_positive = 0;
  uint64_t truth = 0;
  double precision() const {
    return matched ? static_cast<double>(true_positive) / matched : 0;
  }
  double recall() const {
    return truth ? static_cast<double>(true_positive) / truth : 0;
  }
  double f1() const {
    double p = precision();
    double r = recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0;
  }
};

uint64_t Key(RecordId a, RecordId b) {
  return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t num_records = argc > 1 ? std::atoi(argv[1]) : 4000;

  CitationGeneratorOptions gen_options;
  gen_options.num_records = num_records;
  gen_options.duplicate_fraction = 0.5;
  GeneratedCitations corpus =
      CitationGenerator(gen_options).GenerateWithProvenance();

  // Ground truth: all pairs citing the same paper.
  std::unordered_set<uint64_t> truth;
  {
    std::map<uint32_t, std::vector<RecordId>> by_paper;
    for (RecordId id = 0; id < corpus.texts.size(); ++id) {
      by_paper[corpus.paper_id[id]].push_back(id);
    }
    for (const auto& [paper, ids] : by_paper) {
      for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = i + 1; j < ids.size(); ++j) {
          truth.insert(Key(ids[i], ids[j]));
        }
      }
    }
  }

  TokenDictionary dict;
  RecordSet base = BuildWordCorpus(corpus.texts, &dict);
  std::printf("corpus: %zu citations, %zu true duplicate pairs\n\n",
              base.size(), truth.size());
  std::printf("%-14s %9s %9s %9s %9s %9s\n", "predicate", "threshold",
              "matched", "precision", "recall", "F1");

  auto evaluate = [&](const char* name, const Predicate& pred,
                      double threshold) {
    RecordSet working = base;
    Quality quality;
    quality.truth = truth.size();
    JoinOptions options;
    Result<JoinStats> stats = RunJoin(
        &working, pred, JoinAlgorithm::kProbeCluster, options,
        [&](RecordId a, RecordId b) {
          ++quality.matched;
          if (truth.count(Key(a, b)) > 0) ++quality.true_positive;
        });
    if (!stats.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   stats.status().ToString().c_str());
      return;
    }
    std::printf("%-14s %9.2f %9llu %9.3f %9.3f %9.3f\n", name, threshold,
                static_cast<unsigned long long>(quality.matched),
                quality.precision(), quality.recall(), quality.f1());
  };

  double avg = base.average_record_size();
  for (double fraction : {0.3, 0.5, 0.7}) {
    evaluate("overlap", OverlapPredicate(fraction * avg), fraction * avg);
  }
  std::printf("\n");
  for (double f : {0.5, 0.7, 0.85}) {
    evaluate("jaccard", JaccardPredicate(f), f);
  }
  std::printf("\n");
  for (double f : {0.6, 0.75, 0.9}) {
    evaluate("cosine", CosinePredicate(f), f);
  }
  std::printf("\n");
  for (double f : {0.6, 0.75, 0.9}) {
    evaluate("dice", DicePredicate(f), f);
  }
  std::printf(
      "\nprecision saturates quickly (near-duplicates share most words); "
      "the F1 race is about recall at a safe threshold — compare the "
      "predicates' best rows above.\n");
  return 0;
}
