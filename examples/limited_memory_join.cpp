// ClusterMem in action (Section 4): the same join run with a sequence of
// shrinking index-memory budgets, showing that output stays identical
// while the index footprint drops — the paper's "memory / 50 => time
// x 2.5" behaviour in miniature.
//
//   $ ./limited_memory_join [num_records]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/join.h"
#include "core/overlap_predicate.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  uint32_t num_records = argc > 1 ? std::atoi(argv[1]) : 8000;

  ssjoin::CitationGeneratorOptions gen_options;
  gen_options.num_records = num_records;
  std::vector<std::string> citations =
      ssjoin::CitationGenerator(gen_options).Generate();
  ssjoin::TokenDictionary dict;
  ssjoin::RecordSet base = ssjoin::BuildWordCorpus(citations, &dict);

  double threshold = 0.6 * base.average_record_size();
  ssjoin::OverlapPredicate pred(threshold);
  uint64_t full_index = base.total_token_occurrences();
  std::printf(
      "corpus: %zu records; full record-level index = %llu postings; "
      "overlap threshold T = %.0f\n\n",
      base.size(), static_cast<unsigned long long>(full_index), threshold);

  std::printf("%-22s %12s %14s %10s %8s\n", "memory budget", "postings",
              "index peak", "pairs", "time(s)");

  uint64_t reference_pairs = 0;
  for (double fraction : {1.0, 0.5, 0.2, 0.1, 0.02}) {
    uint64_t budget =
        std::max<uint64_t>(1, static_cast<uint64_t>(fraction * full_index));
    ssjoin::RecordSet working = base;
    ssjoin::JoinOptions options;
    options.cluster_mem.memory_budget_postings = budget;
    options.cluster_mem.temp_dir = "/tmp";

    uint64_t pairs = 0;
    ssjoin::Timer timer;
    ssjoin::Result<ssjoin::JoinStats> stats = ssjoin::RunJoin(
        &working, pred, ssjoin::JoinAlgorithm::kClusterMem, options,
        [&pairs](ssjoin::RecordId, ssjoin::RecordId) { ++pairs; });
    double elapsed = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (reference_pairs == 0) reference_pairs = pairs;

    char label[64];
    std::snprintf(label, sizeof(label), "%.0f%% of full index",
                  fraction * 100);
    std::printf("%-22s %12llu %14llu %10llu %8.2f%s\n", label,
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(stats.value().index_postings),
                static_cast<unsigned long long>(pairs), elapsed,
                pairs == reference_pairs ? "" : "  <-- MISMATCH");
  }
  std::printf(
      "\nevery row reports the same pair count: the partitioned join is "
      "exact at any budget.\n");
  return 0;
}
