// Online similarity lookups: stand up a SimilarityService over a citation
// corpus, answer point / top-k queries, grow the corpus with Insert, and
// compact — all without ever re-running a batch join.
//
// Build & run:  cmake --build build --target online_lookup &&
//               ./build/examples/online_lookup

#include <algorithm>
#include <cstdio>

#include "core/jaccard_predicate.h"
#include "data/citation_generator.h"
#include "data/corpus_builder.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

using namespace ssjoin;

namespace {

void PrintMatches(const RecordSet& corpus, const char* what,
                  const std::vector<QueryMatch>& matches) {
  std::printf("%s -> %zu match(es)\n", what, matches.size());
  for (const QueryMatch& m : matches) {
    std::printf("  #%u  score=%.3f  %s\n", m.id, m.score,
                corpus.text(m.id).c_str());
  }
}

}  // namespace

int main() {
  // A synthetic citation corpus: duplicated records with noisy edits, the
  // paper's data-cleaning setting.
  CitationGeneratorOptions gen;
  gen.num_records = 2000;
  gen.seed = 7;
  std::vector<std::string> texts = CitationGenerator(gen).Generate();

  TokenDictionary dict;
  RecordSet corpus = BuildWordCorpus(texts, &dict);
  JaccardPredicate pred(0.6);

  // The service owns its copy of the corpus and prepares it internally.
  ServiceOptions options;
  options.memtable_limit = 64;
  SimilarityService service(corpus, pred, options);
  std::printf("serving %zu citation records (jaccard 0.6)\n\n",
              service.size());

  // 1. Point lookup: which records resemble record 42?
  PrintMatches(corpus, "query: record 42",
               service.Query(corpus.record(42), corpus.text(42)));

  // 2. Top-k lookup: the 3 nearest records regardless of threshold.
  PrintMatches(corpus, "\ntop-3: record 42",
               service.QueryTopK(corpus.record(42), 3, corpus.text(42)));

  // 3. A never-seen record arrives: query first (dedup check), insert it,
  // and show it is immediately visible to the next query.
  RecordSet probe = BuildWordCorpus(
      {"j smith and a jones efficient set joins on similarity predicates "
       "sigmod 2004"},
      &dict);
  PrintMatches(corpus, "\nquery: new citation",
               service.Query(probe.record(0), probe.text(0)));
  RecordId id = service.Insert(probe.record(0), probe.text(0));
  std::printf("\ninserted as #%u; service now holds %zu records "
              "(memtable %zu)\n",
              id, service.size(), service.memtable_size());
  std::vector<QueryMatch> again =
      service.Query(probe.record(0), probe.text(0));
  std::printf("re-query finds %zu match(es), including itself: %s\n",
              again.size(),
              std::any_of(again.begin(), again.end(),
                          [id](const QueryMatch& m) { return m.id == id; })
                  ? "yes"
                  : "NO");

  // 4. Compaction folds the memtable into the flat base index.
  service.Compact();
  std::printf("\nafter compaction: memtable %zu, epoch %llu\n",
              service.memtable_size(),
              static_cast<unsigned long long>(service.epoch()));
  std::printf("\nstats: %s\n", service.StatsJson().c_str());
  return 0;
}
