// Streaming deduplication: records arrive one at a time (think a data-
// entry feed or CDC stream) and each new record is checked against
// everything ingested so far — the Section 3.2 single-pass build-and-
// probe loop exposed as a long-lived object.
//
//   $ ./streaming_dedup [num_records]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/jaccard_predicate.h"
#include "core/streaming_join.h"
#include "data/address_generator.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  uint32_t num_records = argc > 1 ? std::atoi(argv[1]) : 6000;

  ssjoin::AddressGeneratorOptions gen_options;
  gen_options.num_records = num_records;
  gen_options.duplicate_fraction = 0.3;
  std::vector<std::string> addresses =
      ssjoin::AddressGenerator(gen_options).GenerateFullTexts();

  // Tokenize up front (in a real feed this happens per record).
  ssjoin::TokenDictionary dict;
  ssjoin::RecordSet staged = ssjoin::BuildWordCorpus(addresses, &dict);

  ssjoin::JaccardPredicate pred(0.8);
  ssjoin::StreamingJoin stream(pred);

  uint64_t duplicates_flagged = 0;
  uint64_t records_with_duplicate = 0;
  ssjoin::Timer timer;
  for (ssjoin::RecordId id = 0; id < staged.size(); ++id) {
    bool any = false;
    stream.Add(staged.record(id), staged.text(id),
               [&](ssjoin::RecordId earlier) {
                 ++duplicates_flagged;
                 any = true;
                 if (duplicates_flagged <= 3) {
                   std::printf("record %u duplicates record %u:\n  %s\n  %s\n",
                               id, earlier, staged.text(id).c_str(),
                               staged.text(earlier).c_str());
                 }
               });
    if (any) ++records_with_duplicate;
  }
  double elapsed = timer.ElapsedSeconds();

  std::printf(
      "\nstreamed %zu records in %.2fs (%.0f records/s): %llu duplicate "
      "pairs, %llu records flagged at arrival\n",
      staged.size(), elapsed, staged.size() / elapsed,
      static_cast<unsigned long long>(duplicates_flagged),
      static_cast<unsigned long long>(records_with_duplicate));
  std::printf("index: %llu postings; %llu candidates verified\n",
              static_cast<unsigned long long>(stream.stats().index_postings),
              static_cast<unsigned long long>(
                  stream.stats().candidates_verified));
  return 0;
}
