// Quickstart: build a small set-valued corpus, run the Probe-Cluster
// similarity join under three predicates, and print the matching pairs.
//
//   $ ./quickstart
//
// This walks the minimal public API surface: tokenize text into a
// RecordSet (data/corpus_builder.h), pick a Predicate (core/*_predicate.h)
// and call RunJoin (core/join.h).

#include <cstdio>
#include <string>
#include <vector>

#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"

namespace {

void PrintPairs(const char* title, ssjoin::RecordSet* records,
                const ssjoin::Predicate& pred) {
  std::printf("\n== %s ==\n", title);
  ssjoin::JoinOptions options;
  ssjoin::Result<ssjoin::JoinStats> stats = ssjoin::RunJoin(
      records, pred, ssjoin::JoinAlgorithm::kProbeCluster, options,
      [records](ssjoin::RecordId a, ssjoin::RecordId b) {
        std::printf("  [%u] %-42s ~ [%u] %s\n", a,
                    records->text(a).c_str(), b, records->text(b).c_str());
      });
  if (!stats.ok()) {
    std::printf("join failed: %s\n", stats.status().ToString().c_str());
    return;
  }
  std::printf("  (%llu pairs, %llu candidates verified)\n",
              static_cast<unsigned long long>(stats.value().pairs),
              static_cast<unsigned long long>(
                  stats.value().candidates_verified));
}

}  // namespace

int main() {
  // A tiny bibliography with near-duplicate citations of the same papers.
  std::vector<std::string> citations = {
      "J Gray, The transaction concept: virtues and limitations, VLDB 1981",
      "Gray J. The Transaction Concept - Virtues and Limitations. In VLDB, 1981",
      "E Codd, A relational model of data for large shared data banks, CACM 1970",
      "Codd, E.F. A Relational Model of Data for Large Shared Data Banks. CACM, 1970",
      "M Stonebraker, The design of POSTGRES, SIGMOD 1986",
      "S Sarawagi and A Kirpal, Efficient set joins on similarity predicates, SIGMOD 2004",
      "Completely unrelated entry about cooking recipes and gardening tips",
  };

  ssjoin::TokenDictionary dict;
  ssjoin::RecordSet records = ssjoin::BuildWordCorpus(citations, &dict);
  std::printf("corpus: %zu records, %zu distinct words\n", records.size(),
              dict.size());

  // T-overlap: pairs sharing at least 6 words.
  {
    ssjoin::RecordSet working = records;
    PrintPairs("overlap >= 6 words", &working, ssjoin::OverlapPredicate(6));
  }

  // Jaccard: pairs whose word sets agree on 50%+ of their union.
  {
    ssjoin::RecordSet working = records;
    PrintPairs("Jaccard >= 0.5", &working, ssjoin::JaccardPredicate(0.5));
  }

  // Weighted overlap: down-weight the words that appear everywhere.
  {
    ssjoin::RecordSet working = records;
    std::vector<double> weights(dict.size());
    for (ssjoin::TokenId t = 0; t < weights.size(); ++t) {
      weights[t] = 1.0 / static_cast<double>(records.doc_frequency(t));
    }
    PrintPairs("weighted overlap >= 1.5", &working,
               ssjoin::OverlapPredicate(1.5, weights));
  }
  return 0;
}
