// Fuzzy address matching via the edit-distance join (Section 5.2.3):
// generates a synthetic utility-roll address list with typo'd duplicates,
// builds a 3-gram corpus, and finds every pair of addresses within k
// edits. Demonstrates that the q-gram count filter plus banded verifier
// gives an exact edit-distance join without comparing all pairs.
//
//   $ ./fuzzy_address_match [num_records] [max_edits]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/edit_distance_predicate.h"
#include "core/join.h"
#include "data/address_generator.h"
#include "data/corpus_builder.h"
#include "text/edit_distance.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  uint32_t num_records = argc > 1 ? std::atoi(argv[1]) : 4000;
  int max_edits = argc > 2 ? std::atoi(argv[2]) : 2;
  const int q = 3;

  ssjoin::AddressGeneratorOptions gen_options;
  gen_options.num_records = num_records;
  gen_options.duplicate_fraction = 0.3;
  gen_options.max_typos_per_duplicate = max_edits;
  std::vector<std::string> addresses =
      ssjoin::AddressGenerator(gen_options).GenerateFullTexts();

  ssjoin::TokenDictionary dict;
  ssjoin::RecordSet records = ssjoin::BuildQGramCorpus(addresses, q, &dict);
  std::printf("corpus: %zu addresses, avg %.1f 3-grams per record\n",
              records.size(), records.average_record_size());

  ssjoin::EditDistancePredicate pred(max_edits, q);
  ssjoin::JoinOptions options;
  std::vector<std::pair<ssjoin::RecordId, ssjoin::RecordId>> matches;

  ssjoin::Timer timer;
  ssjoin::Result<ssjoin::JoinStats> stats = ssjoin::RunJoin(
      &records, pred, ssjoin::JoinAlgorithm::kProbeCluster, options,
      [&matches](ssjoin::RecordId a, ssjoin::RecordId b) {
        matches.emplace_back(a, b);
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  double elapsed = timer.ElapsedSeconds();

  std::printf(
      "edit-distance <= %d join: %zu pairs in %.2fs; %llu candidates "
      "verified out of %llu possible pairs\n",
      max_edits, matches.size(), elapsed,
      static_cast<unsigned long long>(stats.value().candidates_verified),
      static_cast<unsigned long long>(records.size()) *
          (records.size() - 1) / 2);

  int shown = 0;
  for (const auto& [a, b] : matches) {
    if (shown >= 5) break;
    size_t dist = ssjoin::EditDistance(records.text(a), records.text(b));
    std::printf("\n  dist=%zu\n    %s\n    %s\n", dist,
                records.text(a).c_str(), records.text(b).c_str());
    ++shown;
  }
  return 0;
}
