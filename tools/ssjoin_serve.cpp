// ssjoin_serve — stand up a SimilarityService over a text corpus and
// answer lookups interactively or from a batch file. One record per line.
//
//   ssjoin_serve --corpus=records.txt --predicate=jaccard --threshold=0.8
//   ssjoin_serve --corpus=records.txt --queries=queries.txt --threads=4
//   ssjoin_serve --corpus=records.txt --topk=5 < queries.txt
//
// Interactive commands (stdin, one per line):
//   <text>        look up the record; prints "id<TAB>score" per match
//   + <text>      insert the record into the corpus (empty text is legal)
//   - <id>        delete record <id> (tombstoned; dropped at compaction)
//   ! compact     fold the memtable into the base index
//   ? stats       print the service stats JSON
// A malformed or unknown command prints one "ERR ..." line; when stdin is
// not a terminal (a scripted pipe or file), any ERR also makes the
// process exit nonzero, so driver scripts cannot silently lose commands.
// (EOF quits; stats JSON also lands on stderr at exit with --stats-json)

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

namespace {

using namespace ssjoin;

constexpr const char kUsage[] =
    "usage: ssjoin_serve --corpus=FILE [flags]\n"
    "  --corpus=FILE         corpus file, one record per line (required)\n"
    "  --predicate=NAME      overlap | jaccard | cosine | dice |\n"
    "                        edit-distance (default jaccard)\n"
    "  --threshold=X         predicate threshold (T, f or k); must be > 0\n"
    "  --tokens=MODE         words (default) | 2gram | 3gram | 4gram\n"
    "  --queries=FILE        batch mode: answer every line of FILE via\n"
    "                        BatchQuery and exit (no REPL)\n"
    "  --topk=K              rank the K nearest records per query instead\n"
    "                        of thresholding\n"
    "  --threads=N           BatchQuery worker threads (default hardware)\n"
    "  --shards=N            token-range shards for the base tier; answers\n"
    "                        are identical for every value (default 1)\n"
    "  --memtable-limit=N    auto-compact at N memtable records\n"
    "                        (default 256; 0 = only on '! compact')\n"
    "  --stats-json          print the stats JSON to stderr at exit\n";

struct ServeCliOptions {
  std::string corpus;
  std::string queries;
  std::string predicate = "jaccard";
  double threshold = 0.8;
  std::string tokens = "words";
  uint64_t topk = 0;
  int threads = 0;
  uint64_t shards = 1;
  uint64_t memtable_limit = 256;
  bool stats_json = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

std::optional<ServeCliOptions> ParseArgs(int argc, char** argv) {
  ServeCliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--corpus", &value)) {
      options.corpus = value;
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      options.queries = value;
    } else if (ParseFlag(argv[i], "--predicate", &value)) {
      options.predicate = value;
    } else if (ParseFlag(argv[i], "--threshold", &value)) {
      if (!ParseDouble(value, &options.threshold) ||
          options.threshold <= 0) {
        std::fprintf(stderr, "invalid --threshold=%s (need a number > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--tokens", &value)) {
      options.tokens = value;
    } else if (ParseFlag(argv[i], "--topk", &value)) {
      if (!ParseUint64(value, &options.topk) || options.topk == 0) {
        std::fprintf(stderr, "invalid --topk=%s (need an integer > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      uint64_t threads = 0;
      if (!ParseUint64(value, &threads) || threads == 0 || threads > 1024) {
        std::fprintf(stderr, "invalid --threads=%s (need 1..1024)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.threads = static_cast<int>(threads);
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      if (!ParseUint64(value, &options.shards) || options.shards == 0 ||
          options.shards > 1024) {
        std::fprintf(stderr, "invalid --shards=%s (need 1..1024)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--memtable-limit", &value)) {
      if (!ParseUint64(value, &options.memtable_limit)) {
        std::fprintf(stderr,
                     "invalid --memtable-limit=%s (need an integer >= 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      options.stats_json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  if (options.corpus.empty()) {
    std::fprintf(stderr, "--corpus=FILE is required\n");
    return std::nullopt;
  }
  if (options.predicate != "overlap" && options.predicate != "jaccard" &&
      options.predicate != "cosine" && options.predicate != "dice" &&
      options.predicate != "edit-distance") {
    std::fprintf(stderr, "unknown predicate: %s\n",
                 options.predicate.c_str());
    return std::nullopt;
  }
  if (options.tokens != "words" && options.tokens != "2gram" &&
      options.tokens != "3gram" && options.tokens != "4gram") {
    std::fprintf(stderr, "unknown tokens mode: %s\n",
                 options.tokens.c_str());
    return std::nullopt;
  }
  return options;
}

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::unique_ptr<Predicate> MakePredicate(const ServeCliOptions& options,
                                         int q) {
  const std::string& name = options.predicate;
  double t = options.threshold;
  if (name == "overlap") return std::make_unique<OverlapPredicate>(t);
  if (name == "jaccard") return std::make_unique<JaccardPredicate>(t);
  if (name == "cosine") return std::make_unique<CosinePredicate>(t);
  if (name == "dice") return std::make_unique<DicePredicate>(t);
  return std::make_unique<EditDistancePredicate>(static_cast<int>(t), q);
}

/// Tokenizer shared by the corpus, inserts and queries: every text goes
/// through the same builder with the same (growing) dictionary, so query
/// tokens line up with index tokens.
class LineTokenizer {
 public:
  LineTokenizer(std::string mode, TokenDictionary* dict)
      : mode_(std::move(mode)), dict_(dict) {}

  int q() const { return mode_ == "words" ? 3 : mode_[0] - '0'; }

  RecordSet Build(const std::vector<std::string>& lines) const {
    if (mode_ == "words") return BuildWordCorpus(lines, dict_);
    return BuildQGramCorpus(lines, q(), dict_);
  }

  RecordSet BuildOne(const std::string& line) const {
    return Build(std::vector<std::string>{line});
  }

 private:
  std::string mode_;
  TokenDictionary* dict_;
};

void PrintMatches(const std::vector<QueryMatch>& matches) {
  for (const QueryMatch& m : matches) {
    std::printf("%u\t%.6g\n", m.id, m.score);
  }
}

std::vector<QueryMatch> Answer(const SimilarityService& service,
                               const ServeCliOptions& options,
                               RecordView query, std::string text) {
  if (options.topk > 0) {
    return service.QueryTopK(query, options.topk, std::move(text));
  }
  return service.Query(query, std::move(text));
}

int RunBatch(const SimilarityService& service,
             const ServeCliOptions& options, const LineTokenizer& tokenizer) {
  std::optional<std::vector<std::string>> lines = ReadLines(options.queries);
  if (!lines.has_value()) return 1;
  RecordSet queries = tokenizer.Build(*lines);
  if (options.topk > 0) {
    for (RecordId q = 0; q < queries.size(); ++q) {
      for (const QueryMatch& m : service.QueryTopK(
               queries.record(q), options.topk, queries.text(q))) {
        std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
      }
    }
    return 0;
  }
  std::vector<std::vector<QueryMatch>> results = service.BatchQuery(queries);
  for (RecordId q = 0; q < results.size(); ++q) {
    for (const QueryMatch& m : results[q]) {
      std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
    }
  }
  return 0;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

int RunRepl(SimilarityService* service, const ServeCliOptions& options,
            const LineTokenizer& tokenizer) {
  // A non-tty stdin means a script is driving the REPL: every ERR line
  // then also fails the exit code, so a typo in a command file cannot be
  // silently ignored. At a terminal the ERR line alone is the feedback.
  const bool scripted = isatty(fileno(stdin)) == 0;
  int rc = 0;
  auto err = [&](const std::string& detail) {
    std::printf("ERR %s\n", detail.c_str());
    if (scripted) rc = 1;
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const char op = line[0];
    if (op == '!') {
      const std::string arg = Trim(line.substr(1));
      if (!arg.empty() && arg != "compact") {
        err("unknown command '" + line + "' (want '! compact')");
      } else {
        service->Compact();
        std::printf("compacted; %zu records, epoch %llu\n", service->size(),
                    static_cast<unsigned long long>(service->epoch()));
      }
    } else if (op == '?') {
      const std::string arg = Trim(line.substr(1));
      if (!arg.empty() && arg != "stats") {
        err("unknown command '" + line + "' (want '? stats')");
      } else {
        std::printf("%s\n", service->StatsJson().c_str());
      }
    } else if (op == '+') {
      // Empty text is legal: token-less records route to shard 0 and can
      // only be found by short-record predicates (edit distance).
      RecordSet staged = tokenizer.BuildOne(Trim(line.substr(1)));
      RecordId id = service->Insert(staged.record(0), staged.text(0));
      std::printf("inserted %u\n", id);
    } else if (op == '-') {
      const std::string arg = Trim(line.substr(1));
      uint64_t id = 0;
      if (!ParseUint64(arg, &id) || id > UINT32_MAX) {
        err("malformed delete '" + line + "' (want '- <id>')");
      } else if (service->Delete(static_cast<RecordId>(id))) {
        std::printf("deleted %llu\n", static_cast<unsigned long long>(id));
      } else {
        err("no live record with id " + arg);
      }
    } else {
      RecordSet staged = tokenizer.BuildOne(line);
      PrintMatches(
          Answer(*service, options, staged.record(0), staged.text(0)));
    }
    std::fflush(stdout);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ServeCliOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  std::optional<std::vector<std::string>> corpus_lines =
      ReadLines(options->corpus);
  if (!corpus_lines.has_value()) return 1;

  TokenDictionary dict;
  LineTokenizer tokenizer(options->tokens, &dict);
  RecordSet corpus = tokenizer.Build(*corpus_lines);
  std::unique_ptr<Predicate> pred = MakePredicate(*options, tokenizer.q());

  ServiceOptions service_options;
  service_options.memtable_limit =
      static_cast<size_t>(options->memtable_limit);
  service_options.num_threads = options->threads;
  service_options.num_shards = static_cast<size_t>(options->shards);
  SimilarityService service(std::move(corpus), *pred, service_options);
  std::fprintf(stderr, "serving %zu records (%s, %s, %zu shards)\n",
               service.size(), options->predicate.c_str(),
               options->tokens.c_str(), service.num_shards());

  int rc = options->queries.empty()
               ? RunRepl(&service, *options, tokenizer)
               : RunBatch(service, *options, tokenizer);
  if (options->stats_json) {
    std::fprintf(stderr, "%s\n", service.StatsJson().c_str());
  }
  return rc;
}
