// ssjoin_serve — stand up a SimilarityService over a text corpus and
// answer lookups interactively or from a batch file. One record per line.
//
//   ssjoin_serve --corpus=records.txt --predicate=jaccard --threshold=0.8
//   ssjoin_serve --corpus=records.txt --queries=queries.txt --threads=4
//   ssjoin_serve --corpus=records.txt --topk=5 < queries.txt
//
// Interactive commands (stdin, one per line):
//   <text>        look up the record; prints "id<TAB>score" per match
//   + <text>      insert the record into the corpus (empty text is legal)
//   - <id>        delete record <id> (tombstoned; dropped at compaction)
//   ! compact     fold the memtable into the base index
//   ? stats       print the service stats JSON
// A malformed or unknown command prints one "ERR ..." line; when stdin is
// not a terminal (a scripted pipe or file), any ERR also makes the
// process exit nonzero, so driver scripts cannot silently lose commands.
// (EOF quits; stats JSON also lands on stderr at exit with --stats-json)

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "serve/checkpoint.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

namespace {

using namespace ssjoin;

constexpr const char kUsage[] =
    "usage: ssjoin_serve --corpus=FILE [flags]\n"
    "  --corpus=FILE         corpus file, one record per line (required)\n"
    "  --predicate=NAME      overlap | jaccard | cosine | dice |\n"
    "                        edit-distance (default jaccard)\n"
    "  --threshold=X         predicate threshold (T, f or k); must be > 0\n"
    "  --tokens=MODE         words (default) | 2gram | 3gram | 4gram\n"
    "  --queries=FILE        batch mode: answer every line of FILE via\n"
    "                        BatchQuery and exit (no REPL)\n"
    "  --topk=K              rank the K nearest records per query instead\n"
    "                        of thresholding\n"
    "  --threads=N           BatchQuery worker threads (default hardware)\n"
    "  --shards=N            token-range shards for the base tier; answers\n"
    "                        are identical for every value (default 1)\n"
    "  --memtable-limit=N    auto-compact at N memtable records\n"
    "                        (default 256; 0 = only on '! compact')\n"
    "  --data-dir=DIR        durable mode: keep a checkpoint + write-ahead\n"
    "                        log under DIR. When DIR already holds a\n"
    "                        checkpoint the service restores from it\n"
    "                        (--corpus is NOT re-read; pass the same\n"
    "                        --predicate/--threshold/--memtable-limit);\n"
    "                        otherwise it starts fresh from --corpus\n"
    "  --wal-sync=MODE       always (default: fsync each op) | never\n"
    "                        (page cache only: survives a crash of this\n"
    "                        process, not of the machine)\n"
    "  --stats-json          print the stats JSON to stderr at exit\n";

struct ServeCliOptions {
  std::string corpus;
  std::string queries;
  std::string predicate = "jaccard";
  double threshold = 0.8;
  std::string tokens = "words";
  uint64_t topk = 0;
  int threads = 0;
  uint64_t shards = 1;
  uint64_t memtable_limit = 256;
  std::string data_dir;
  std::string wal_sync = "always";
  bool stats_json = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

std::optional<ServeCliOptions> ParseArgs(int argc, char** argv) {
  ServeCliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--corpus", &value)) {
      options.corpus = value;
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      options.queries = value;
    } else if (ParseFlag(argv[i], "--predicate", &value)) {
      options.predicate = value;
    } else if (ParseFlag(argv[i], "--threshold", &value)) {
      if (!ParseDouble(value, &options.threshold) ||
          options.threshold <= 0) {
        std::fprintf(stderr, "invalid --threshold=%s (need a number > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--tokens", &value)) {
      options.tokens = value;
    } else if (ParseFlag(argv[i], "--topk", &value)) {
      if (!ParseUint64(value, &options.topk) || options.topk == 0) {
        std::fprintf(stderr, "invalid --topk=%s (need an integer > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      uint64_t threads = 0;
      if (!ParseUint64(value, &threads) || threads == 0 || threads > 1024) {
        std::fprintf(stderr, "invalid --threads=%s (need 1..1024)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.threads = static_cast<int>(threads);
    } else if (ParseFlag(argv[i], "--shards", &value)) {
      if (!ParseUint64(value, &options.shards) || options.shards == 0 ||
          options.shards > 1024) {
        std::fprintf(stderr, "invalid --shards=%s (need 1..1024)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--memtable-limit", &value)) {
      if (!ParseUint64(value, &options.memtable_limit)) {
        std::fprintf(stderr,
                     "invalid --memtable-limit=%s (need an integer >= 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--data-dir", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--data-dir needs a directory path\n");
        return std::nullopt;
      }
      options.data_dir = value;
    } else if (ParseFlag(argv[i], "--wal-sync", &value)) {
      if (value != "always" && value != "never") {
        std::fprintf(stderr, "invalid --wal-sync=%s (want always | never)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.wal_sync = value;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      options.stats_json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  // With a data_dir the corpus may come from a previous incarnation's
  // checkpoint instead of a file; main() enforces that one of the two
  // sources actually exists.
  if (options.corpus.empty() && options.data_dir.empty()) {
    std::fprintf(stderr, "--corpus=FILE is required\n");
    return std::nullopt;
  }
  if (options.predicate != "overlap" && options.predicate != "jaccard" &&
      options.predicate != "cosine" && options.predicate != "dice" &&
      options.predicate != "edit-distance") {
    std::fprintf(stderr, "unknown predicate: %s\n",
                 options.predicate.c_str());
    return std::nullopt;
  }
  if (options.tokens != "words" && options.tokens != "2gram" &&
      options.tokens != "3gram" && options.tokens != "4gram") {
    std::fprintf(stderr, "unknown tokens mode: %s\n",
                 options.tokens.c_str());
    return std::nullopt;
  }
  return options;
}

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::unique_ptr<Predicate> MakePredicate(const ServeCliOptions& options,
                                         int q) {
  const std::string& name = options.predicate;
  double t = options.threshold;
  if (name == "overlap") return std::make_unique<OverlapPredicate>(t);
  if (name == "jaccard") return std::make_unique<JaccardPredicate>(t);
  if (name == "cosine") return std::make_unique<CosinePredicate>(t);
  if (name == "dice") return std::make_unique<DicePredicate>(t);
  return std::make_unique<EditDistancePredicate>(static_cast<int>(t), q);
}

/// Append-only sidecar persisting TokenDictionary growth next to the
/// service's checkpoint/WAL: one token per line, in id order (ids are
/// dense first-seen, so line i IS token id i). The checkpoint stores
/// records as token ids only; without the string->id mapping a restored
/// service could not tokenize new queries consistently. The log is
/// synced BEFORE each insert reaches the service, so every id a
/// WAL-logged record references is covered by a complete line; a torn
/// final line (crash mid-append) can only name an id no durable record
/// uses yet, and reload drops it. Growth from queries rides along in the
/// same id-ordered sweep. Writes reach the page cache (process-crash
/// safe, like --wal-sync=never); sidecar failures warn and never stop
/// serving, matching SimilarityService's durability policy.
class DictLog {
 public:
  /// Fresh durable start: truncate and write every token interned so far.
  bool OpenFresh(const std::string& path, const TokenDictionary& dict) {
    path_ = path;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      Warn();
      return false;
    }
    return Sync(dict);
  }

  /// Restore: intern every complete line in id order, dropping a torn
  /// final line, then rewrite the file (self-healing the tail).
  bool OpenExisting(const std::string& path, TokenDictionary* dict) {
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
        size_t begin = 0;
        while (true) {
          size_t end = contents.find('\n', begin);
          if (end == std::string::npos) break;
          dict->Intern(std::string_view(contents).substr(begin, end - begin));
          begin = end + 1;
        }
      }
    }
    return OpenFresh(path, *dict);
  }

  /// Appends tokens the dictionary has grown since the last sync. A
  /// no-op for non-durable services (never opened).
  bool Sync(const TokenDictionary& dict) {
    if (!out_.is_open() || failed_) return false;
    for (; written_ < dict.size(); ++written_) {
      out_ << dict.ToString(static_cast<TokenId>(written_)) << '\n';
    }
    out_.flush();
    if (!out_) {
      failed_ = true;
      Warn();
      return false;
    }
    return true;
  }

 private:
  void Warn() {
    std::fprintf(stderr,
                 "warning: cannot write token dictionary %s: %s "
                 "(serving continues; restores may mis-tokenize queries)\n",
                 path_.c_str(), std::strerror(errno));
  }

  std::ofstream out_;
  std::string path_;
  size_t written_ = 0;
  bool failed_ = false;
};

/// Tokenizer shared by the corpus, inserts and queries: every text goes
/// through the same builder with the same (growing) dictionary, so query
/// tokens line up with index tokens.
class LineTokenizer {
 public:
  LineTokenizer(std::string mode, TokenDictionary* dict)
      : mode_(std::move(mode)), dict_(dict) {}

  int q() const { return mode_ == "words" ? 3 : mode_[0] - '0'; }

  RecordSet Build(const std::vector<std::string>& lines) const {
    if (mode_ == "words") return BuildWordCorpus(lines, dict_);
    return BuildQGramCorpus(lines, q(), dict_);
  }

  RecordSet BuildOne(const std::string& line) const {
    return Build(std::vector<std::string>{line});
  }

 private:
  std::string mode_;
  TokenDictionary* dict_;
};

void PrintMatches(const std::vector<QueryMatch>& matches) {
  for (const QueryMatch& m : matches) {
    std::printf("%u\t%.6g\n", m.id, m.score);
  }
}

std::vector<QueryMatch> Answer(const SimilarityService& service,
                               const ServeCliOptions& options,
                               RecordView query, std::string text) {
  if (options.topk > 0) {
    return service.QueryTopK(query, options.topk, std::move(text));
  }
  return service.Query(query, std::move(text));
}

int RunBatch(const SimilarityService& service,
             const ServeCliOptions& options, const LineTokenizer& tokenizer) {
  std::optional<std::vector<std::string>> lines = ReadLines(options.queries);
  if (!lines.has_value()) return 1;
  RecordSet queries = tokenizer.Build(*lines);
  if (options.topk > 0) {
    for (RecordId q = 0; q < queries.size(); ++q) {
      for (const QueryMatch& m : service.QueryTopK(
               queries.record(q), options.topk, queries.text(q))) {
        std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
      }
    }
    return 0;
  }
  std::vector<std::vector<QueryMatch>> results = service.BatchQuery(queries);
  for (RecordId q = 0; q < results.size(); ++q) {
    for (const QueryMatch& m : results[q]) {
      std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
    }
  }
  return 0;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

void WarnIfDurabilityDegraded(const SimilarityService& service) {
  if (service.durable() && !service.durability_status().ok()) {
    std::fprintf(stderr, "warning: durability degraded: %s\n",
                 service.durability_status().ToString().c_str());
  }
}

int RunRepl(SimilarityService* service, const ServeCliOptions& options,
            const LineTokenizer& tokenizer, const TokenDictionary& dict,
            DictLog* dict_log) {
  // A non-tty stdin means a script is driving the REPL: every ERR line
  // then also fails the exit code, so a typo in a command file cannot be
  // silently ignored. At a terminal the ERR line alone is the feedback.
  const bool scripted = isatty(fileno(stdin)) == 0;
  int rc = 0;
  auto err = [&](const std::string& detail) {
    std::printf("ERR %s\n", detail.c_str());
    if (scripted) rc = 1;
  };
  // std::getline delivers a final line even when the input ends without a
  // trailing newline, so a scripted pipe like `printf '+ a b c'` still
  // executes its last command (tools/CMakeLists.txt smoke-tests this).
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const char op = line[0];
    if (op == '!') {
      const std::string arg = Trim(line.substr(1));
      if (!arg.empty() && arg != "compact") {
        err("unknown command '" + line + "' (want '! compact')");
      } else {
        service->Compact();
        std::printf("compacted; %zu records, epoch %llu\n", service->size(),
                    static_cast<unsigned long long>(service->epoch()));
        WarnIfDurabilityDegraded(*service);
      }
    } else if (op == '?') {
      const std::string arg = Trim(line.substr(1));
      if (!arg.empty() && arg != "stats") {
        err("unknown command '" + line + "' (want '? stats')");
      } else {
        std::printf("%s\n", service->StatsJson().c_str());
      }
    } else if (op == '+') {
      // Empty text is legal: token-less records route to shard 0 and can
      // only be found by short-record predicates (edit distance).
      RecordSet staged = tokenizer.BuildOne(Trim(line.substr(1)));
      // New tokens must hit the sidecar before the record hits the WAL.
      dict_log->Sync(dict);
      RecordId id = service->Insert(staged.record(0), staged.text(0));
      std::printf("inserted %u\n", id);
    } else if (op == '-') {
      const std::string arg = Trim(line.substr(1));
      uint64_t id = 0;
      if (!ParseUint64(arg, &id) || id > UINT32_MAX) {
        err("malformed delete '" + line + "' (want '- <id>')");
      } else if (service->Delete(static_cast<RecordId>(id))) {
        std::printf("deleted %llu\n", static_cast<unsigned long long>(id));
      } else {
        err("no live record with id " + arg);
      }
    } else {
      RecordSet staged = tokenizer.BuildOne(line);
      PrintMatches(
          Answer(*service, options, staged.record(0), staged.text(0)));
    }
    std::fflush(stdout);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ServeCliOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  TokenDictionary dict;
  LineTokenizer tokenizer(options->tokens, &dict);
  std::unique_ptr<Predicate> pred = MakePredicate(*options, tokenizer.q());

  ServiceOptions service_options;
  service_options.memtable_limit =
      static_cast<size_t>(options->memtable_limit);
  service_options.num_threads = options->threads;
  service_options.num_shards = static_cast<size_t>(options->shards);
  service_options.data_dir = options->data_dir;
  service_options.wal_sync = options->wal_sync == "never"
                                 ? WalSyncPolicy::kNever
                                 : WalSyncPolicy::kAlways;

  DictLog dict_log;
  std::unique_ptr<SimilarityService> service;
  if (!options->data_dir.empty() && CheckpointExists(options->data_dir)) {
    // Restore: the checkpoint + WAL are the source of truth, --corpus is
    // deliberately not re-read (inserting it again would duplicate every
    // record the previous incarnation already made durable).
    dict_log.OpenExisting(options->data_dir + "/dict.log", &dict);
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(*pred, service_options);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot restore from %s: %s\n",
                   options->data_dir.c_str(),
                   restored.status().ToString().c_str());
      return 1;
    }
    service = std::move(restored).value();
    std::fprintf(stderr, "restored %zu records from %s (epoch %llu)\n",
                 service->size(), options->data_dir.c_str(),
                 static_cast<unsigned long long>(service->epoch()));
  } else {
    if (options->corpus.empty()) {
      std::fprintf(stderr, "no checkpoint in %s and no --corpus to start from\n",
                   options->data_dir.c_str());
      return 1;
    }
    std::optional<std::vector<std::string>> corpus_lines =
        ReadLines(options->corpus);
    if (!corpus_lines.has_value()) return 1;
    RecordSet corpus = tokenizer.Build(*corpus_lines);
    if (!options->data_dir.empty()) {
      // The dictionary must be on disk before the constructor writes the
      // initial checkpoint: a crash between the two must never leave a
      // restorable checkpoint without its token mapping.
      if (Status made = EnsureDataDir(options->data_dir); !made.ok()) {
        std::fprintf(stderr, "warning: %s\n", made.ToString().c_str());
      }
      dict_log.OpenFresh(options->data_dir + "/dict.log", dict);
    }
    service = std::make_unique<SimilarityService>(std::move(corpus), *pred,
                                                  service_options);
  }
  WarnIfDurabilityDegraded(*service);
  std::fprintf(stderr, "serving %zu records (%s, %s, %zu shards%s)\n",
               service->size(), options->predicate.c_str(),
               options->tokens.c_str(), service->num_shards(),
               service->durable() ? ", durable" : "");

  int rc = options->queries.empty()
               ? RunRepl(service.get(), *options, tokenizer, dict, &dict_log)
               : RunBatch(*service, *options, tokenizer);
  WarnIfDurabilityDegraded(*service);
  if (options->stats_json) {
    std::fprintf(stderr, "%s\n", service->StatsJson().c_str());
  }
  return rc;
}
