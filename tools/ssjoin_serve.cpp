// ssjoin_serve — stand up a SimilarityService over a text corpus and
// answer lookups interactively or from a batch file. One record per line.
//
//   ssjoin_serve --corpus=records.txt --predicate=jaccard --threshold=0.8
//   ssjoin_serve --corpus=records.txt --queries=queries.txt --threads=4
//   ssjoin_serve --corpus=records.txt --topk=5 < queries.txt
//
// Interactive commands (stdin, one per line) are the shared
// serve/protocol grammar — the same one ssjoin_server speaks over TCP:
//   <text>        look up the record; prints "id<TAB>score" per match
//   + <text>      insert the record into the corpus (empty text is legal)
//   - <id>        delete record <id> (tombstoned; dropped at compaction)
//   ?k <k> <text> rank the k nearest records for this one query
//   ! compact     fold the memtable into the base index
//   ? stats       print the service stats JSON ("stats" works too)
// A malformed or unknown command prints one "ERR ..." line; when stdin is
// not a terminal (a scripted pipe or file), any ERR also makes the
// process exit nonzero, so driver scripts cannot silently lose commands.
// SIGINT/SIGTERM drain the in-flight command and exit cleanly (logging
// the final WAL position when --data-dir is set); a second signal
// force-exits. (EOF quits; stats JSON also lands on stderr at exit with
// --stats-json)

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve_common.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::tools;

constexpr const char kUsage[] =
    "usage: ssjoin_serve --corpus=FILE [flags]\n"
    "  --corpus=FILE         corpus file, one record per line (required)\n"
    "  --predicate=NAME      overlap | jaccard | cosine | dice |\n"
    "                        edit-distance (default jaccard)\n"
    "  --threshold=X         predicate threshold (T, f or k); must be > 0\n"
    "  --tokens=MODE         words (default) | 2gram | 3gram | 4gram\n"
    "  --queries=FILE        batch mode: answer every line of FILE via\n"
    "                        BatchQuery and exit (no REPL)\n"
    "  --topk=K              rank the K nearest records per query instead\n"
    "                        of thresholding\n"
    "  --threads=N           BatchQuery worker threads (default hardware)\n"
    "  --shards=N            token-range shards for the base tier; answers\n"
    "                        are identical for every value (default 1)\n"
    "  --memtable-limit=N    auto-compact at N memtable records\n"
    "                        (default 256; 0 = only on '! compact')\n"
    "  --bitmap-bits=N       token-parity bitmap prefilter: 256 (default,\n"
    "                        on) | 0 (off). Answers are identical either\n"
    "                        way; the gate only skips merge work\n"
    "  --data-dir=DIR        durable mode: keep a checkpoint + write-ahead\n"
    "                        log under DIR. When DIR already holds a\n"
    "                        checkpoint the service restores from it\n"
    "                        (--corpus is NOT re-read; pass the same\n"
    "                        --predicate/--threshold/--memtable-limit);\n"
    "                        otherwise it starts fresh from --corpus\n"
    "  --wal-sync=MODE       always (default: fsync each op) | never\n"
    "                        (page cache only: survives a crash of this\n"
    "                        process, not of the machine)\n"
    "  --resident-budget=N   out-of-core base tier (needs --data-dir):\n"
    "                        serve segments from mmap'd files, keeping at\n"
    "                        most ~N bytes of segment arenas resident;\n"
    "                        answers are identical to the in-memory mode\n"
    "                        (default 0 = fully in memory)\n"
    "  --stats-json          print the stats JSON to stderr at exit\n";

std::optional<ServeCliOptions> ParseArgs(int argc, char** argv) {
  ServeCliOptions options;
  for (int i = 1; i < argc; ++i) {
    switch (ParseServeFlag(argv[i], &options)) {
      case FlagOutcome::kMatched:
        continue;
      case FlagOutcome::kInvalid:
        return std::nullopt;
      case FlagOutcome::kUnmatched:
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        return std::nullopt;
    }
  }
  if (!ValidateServeOptions(options)) return std::nullopt;
  return options;
}

int RunBatch(const SimilarityService& service,
             const ServeCliOptions& options, const LineTokenizer& tokenizer) {
  std::optional<std::vector<std::string>> lines = ReadLines(options.queries);
  if (!lines.has_value()) return 1;
  RecordSet queries = tokenizer.Build(*lines);
  if (options.topk > 0) {
    for (RecordId q = 0; q < queries.size(); ++q) {
      for (const QueryMatch& m : service.QueryTopK(
               queries.record(q), options.topk, queries.text(q))) {
        std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
      }
    }
    return 0;
  }
  std::vector<std::vector<QueryMatch>> results = service.BatchQuery(queries);
  for (RecordId q = 0; q < results.size(); ++q) {
    for (const QueryMatch& m : results[q]) {
      std::printf("%u\t%u\t%.6g\n", q, m.id, m.score);
    }
  }
  return 0;
}

int RunRepl(SimilarityService* service, const ServeCliOptions& options,
            const LineTokenizer& tokenizer, const TokenDictionary& dict,
            DictLog* dict_log) {
  // A non-tty stdin means a script is driving the REPL: every ERR line
  // then also fails the exit code, so a typo in a command file cannot be
  // silently ignored. At a terminal the ERR line alone is the feedback.
  const bool scripted = isatty(fileno(stdin)) == 0;
  int rc = 0;
  // The exact session the network front door runs per connection: shared
  // grammar, shared execution, shared output bytes.
  ServiceDispatcher dispatcher(
      service,
      [&tokenizer](const std::vector<std::string>& lines) {
        return tokenizer.Build(lines);
      },
      static_cast<size_t>(options.topk),
      // New tokens must hit the sidecar before the record hits the WAL.
      [&dict, dict_log] { dict_log->Sync(dict); });
  // std::getline delivers a final line even when the input ends without a
  // trailing newline, so a scripted pipe like `printf '+ a b c'` still
  // executes its last command (tools/CMakeLists.txt smoke-tests this).
  // A first SIGINT/SIGTERM interrupts the blocking read (no SA_RESTART),
  // which lands here as a failed getline — the in-flight command always
  // finishes before the loop is left.
  std::string line;
  while (!ShutdownRequested() && std::getline(std::cin, line)) {
    Request request = ParseRequest(line);
    if (request.type == RequestType::kNone) continue;
    Response response = dispatcher.Execute(request);
    if (response.ok) {
      std::fwrite(response.payload.data(), 1, response.payload.size(),
                  stdout);
    } else {
      std::printf("ERR %s\n", response.payload.c_str());
      if (scripted) rc = 1;
    }
    if (request.type == RequestType::kCompact) {
      WarnIfDurabilityDegraded(*service);
    }
    std::fflush(stdout);
  }
  if (ShutdownRequested()) LogCleanShutdown(service);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ServeCliOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  TokenDictionary dict;
  LineTokenizer tokenizer(options->tokens, &dict);
  std::unique_ptr<Predicate> pred = MakePredicate(*options, tokenizer.q());

  DictLog dict_log;
  InstallShutdownSignals();
  std::unique_ptr<SimilarityService> service =
      SetUpService(*options, *pred, tokenizer, &dict, &dict_log);
  if (service == nullptr) return 1;
  std::fprintf(stderr, "serving %zu records (%s, %s, %zu shards%s)\n",
               service->size(), options->predicate.c_str(),
               options->tokens.c_str(), service->num_shards(),
               service->durable() ? ", durable" : "");

  int rc = options->queries.empty()
               ? RunRepl(service.get(), *options, tokenizer, dict, &dict_log)
               : RunBatch(*service, *options, tokenizer);
  WarnIfDurabilityDegraded(*service);
  if (options->stats_json) {
    std::fprintf(stderr, "%s\n", service->StatsJson().c_str());
  }
  return rc;
}
