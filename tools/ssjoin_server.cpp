// ssjoin_server — the network front door for the serving tier: an epoll
// acceptor + N worker event loops speaking the shared serve/protocol
// grammar over a pipelined, length-delimited line protocol (see
// src/net/wire.h). Same corpus/durability flags as ssjoin_serve, plus
// the listener knobs.
//
//   ssjoin_server --corpus=records.txt --port=7878 --net-threads=4
//   ssjoin_server --corpus=records.txt --port=0           # ephemeral
//
// Startup prints one machine-readable "PORT <n>" line to stdout (the
// ephemeral-port handshake for scripts), then serves until SIGINT or
// SIGTERM: the listener closes, in-flight requests drain, every
// connection flushes and closes, and — when --data-dir is set — the
// final WAL position is logged. A second signal force-exits.

#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/server.h"
#include "serve_common.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::tools;

constexpr const char kUsage[] =
    "usage: ssjoin_server --corpus=FILE [flags]\n"
    "  network flags:\n"
    "  --port=N              TCP port to listen on (0 = kernel-assigned\n"
    "                        ephemeral port, reported on stdout; default 0)\n"
    "  --host=ADDR           IPv4 address or hostname to bind, resolved\n"
    "                        via getaddrinfo (default 127.0.0.1)\n"
    "  --net-threads=N       worker event-loop threads (default\n"
    "                        min(hardware, 4); the acceptor adds one)\n"
    "  --idle-timeout-ms=N   close connections silent for N ms\n"
    "                        (default 0 = never)\n"
    "  --max-request-bytes=N longest accepted request line; longer gets\n"
    "                        one ERR frame, then close (default 1048576)\n"
    "  serving flags (same as ssjoin_serve):\n"
    "  --corpus=FILE --predicate=NAME --threshold=X --tokens=MODE\n"
    "  --topk=K --threads=N --shards=N --memtable-limit=N\n"
    "  --bitmap-bits=N --data-dir=DIR --wal-sync=MODE\n"
    "  --resident-budget=BYTES --stats-json\n";

struct ServerCliOptions {
  ServeCliOptions serve;
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  int net_threads = 0;
  uint64_t idle_timeout_ms = 0;
  uint64_t max_request_bytes = uint64_t{1} << 20;
};

std::optional<ServerCliOptions> ParseArgs(int argc, char** argv) {
  ServerCliOptions options;
  for (int i = 1; i < argc; ++i) {
    switch (ParseServeFlag(argv[i], &options.serve)) {
      case FlagOutcome::kMatched:
        continue;
      case FlagOutcome::kInvalid:
        return std::nullopt;
      case FlagOutcome::kUnmatched:
        break;
    }
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      if (!ParseUint64(value, &options.port) || options.port > 65535) {
        std::fprintf(stderr, "invalid --port=%s (need 0..65535)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--host", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "--host needs an IPv4 address\n");
        return std::nullopt;
      }
      options.host = value;
    } else if (ParseFlag(argv[i], "--net-threads", &value)) {
      uint64_t threads = 0;
      if (!ParseUint64(value, &threads) || threads == 0 || threads > 256) {
        std::fprintf(stderr, "invalid --net-threads=%s (need 1..256)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.net_threads = static_cast<int>(threads);
    } else if (ParseFlag(argv[i], "--idle-timeout-ms", &value)) {
      if (!ParseUint64(value, &options.idle_timeout_ms)) {
        std::fprintf(stderr,
                     "invalid --idle-timeout-ms=%s (need an integer >= 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--max-request-bytes", &value)) {
      if (!ParseUint64(value, &options.max_request_bytes) ||
          options.max_request_bytes < 16) {
        std::fprintf(stderr,
                     "invalid --max-request-bytes=%s (need an integer >= 16)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  if (!options.serve.queries.empty()) {
    std::fprintf(stderr,
                 "--queries is a batch-mode flag; use ssjoin_serve\n");
    return std::nullopt;
  }
  if (!ValidateServeOptions(options.serve)) return std::nullopt;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<ServerCliOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  TokenDictionary dict;
  LineTokenizer tokenizer(options->serve.tokens, &dict);
  std::unique_ptr<Predicate> pred =
      MakePredicate(options->serve, tokenizer.q());

  DictLog dict_log;
  InstallShutdownSignals();
  std::unique_ptr<SimilarityService> service =
      SetUpService(options->serve, *pred, tokenizer, &dict, &dict_log);
  if (service == nullptr) return 1;

  // Workers tokenize and sync the dictionary sidecar concurrently; the
  // dictionary grows on new tokens, so both go through one mutex. The
  // service itself is internally synchronized.
  std::mutex tokenize_mutex;
  net::ServerOptions server_options;
  server_options.host = options->host;
  server_options.port = static_cast<uint16_t>(options->port);
  server_options.net_threads = options->net_threads;
  server_options.idle_timeout_ms = options->idle_timeout_ms;
  server_options.max_request_bytes =
      static_cast<size_t>(options->max_request_bytes);
  server_options.default_topk = static_cast<size_t>(options->serve.topk);
  net::SimilarityServer server(
      service.get(),
      [&](const std::vector<std::string>& lines) {
        std::lock_guard<std::mutex> lock(tokenize_mutex);
        return tokenizer.Build(lines);
      },
      [&] {
        std::lock_guard<std::mutex> lock(tokenize_mutex);
        dict_log.Sync(dict);
      },
      server_options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  // The handshake line scripts parse to find an ephemeral port.
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "listening on %s:%u (%zu records, %s, %s, %zu shards%s)\n",
               options->host.c_str(), server.port(), service->size(),
               options->serve.predicate.c_str(),
               options->serve.tokens.c_str(), service->num_shards(),
               service->durable() ? ", durable" : "");

  WaitForShutdownSignal();
  std::fprintf(stderr, "draining connections...\n");
  server.Shutdown();
  NetStats net = server.net_stats();
  std::fprintf(stderr,
               "served %llu requests over %llu connections "
               "(%llu protocol errors)\n",
               static_cast<unsigned long long>(net.requests),
               static_cast<unsigned long long>(net.connections_accepted),
               static_cast<unsigned long long>(net.protocol_errors));
  LogCleanShutdown(service.get());
  WarnIfDurabilityDegraded(*service);
  if (options->serve.stats_json) {
    std::fprintf(stderr, "%s\n",
                 AppendNetSection(service->StatsJson(), net).c_str());
  }
  return 0;
}
