#!/usr/bin/env sh
# Builds the AddressSanitizer+UBSan configuration and runs the memory-
# layout test suite under it: the arena/view/index unit tests plus the
# golden-output equivalence suite, which together walk every probe loop
# over the CSR corpus arena and the flat postings buffer, and the
# durability suites (index_io, WAL framing, checkpoint codec, crash
# recovery — including the segmented-corpus suite: multi-segment chain
# restore, orphan segment GC and corrupt segment files), whose
# byte-level decoders parse attacker-shaped torn and corrupted files,
# and the network layer (protocol parser + wire framing + the loopback
# server), whose framers chew on byte-split and oversized input. The
# bitmap differential rig rides along: its gather-based AVX2 lower-bound
# searches and bitmap-arena reads are exactly the pointer arithmetic
# ASan/UBSan exist to check. The serve_recovery_test_mapped leg (ctest
# ENVIRONMENT SSJOIN_RESIDENT_BUDGET=1) repeats the recovery suite with
# the base tier served from mmap'd segment files, so every view-mode
# accessor path over the mapped arenas runs under ASan too.
#
#   tools/run_asan_tests.sh [build-dir]
#
# The ASan build lives in its own directory (default build-asan) so the
# regular build stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -B "$build_dir" -S "$repo_root" -DSSJOIN_ASAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j --target \
      record_view_test corpus_test segmented_corpus_test index_test \
      merge_opt_test bitmap_filter_test arena_equivalence_test \
      differential_test index_io_test serve_recovery_test protocol_test \
      net_loopback_test
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
ctest --test-dir "$build_dir" \
      -R '^(record_view|corpus|segmented_corpus|index_test|merge_opt|bitmap_filter|arena_equivalence|differential|index_io|serve_recovery|protocol|net_loopback)' \
      --output-on-failure
