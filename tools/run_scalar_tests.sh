#!/usr/bin/env sh
# Builds the regular configuration and runs the probe/merge test suites
# with SSJOIN_FORCE_SCALAR=1, pinning the merge backend to the portable
# scalar gallop path. The backend is resolved once per process, so the
# vectorized leg and this scalar leg cannot share a process — this script
# IS the scalar half of the scalar/vector differential: every suite it
# runs asserts the same answers the default (AVX2 where available) leg
# asserts, and MergeLowerBoundTest additionally verifies that the active
# backend really reports "scalar" under the override.
#
#   tools/run_scalar_tests.sh [build-dir]
#
# The build lives in its own directory (default build-scalar) so the
# regular build stays untouched. The binaries are identical to the
# regular build's — only the runtime dispatch differs — but a separate
# directory keeps ctest caches and logs from interleaving.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-scalar"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j --target \
      merge_opt_test bitmap_filter_test differential_test \
      arena_equivalence_test join_equivalence_test prefix_filter_test \
      serve_test serve_shard_test
SSJOIN_FORCE_SCALAR=1
export SSJOIN_FORCE_SCALAR
ctest --test-dir "$build_dir" \
      -R '(merge_opt|bitmap_filter|differential|arena_equivalence|join_equivalence|prefix_filter|serve_test|serve_shard_test)' \
      --output-on-failure
