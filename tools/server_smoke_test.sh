#!/bin/sh
# End-to-end smoke test for the network front door, run from ctest:
#   server_smoke_test.sh <ssjoin_server> <ssjoin_loadgen> <corpus>
#
# Starts ssjoin_server on an ephemeral port (--port=0), reads the
# "PORT <n>" stdout handshake, runs the loadgen protocol-conformance
# check plus a tiny closed-loop sweep against it, then SIGTERMs the
# server and asserts a clean (exit 0) drain.

server=$1
loadgen=$2
corpus=$3
workdir=$(mktemp -d) || exit 1
trap 'rm -rf "$workdir"' EXIT

"$server" --corpus="$corpus" --predicate=jaccard --threshold=0.5 \
  --port=0 --net-threads=2 --max-request-bytes=65536 \
  > "$workdir/stdout" 2> "$workdir/stderr" &
pid=$!

port=
tries=0
while [ $tries -lt 200 ]; do
  port=$(sed -n 's/^PORT //p' "$workdir/stdout")
  [ -n "$port" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "server died before reporting a port" >&2
    cat "$workdir/stderr" >&2
    exit 1
  fi
  sleep 0.05
  tries=$((tries + 1))
done
if [ -z "$port" ]; then
  echo "server never printed the PORT handshake" >&2
  kill -KILL "$pid" 2>/dev/null
  exit 1
fi

rc=0
if ! "$loadgen" --port="$port" --check; then
  echo "loadgen protocol check failed" >&2
  rc=1
fi
if ! "$loadgen" --port="$port" --input="$corpus" \
    --connections=1,2 --pipeline=4 --ops=50 > "$workdir/sweep"; then
  echo "loadgen sweep failed" >&2
  rc=1
fi
# Two sweep rows (header + 2 connection counts) with zero errors each.
if [ "$(wc -l < "$workdir/sweep")" != 3 ]; then
  echo "unexpected sweep output:" >&2
  cat "$workdir/sweep" >&2
  rc=1
fi
if tail -n +2 "$workdir/sweep" | grep -qv ',0$'; then
  echo "sweep reported request errors:" >&2
  cat "$workdir/sweep" >&2
  rc=1
fi

kill -TERM "$pid"
wait "$pid"
server_rc=$?
if [ "$server_rc" != 0 ]; then
  echo "server exited $server_rc after SIGTERM (want 0)" >&2
  cat "$workdir/stderr" >&2
  rc=1
fi
# The drain summary is part of the shutdown contract.
if ! grep -q 'served .* requests over .* connections' "$workdir/stderr"; then
  echo "server shutdown summary missing:" >&2
  cat "$workdir/stderr" >&2
  rc=1
fi
exit $rc
