#!/usr/bin/env sh
# Builds the ThreadSanitizer configuration and runs the concurrency test
# suite (thread pool, parallel joins, serving layer, network loopback)
# under it. The serve_test_mapped / serve_shard_test_mapped ctest legs
# (ENVIRONMENT SSJOIN_RESIDENT_BUDGET=1) repeat the serving suites with
# the base tier served from mmap'd segment files, putting the mapped
# read path under concurrent readers and a compacting writer.
#
#   tools/run_tsan_tests.sh [build-dir]
#
# The TSan build lives in its own directory (default build-tsan) so the
# regular build stays untouched.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" -DSSJOIN_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j --target \
      thread_pool_test parallel_join_test serve_test serve_shard_test \
      bitmap_filter_test net_loopback_test
# The differential harness — including its scripted Delete schedules
# (tombstones riding delta images under concurrent readers) — is
# CPU-heavy under TSan; keep the sweep small here (override by exporting
# SSJOIN_DIFF_SEEDS). The concurrency stress tests, whose writers
# interleave inserts, deletes and compactions, run in full regardless.
SSJOIN_DIFF_SEEDS=${SSJOIN_DIFF_SEEDS:-2}
export SSJOIN_DIFF_SEEDS
ctest --test-dir "$build_dir" \
      -R '(thread_pool|parallel_join|serve_test|serve_shard_test|bitmap_filter|net_loopback)' \
      --output-on-failure
