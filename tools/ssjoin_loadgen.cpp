// ssjoin_loadgen — closed-loop load generator for ssjoin_server: N
// concurrent connections, each keeping a fixed pipeline of requests in
// flight, sweeping connections x pipeline-depth x op-mix and reporting
// achieved QPS and p50/p99/p999 request latency.
//
//   ssjoin_loadgen --port=7878 --input=records.txt
//   ssjoin_loadgen --port=7878 --input=records.txt --connections=1,8,64,256
//   ssjoin_loadgen --port=7878 --input=records.txt --insert-pct=5 --json
//   ssjoin_loadgen --port=7878 --check        # protocol conformance smoke
//
// Closed loop: a connection sends its next request only when one of its
// in-flight requests completes, so achieved QPS is the equilibrium
// throughput at that concurrency, not an offered-load guess. Latency is
// send-to-response per request (queueing inside the pipeline included).
// --check drives one scripted connection through every command form
// (including pipelining and expected errors) and exits nonzero on any
// protocol deviation — the CI server smoke test.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "serve_common.h"

namespace {

using namespace ssjoin;
using namespace ssjoin::tools;

constexpr const char kUsage[] =
    "usage: ssjoin_loadgen --port=N (--input=FILE | --check) [flags]\n"
    "  --port=N            server port (required)\n"
    "  --host=ADDR         server IPv4 address (default 127.0.0.1)\n"
    "  --input=FILE        texts for queries/inserts, one per line\n"
    "  --connections=LIST  comma-separated sweep, e.g. 1,8,64,256\n"
    "                      (default 1,8,64,256)\n"
    "  --pipeline=N        requests kept in flight per connection\n"
    "                      (default 8)\n"
    "  --ops=N             requests per connection per sweep point\n"
    "                      (default 2000)\n"
    "  --insert-pct=P      percent of ops that insert (default 0)\n"
    "  --delete-pct=P      percent of ops that delete a record this\n"
    "                      connection inserted (default 0)\n"
    "  --json              emit one JSON array of sweep rows on stdout\n"
    "                      (default CSV)\n"
    "  --check             protocol conformance smoke: one scripted\n"
    "                      connection, exit nonzero on any deviation\n";

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint64_t port = 0;
  std::string input;
  std::vector<uint64_t> connections = {1, 8, 64, 256};
  uint64_t pipeline = 8;
  uint64_t ops = 2000;
  uint64_t insert_pct = 0;
  uint64_t delete_pct = 0;
  bool json = false;
  bool check = false;
};

uint64_t MonotonicMicros() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000;
}

bool ParseConnectionList(const std::string& text,
                         std::vector<uint64_t>* out) {
  out->clear();
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t comma = text.find(',', begin);
    size_t end = comma == std::string::npos ? text.size() : comma;
    uint64_t value = 0;
    if (!ParseUint64(text.substr(begin, end - begin), &value) ||
        value == 0 || value > 4096) {
      return false;
    }
    out->push_back(value);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return !out->empty();
}

std::optional<LoadGenOptions> ParseArgs(int argc, char** argv) {
  LoadGenOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      if (!ParseUint64(value, &options.port) || options.port == 0 ||
          options.port > 65535) {
        std::fprintf(stderr, "invalid --port=%s (need 1..65535)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--input", &value)) {
      options.input = value;
    } else if (ParseFlag(argv[i], "--connections", &value)) {
      if (!ParseConnectionList(value, &options.connections)) {
        std::fprintf(stderr,
                     "invalid --connections=%s (want e.g. 1,8,64,256; "
                     "each 1..4096)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--pipeline", &value)) {
      if (!ParseUint64(value, &options.pipeline) || options.pipeline == 0 ||
          options.pipeline > 4096) {
        std::fprintf(stderr, "invalid --pipeline=%s (need 1..4096)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--ops", &value)) {
      if (!ParseUint64(value, &options.ops) || options.ops == 0) {
        std::fprintf(stderr, "invalid --ops=%s (need an integer > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--insert-pct", &value)) {
      if (!ParseUint64(value, &options.insert_pct) ||
          options.insert_pct > 100) {
        std::fprintf(stderr, "invalid --insert-pct=%s (need 0..100)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--delete-pct", &value)) {
      if (!ParseUint64(value, &options.delete_pct) ||
          options.delete_pct > 100) {
        std::fprintf(stderr, "invalid --delete-pct=%s (need 0..100)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      options.check = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port=N is required\n");
    return std::nullopt;
  }
  if (options.insert_pct + options.delete_pct > 100) {
    std::fprintf(stderr, "--insert-pct + --delete-pct must be <= 100\n");
    return std::nullopt;
  }
  if (!options.check && options.input.empty()) {
    std::fprintf(stderr, "--input=FILE is required (except with --check)\n");
    return std::nullopt;
  }
  return options;
}

/// Blocking client socket, TCP_NODELAY. Returns -1 after printing.
int Connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
    return -1;
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "not an IPv4 address: %s\n", host.c_str());
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until `count` responses have been decoded (appended to out).
bool ReadResponses(int fd, net::ResponseReader* reader, size_t count,
                   std::vector<net::WireResponse>* out) {
  while (out->size() < count) {
    char buffer[65536];
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // premature EOF
    if (!reader->Feed(std::string_view(buffer, static_cast<size_t>(n)),
                      out)) {
      return false;
    }
  }
  return true;
}

// -------------------------------------------------------------------
// Sweep mode.

struct ConnectionResult {
  std::vector<uint32_t> latencies_us;
  uint64_t errors = 0;  // unexpected ERR frames or transport failures
  bool transport_ok = true;
};

/// Deterministic per-connection op stream (64-bit LCG — this is load,
/// not statistics).
class OpStream {
 public:
  OpStream(uint64_t seed, const LoadGenOptions* options,
           const std::vector<std::string>* lines)
      : state_(seed * 2654435761u + 99991), options_(options),
        lines_(lines) {}

  /// The next request line (with trailing newline); `expect_err` is set
  /// for ops whose ERR response is part of the schedule (none today).
  std::string Next() {
    uint64_t roll = NextRand() % 100;
    if (roll < options_->insert_pct) {
      pending_inserts_++;
      return "+ " + Text() + "\n";
    }
    if (roll < options_->insert_pct + options_->delete_pct &&
        !owned_ids_.empty()) {
      uint32_t id = owned_ids_.front();
      owned_ids_.pop_front();
      return "- " + std::to_string(id) + "\n";
    }
    // The explicit query form: input lines may begin with sigil bytes.
    return "? " + Text() + "\n";
  }

  /// Called per completed response, in order, to harvest inserted ids
  /// for later deletes.
  void OnResponse(const net::WireResponse& response) {
    if (response.ok && response.payload.rfind("inserted ", 0) == 0) {
      owned_ids_.push_back(static_cast<uint32_t>(
          std::strtoul(response.payload.c_str() + 9, nullptr, 10)));
    }
  }

 private:
  uint64_t NextRand() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  std::string Text() {
    return (*lines_)[NextRand() % lines_->size()];
  }

  uint64_t state_;
  const LoadGenOptions* options_;
  const std::vector<std::string>* lines_;
  std::deque<uint32_t> owned_ids_;
  uint64_t pending_inserts_ = 0;
};

void RunConnection(const LoadGenOptions& options,
                   const std::vector<std::string>& lines, uint64_t seed,
                   std::atomic<uint64_t>* ready, uint64_t total_threads,
                   ConnectionResult* result) {
  int fd = Connect(options.host, static_cast<uint16_t>(options.port));
  if (fd < 0) {
    result->transport_ok = false;
    return;
  }
  // Barrier: connect everyone first so the timed region measures
  // steady-state serving, not accept-queue churn.
  ready->fetch_add(1, std::memory_order_acq_rel);
  while (ready->load(std::memory_order_acquire) < total_threads) {
    std::this_thread::yield();
  }

  OpStream ops(seed, &options, &lines);
  net::ResponseReader reader;
  std::vector<net::WireResponse> responses;
  std::deque<uint64_t> send_ts;
  uint64_t sent = 0, done = 0;
  result->latencies_us.reserve(options.ops);
  while (done < options.ops) {
    // Top the pipeline up in one write.
    if (sent < options.ops && send_ts.size() < options.pipeline) {
      std::string batch;
      uint64_t now = MonotonicMicros();
      while (sent < options.ops && send_ts.size() < options.pipeline) {
        batch += ops.Next();
        send_ts.push_back(now);
        ++sent;
      }
      if (!WriteAll(fd, batch)) {
        result->transport_ok = false;
        break;
      }
    }
    responses.clear();
    if (!ReadResponses(fd, &reader, 1, &responses)) {
      result->transport_ok = false;
      break;
    }
    uint64_t now = MonotonicMicros();
    for (const net::WireResponse& response : responses) {
      if (send_ts.empty()) {
        result->transport_ok = false;  // more responses than requests
        break;
      }
      result->latencies_us.push_back(
          static_cast<uint32_t>(std::min<uint64_t>(
              now - send_ts.front(), UINT32_MAX)));
      send_ts.pop_front();
      ++done;
      ops.OnResponse(response);
      // Deletes may legitimately miss (a pipelined delete of an id a
      // concurrent compaction dropped cannot happen — ids are ours — so
      // any ERR here is unexpected).
      if (!response.ok) result->errors++;
    }
  }
  ::close(fd);
}

struct SweepRow {
  uint64_t connections;
  uint64_t pipeline;
  uint64_t total_ops;
  double seconds;
  double qps;
  uint64_t p50_us, p90_us, p99_us, p999_us, max_us;
  uint64_t errors;
};

uint64_t Percentile(const std::vector<uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

bool RunSweepPoint(const LoadGenOptions& options,
                   const std::vector<std::string>& lines,
                   uint64_t connections, SweepRow* row) {
  std::vector<ConnectionResult> results(connections);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> ready{0};
  uint64_t start = MonotonicMicros();
  for (uint64_t c = 0; c < connections; ++c) {
    threads.emplace_back(RunConnection, std::cref(options),
                         std::cref(lines), c + 1, &ready, connections,
                         &results[c]);
  }
  for (std::thread& thread : threads) thread.join();
  uint64_t elapsed = MonotonicMicros() - start;

  std::vector<uint32_t> all;
  uint64_t errors = 0;
  bool ok = true;
  for (ConnectionResult& result : results) {
    all.insert(all.end(), result.latencies_us.begin(),
               result.latencies_us.end());
    errors += result.errors;
    ok = ok && result.transport_ok;
  }
  std::sort(all.begin(), all.end());
  row->connections = connections;
  row->pipeline = options.pipeline;
  row->total_ops = all.size();
  row->seconds = static_cast<double>(elapsed) / 1e6;
  row->qps = row->seconds > 0
                 ? static_cast<double>(all.size()) / row->seconds
                 : 0;
  row->p50_us = Percentile(all, 0.50);
  row->p90_us = Percentile(all, 0.90);
  row->p99_us = Percentile(all, 0.99);
  row->p999_us = Percentile(all, 0.999);
  row->max_us = all.empty() ? 0 : all.back();
  row->errors = errors;
  return ok;
}

int RunSweep(const LoadGenOptions& options) {
  std::optional<std::vector<std::string>> lines = ReadLines(options.input);
  if (!lines.has_value()) return 1;
  if (lines->empty()) {
    std::fprintf(stderr, "%s holds no lines\n", options.input.c_str());
    return 1;
  }
  if (!options.json) {
    std::printf(
        "connections,pipeline,total_ops,seconds,qps,p50_us,p90_us,p99_us,"
        "p999_us,max_us,errors\n");
  } else {
    std::printf("[\n");
  }
  bool ok = true;
  for (size_t i = 0; i < options.connections.size(); ++i) {
    SweepRow row;
    ok = RunSweepPoint(options, *lines, options.connections[i], &row) && ok;
    if (options.json) {
      std::printf(
          "  {\"connections\": %llu, \"pipeline\": %llu, "
          "\"total_ops\": %llu, \"seconds\": %.3f, \"qps\": %.0f, "
          "\"p50_us\": %llu, \"p90_us\": %llu, \"p99_us\": %llu, "
          "\"p999_us\": %llu, \"max_us\": %llu, \"errors\": %llu}%s\n",
          static_cast<unsigned long long>(row.connections),
          static_cast<unsigned long long>(row.pipeline),
          static_cast<unsigned long long>(row.total_ops), row.seconds,
          row.qps, static_cast<unsigned long long>(row.p50_us),
          static_cast<unsigned long long>(row.p90_us),
          static_cast<unsigned long long>(row.p99_us),
          static_cast<unsigned long long>(row.p999_us),
          static_cast<unsigned long long>(row.max_us),
          static_cast<unsigned long long>(row.errors),
          i + 1 < options.connections.size() ? "," : "");
    } else {
      std::printf("%llu,%llu,%llu,%.3f,%.0f,%llu,%llu,%llu,%llu,%llu,%llu\n",
                  static_cast<unsigned long long>(row.connections),
                  static_cast<unsigned long long>(row.pipeline),
                  static_cast<unsigned long long>(row.total_ops),
                  row.seconds, row.qps,
                  static_cast<unsigned long long>(row.p50_us),
                  static_cast<unsigned long long>(row.p90_us),
                  static_cast<unsigned long long>(row.p99_us),
                  static_cast<unsigned long long>(row.p999_us),
                  static_cast<unsigned long long>(row.max_us),
                  static_cast<unsigned long long>(row.errors));
    }
    std::fflush(stdout);
  }
  if (options.json) std::printf("]\n");
  return ok ? 0 : 1;
}

// -------------------------------------------------------------------
// Check mode: drive one connection through every command form and fail
// loudly on any deviation from the protocol contract.

#define CHECK_OR_FAIL(cond, what)                                   \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "check failed: %s\n", what);             \
      return 1;                                                     \
    }                                                               \
  } while (0)

int RunCheck(const LoadGenOptions& options) {
  int fd = Connect(options.host, static_cast<uint16_t>(options.port));
  if (fd < 0) return 1;
  net::ResponseReader reader;
  std::vector<net::WireResponse> responses;
  auto roundtrip = [&](const std::string& request,
                       size_t count) -> bool {
    responses.clear();
    return WriteAll(fd, request) &&
           ReadResponses(fd, &reader, count, &responses);
  };

  // 1. stats — and over the network it must carry the net section.
  CHECK_OR_FAIL(roundtrip("? stats\n", 1), "stats roundtrip");
  CHECK_OR_FAIL(responses[0].ok, "stats is OK");
  CHECK_OR_FAIL(
      responses[0].payload.find("\"point_queries\"") != std::string::npos,
      "stats payload is the service JSON");
  CHECK_OR_FAIL(responses[0].payload.find("\"net\"") != std::string::npos,
                "stats payload has the net counter section");

  // 2. insert; harvest the id.
  CHECK_OR_FAIL(roundtrip("+ loadgen check record alpha beta gamma\n", 1),
                "insert roundtrip");
  CHECK_OR_FAIL(responses[0].ok &&
                    responses[0].payload.rfind("inserted ", 0) == 0,
                "insert acknowledges 'inserted <id>'");
  std::string idText =
      responses[0].payload.substr(9, responses[0].payload.size() - 10);
  // 3. query finds it (explicit and bare forms).
  CHECK_OR_FAIL(roundtrip("? loadgen check record alpha beta gamma\n", 1),
                "query roundtrip");
  CHECK_OR_FAIL(responses[0].ok &&
                    responses[0].payload.find(idText + "\t") !=
                        std::string::npos,
                "query answer lists the inserted id");
  CHECK_OR_FAIL(roundtrip("loadgen check record alpha beta gamma\n", 1),
                "bare query roundtrip");
  CHECK_OR_FAIL(responses[0].ok &&
                    responses[0].payload.find(idText + "\t") !=
                        std::string::npos,
                "bare query answer lists the inserted id");

  // 4. top-k.
  CHECK_OR_FAIL(roundtrip("?k 1 loadgen check record alpha beta gamma\n", 1),
                "topk roundtrip");
  CHECK_OR_FAIL(responses[0].ok && !responses[0].payload.empty(),
                "topk returns one ranked line");

  // 5. pipelined burst: five queries in one write, five responses, in
  // order, every one identical to the single-shot answer.
  std::string expected = responses[0].payload;
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "?k 1 loadgen check record alpha beta gamma\n";
  }
  CHECK_OR_FAIL(roundtrip(burst, 5), "pipelined burst roundtrip");
  for (int i = 0; i < 5; ++i) {
    CHECK_OR_FAIL(responses[i].ok && responses[i].payload == expected,
                  "pipelined responses match the single-shot answer");
  }

  // 6. delete; double delete errs with the REPL's exact message.
  CHECK_OR_FAIL(roundtrip("- " + idText + "\n", 1), "delete roundtrip");
  CHECK_OR_FAIL(responses[0].ok &&
                    responses[0].payload == "deleted " + idText + "\n",
                "delete acknowledges");
  CHECK_OR_FAIL(roundtrip("- " + idText + "\n", 1),
                "double delete roundtrip");
  CHECK_OR_FAIL(!responses[0].ok &&
                    responses[0].payload ==
                        "no live record with id " + idText,
                "double delete errs with the REPL string");

  // 7. malformed delete: the REPL's exact ERR detail.
  CHECK_OR_FAIL(roundtrip("- xyz\n", 1), "malformed delete roundtrip");
  CHECK_OR_FAIL(!responses[0].ok &&
                    responses[0].payload ==
                        "malformed delete '- xyz' (want '- <id>')",
                "malformed delete errs with the REPL string");

  // 8. compact.
  CHECK_OR_FAIL(roundtrip("! compact\n", 1), "compact roundtrip");
  CHECK_OR_FAIL(responses[0].ok &&
                    responses[0].payload.rfind("compacted;", 0) == 0,
                "compact acknowledges");

  // 9. reader hardening (local, no server involved): a header line that
  // never terminates must poison the reader once it passes the cap,
  // instead of buffering without bound.
  {
    net::ResponseReader hostile(/*max_payload_bytes=*/1024);
    std::vector<net::WireResponse> sink;
    CHECK_OR_FAIL(!hostile.Feed(std::string(2048, 'x'), &sink),
                  "oversized response header poisons the reader");
  }

  // 10. a legal header announcing a huge payload must not reserve the
  // announced length up front — capacity tracks delivered bytes.
  {
    net::ResponseReader big;
    std::vector<net::WireResponse> sink;
    CHECK_OR_FAIL(big.Feed("OK 536870912\npartial", &sink),
                  "huge announced payload is accepted");
    CHECK_OR_FAIL(big.payload_capacity() < (size_t{1} << 20),
                  "payload reserve stays capped ahead of delivery");
  }

  ::close(fd);
  std::fprintf(stderr, "check ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<LoadGenOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  signal(SIGPIPE, SIG_IGN);
  if (options->check) return RunCheck(*options);
  return RunSweep(*options);
}
