// ssjoin_cli — run a similarity self-join or cross-join over text files
// from the command line. One record per line.
//
//   ssjoin_cli --input=records.txt --predicate=jaccard --threshold=0.8
//   ssjoin_cli --input=a.txt --right=b.txt --predicate=edit-distance
//              --threshold=2 --tokens=3gram
//   ssjoin_cli --input=records.txt --topk=20 --predicate=cosine

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/foreign_join.h"
#include "core/hamming_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/join.h"
#include "core/overlap_coefficient_predicate.h"
#include "core/overlap_predicate.h"
#include "core/topk_join.h"
#include "data/corpus_builder.h"
#include "text/token_dictionary.h"
#include "util/timer.h"

namespace {

using namespace ssjoin;

constexpr const char kUsage[] =
    "usage: ssjoin_cli --input=FILE [flags]\n"
    "  --input=FILE        left (or only) input file, one record per line\n"
    "  --right=FILE        optional right side: cross join instead of self\n"
    "  --predicate=NAME    overlap | jaccard | cosine | dice | hamming |\n"
    "                      overlap-coefficient | edit-distance\n"
    "  --threshold=X       predicate threshold (T, f or k); must be > 0\n"
    "  --tokens=MODE       words (default) | 2gram | 3gram | 4gram\n"
    "  --algorithm=NAME    cluster (default) | optmerge | online | sort |\n"
    "                      probe | stopwords | paircount | wordgroups |\n"
    "                      clustermem | prefix\n"
    "  --threads=N         probe with N worker threads (default 1; output\n"
    "                      is identical to the serial join)\n"
    "  --memory=N          ClusterMem posting budget (implies clustermem)\n"
    "  --topk=K            rank the K most similar pairs instead of\n"
    "                      thresholding (predicate must be overlap,\n"
    "                      jaccard, cosine or dice; self-join only)\n"
    "  --show-text         print record texts instead of line numbers\n"
    "  --stats             print join statistics to stderr\n";

struct CliOptions {
  std::string input;
  std::string right;
  std::string predicate = "jaccard";
  double threshold = 0.8;
  std::string tokens = "words";
  std::string algorithm = "cluster";
  int threads = 1;
  uint64_t memory = 0;
  uint64_t topk = 0;
  bool show_text = false;
  bool show_stats = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// Strict double parse: the whole string must be consumed and the value
/// finite. `atof`-style silent zeros are how "--threshold=O.8" typos turn
/// into empty join results.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool KnownPredicate(const std::string& name) {
  return name == "overlap" || name == "jaccard" || name == "cosine" ||
         name == "dice" || name == "hamming" ||
         name == "overlap-coefficient" || name == "edit-distance";
}

bool KnownTokens(const std::string& mode) {
  return mode == "words" || mode == "2gram" || mode == "3gram" ||
         mode == "4gram";
}

std::optional<JoinAlgorithm> AlgorithmByName(const std::string& name) {
  if (name == "cluster") return JoinAlgorithm::kProbeCluster;
  if (name == "optmerge") return JoinAlgorithm::kProbeOptMerge;
  if (name == "online") return JoinAlgorithm::kProbeOnline;
  if (name == "sort") return JoinAlgorithm::kProbeSort;
  if (name == "probe") return JoinAlgorithm::kProbeCount;
  if (name == "stopwords") return JoinAlgorithm::kProbeStopwords;
  if (name == "paircount") return JoinAlgorithm::kPairCountOptMerge;
  if (name == "wordgroups") return JoinAlgorithm::kWordGroupsOptMerge;
  if (name == "clustermem") return JoinAlgorithm::kClusterMem;
  if (name == "prefix") return JoinAlgorithm::kPrefixFilter;
  return std::nullopt;
}

/// Parses and validates every flag before any file is opened. Returns
/// nullopt after printing a specific error; main adds the usage text.
std::optional<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--input", &value)) {
      options.input = value;
    } else if (ParseFlag(argv[i], "--right", &value)) {
      options.right = value;
    } else if (ParseFlag(argv[i], "--predicate", &value)) {
      options.predicate = value;
    } else if (ParseFlag(argv[i], "--threshold", &value)) {
      if (!ParseDouble(value, &options.threshold) ||
          options.threshold <= 0) {
        std::fprintf(stderr, "invalid --threshold=%s (need a number > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (ParseFlag(argv[i], "--tokens", &value)) {
      options.tokens = value;
    } else if (ParseFlag(argv[i], "--algorithm", &value)) {
      options.algorithm = value;
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      uint64_t threads = 0;
      if (!ParseUint64(value, &threads) || threads == 0 ||
          threads > 1024) {
        std::fprintf(stderr, "invalid --threads=%s (need 1..1024)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.threads = static_cast<int>(threads);
    } else if (ParseFlag(argv[i], "--memory", &value)) {
      if (!ParseUint64(value, &options.memory) || options.memory == 0) {
        std::fprintf(stderr, "invalid --memory=%s (need an integer > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
      options.algorithm = "clustermem";
    } else if (ParseFlag(argv[i], "--topk", &value)) {
      if (!ParseUint64(value, &options.topk) || options.topk == 0) {
        std::fprintf(stderr, "invalid --topk=%s (need an integer > 0)\n",
                     value.c_str());
        return std::nullopt;
      }
    } else if (std::strcmp(argv[i], "--show-text") == 0) {
      options.show_text = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      options.show_stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return std::nullopt;
    }
  }
  if (options.input.empty()) {
    std::fprintf(stderr, "--input=FILE is required\n");
    return std::nullopt;
  }
  if (!KnownPredicate(options.predicate)) {
    std::fprintf(stderr, "unknown predicate: %s\n",
                 options.predicate.c_str());
    return std::nullopt;
  }
  if (!KnownTokens(options.tokens)) {
    std::fprintf(stderr, "unknown tokens mode: %s\n",
                 options.tokens.c_str());
    return std::nullopt;
  }
  if (!AlgorithmByName(options.algorithm).has_value()) {
    std::fprintf(stderr, "unknown algorithm: %s\n",
                 options.algorithm.c_str());
    return std::nullopt;
  }
  return options;
}

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::unique_ptr<Predicate> MakePredicate(const CliOptions& options, int q) {
  const std::string& name = options.predicate;
  double t = options.threshold;
  if (name == "overlap") return std::make_unique<OverlapPredicate>(t);
  if (name == "jaccard") return std::make_unique<JaccardPredicate>(t);
  if (name == "cosine") return std::make_unique<CosinePredicate>(t);
  if (name == "dice") return std::make_unique<DicePredicate>(t);
  if (name == "hamming") return std::make_unique<HammingPredicate>(t);
  if (name == "overlap-coefficient") {
    return std::make_unique<OverlapCoefficientPredicate>(t);
  }
  return std::make_unique<EditDistancePredicate>(static_cast<int>(t), q);
}

RecordSet BuildCorpus(const std::vector<std::string>& lines,
                      const std::string& mode, int* q_out,
                      TokenDictionary* dict) {
  if (mode == "2gram" || mode == "3gram" || mode == "4gram") {
    *q_out = mode[0] - '0';
    return BuildQGramCorpus(lines, *q_out, dict);
  }
  *q_out = 3;  // default q if edit-distance is used with word tokens
  return BuildWordCorpus(lines, dict);
}

void PrintPair(const CliOptions& options, const RecordSet& left,
               const RecordSet& right, RecordId a, RecordId b) {
  if (options.show_text) {
    std::printf("%s\t%s\n", left.text(a).c_str(), right.text(b).c_str());
  } else {
    std::printf("%u\t%u\n", a, b);
  }
}

void PrintStats(const CliOptions& options, const JoinStats& stats,
                double seconds) {
  if (!options.show_stats) return;
  std::fprintf(stderr,
               "pairs=%llu candidates=%llu heap_pops=%llu gallops=%llu "
               "index_postings=%llu time=%.3fs\n",
               static_cast<unsigned long long>(stats.pairs),
               static_cast<unsigned long long>(stats.candidates_verified),
               static_cast<unsigned long long>(stats.merge.heap_pops),
               static_cast<unsigned long long>(stats.merge.gallop_probes),
               static_cast<unsigned long long>(stats.index_postings),
               seconds);
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<CliOptions> options = ParseArgs(argc, argv);
  if (!options.has_value()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::optional<std::vector<std::string>> left_lines =
      ReadLines(options->input);
  if (!left_lines.has_value()) return 1;

  TokenDictionary dict;
  int q = 3;
  RecordSet left = BuildCorpus(*left_lines, options->tokens, &q, &dict);

  if (options->topk > 0) {
    if (!options->right.empty()) {
      std::fprintf(stderr, "--topk supports self-joins only\n");
      return 2;
    }
    TopKMetric metric;
    if (options->predicate == "overlap") {
      metric = TopKMetric::kOverlap;
    } else if (options->predicate == "jaccard") {
      metric = TopKMetric::kJaccard;
    } else if (options->predicate == "cosine") {
      metric = TopKMetric::kCosine;
    } else if (options->predicate == "dice") {
      metric = TopKMetric::kDice;
    } else {
      std::fprintf(stderr, "--topk needs overlap/jaccard/cosine/dice\n");
      return 2;
    }
    JoinStats stats;
    Timer timer;
    Result<std::vector<TopKMatch>> result =
        TopKJoin(&left, metric, options->topk, &stats);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    for (const TopKMatch& match : result.value()) {
      std::printf("%.6f\t", match.score);
      PrintPair(*options, left, left, match.a, match.b);
    }
    PrintStats(*options, stats, seconds);
    return 0;
  }

  std::unique_ptr<Predicate> pred = MakePredicate(*options, q);

  if (!options->right.empty()) {
    std::optional<std::vector<std::string>> right_lines =
        ReadLines(options->right);
    if (!right_lines.has_value()) return 1;
    RecordSet right = BuildCorpus(*right_lines, options->tokens, &q, &dict);
    Timer timer;
    Result<JoinStats> stats = ForeignProbeJoin(
        &left, &right, *pred, {},
        [&](RecordId a, RecordId b) { PrintPair(*options, left, right, a, b); });
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    PrintStats(*options, stats.value(), timer.ElapsedSeconds());
    return 0;
  }

  JoinAlgorithm algorithm = *AlgorithmByName(options->algorithm);
  JoinOptions join_options;
  join_options.num_threads = options->threads;
  join_options.cluster_mem.memory_budget_postings =
      options->memory > 0 ? options->memory : 100000;
  join_options.cluster_mem.temp_dir = "/tmp";

  Timer timer;
  Result<JoinStats> stats = RunJoin(
      &left, *pred, algorithm, join_options,
      [&](RecordId a, RecordId b) { PrintPair(*options, left, left, a, b); });
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  PrintStats(*options, stats.value(), timer.ElapsedSeconds());
  return 0;
}
