// Shared plumbing for the serving-tier drivers (ssjoin_serve and
// ssjoin_server): CLI flag parsing for the common serving flags,
// predicate construction, the corpus/query tokenizer, the durable
// token-dictionary sidecar, fresh-vs-restore service setup, and the
// SIGINT/SIGTERM graceful-shutdown plumbing. Header-only; each driver
// includes it once.
#ifndef SSJOIN_TOOLS_SERVE_COMMON_H_
#define SSJOIN_TOOLS_SERVE_COMMON_H_

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cosine_predicate.h"
#include "core/dice_predicate.h"
#include "core/edit_distance_predicate.h"
#include "core/jaccard_predicate.h"
#include "core/overlap_predicate.h"
#include "data/corpus_builder.h"
#include "serve/checkpoint.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

namespace ssjoin::tools {

/// The serving flags shared by every driver. Network-only flags live in
/// the server's own options struct.
struct ServeCliOptions {
  std::string corpus;
  std::string queries;
  std::string predicate = "jaccard";
  double threshold = 0.8;
  std::string tokens = "words";
  uint64_t topk = 0;
  int threads = 0;
  uint64_t shards = 1;
  uint64_t memtable_limit = 256;
  uint64_t bitmap_bits = kTokenBitmapBits;
  std::string data_dir;
  std::string wal_sync = "always";
  uint64_t resident_budget = 0;
  bool stats_json = false;
};

inline bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

inline bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

inline bool ParseUint64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

/// Outcome of offering one argv entry to the shared serving-flag parser.
enum class FlagOutcome {
  kUnmatched,  // not a shared serving flag; the driver handles it
  kMatched,    // consumed successfully
  kInvalid,    // matched but malformed; an error was printed
};

/// Parses the flags every serving driver shares. Drivers loop over argv,
/// try their own flags on kUnmatched, and fail usage on kInvalid.
inline FlagOutcome ParseServeFlag(const char* arg, ServeCliOptions* options) {
  std::string value;
  if (ParseFlag(arg, "--corpus", &value)) {
    options->corpus = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--queries", &value)) {
    options->queries = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--predicate", &value)) {
    options->predicate = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--threshold", &value)) {
    if (!ParseDouble(value, &options->threshold) ||
        options->threshold <= 0) {
      std::fprintf(stderr, "invalid --threshold=%s (need a number > 0)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--tokens", &value)) {
    options->tokens = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--topk", &value)) {
    if (!ParseUint64(value, &options->topk) || options->topk == 0) {
      std::fprintf(stderr, "invalid --topk=%s (need an integer > 0)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--threads", &value)) {
    uint64_t threads = 0;
    if (!ParseUint64(value, &threads) || threads == 0 || threads > 1024) {
      std::fprintf(stderr, "invalid --threads=%s (need 1..1024)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    options->threads = static_cast<int>(threads);
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--shards", &value)) {
    if (!ParseUint64(value, &options->shards) || options->shards == 0 ||
        options->shards > 1024) {
      std::fprintf(stderr, "invalid --shards=%s (need 1..1024)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--memtable-limit", &value)) {
    if (!ParseUint64(value, &options->memtable_limit)) {
      std::fprintf(stderr,
                   "invalid --memtable-limit=%s (need an integer >= 0)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--bitmap-bits", &value)) {
    if (!ParseUint64(value, &options->bitmap_bits) ||
        (options->bitmap_bits != 0 &&
         options->bitmap_bits != kTokenBitmapBits)) {
      std::fprintf(stderr, "invalid --bitmap-bits=%s (want 0 | %zu)\n",
                   value.c_str(), kTokenBitmapBits);
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--data-dir", &value)) {
    if (value.empty()) {
      std::fprintf(stderr, "--data-dir needs a directory path\n");
      return FlagOutcome::kInvalid;
    }
    options->data_dir = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--wal-sync", &value)) {
    if (value != "always" && value != "never") {
      std::fprintf(stderr, "invalid --wal-sync=%s (want always | never)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    options->wal_sync = value;
    return FlagOutcome::kMatched;
  }
  if (ParseFlag(arg, "--resident-budget", &value)) {
    if (!ParseUint64(value, &options->resident_budget)) {
      std::fprintf(stderr,
                   "invalid --resident-budget=%s (need bytes >= 0; "
                   "0 keeps the base tier fully in memory)\n",
                   value.c_str());
      return FlagOutcome::kInvalid;
    }
    return FlagOutcome::kMatched;
  }
  if (std::strcmp(arg, "--stats-json") == 0) {
    options->stats_json = true;
    return FlagOutcome::kMatched;
  }
  return FlagOutcome::kUnmatched;
}

/// Cross-flag validation shared by the drivers; prints and fails like
/// the per-flag parsers. With a data_dir the corpus may come from a
/// previous incarnation's checkpoint instead of a file; service setup
/// enforces that one of the two sources actually exists.
inline bool ValidateServeOptions(const ServeCliOptions& options) {
  if (options.corpus.empty() && options.data_dir.empty()) {
    std::fprintf(stderr, "--corpus=FILE is required\n");
    return false;
  }
  if (options.predicate != "overlap" && options.predicate != "jaccard" &&
      options.predicate != "cosine" && options.predicate != "dice" &&
      options.predicate != "edit-distance") {
    std::fprintf(stderr, "unknown predicate: %s\n",
                 options.predicate.c_str());
    return false;
  }
  if (options.tokens != "words" && options.tokens != "2gram" &&
      options.tokens != "3gram" && options.tokens != "4gram") {
    std::fprintf(stderr, "unknown tokens mode: %s\n",
                 options.tokens.c_str());
    return false;
  }
  if (options.resident_budget > 0 && options.data_dir.empty()) {
    std::fprintf(stderr,
                 "--resident-budget needs --data-dir (segments are served "
                 "from their on-disk files)\n");
    return false;
  }
  return true;
}

inline std::optional<std::vector<std::string>> ReadLines(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

inline std::unique_ptr<Predicate> MakePredicate(
    const ServeCliOptions& options, int q) {
  const std::string& name = options.predicate;
  double t = options.threshold;
  if (name == "overlap") return std::make_unique<OverlapPredicate>(t);
  if (name == "jaccard") return std::make_unique<JaccardPredicate>(t);
  if (name == "cosine") return std::make_unique<CosinePredicate>(t);
  if (name == "dice") return std::make_unique<DicePredicate>(t);
  return std::make_unique<EditDistancePredicate>(static_cast<int>(t), q);
}

/// Append-only sidecar persisting TokenDictionary growth next to the
/// service's checkpoint/WAL: one token per line, in id order (ids are
/// dense first-seen, so line i IS token id i). The checkpoint stores
/// records as token ids only; without the string->id mapping a restored
/// service could not tokenize new queries consistently. The log is
/// synced BEFORE each insert reaches the service, so every id a
/// WAL-logged record references is covered by a complete line; a torn
/// final line (crash mid-append) can only name an id no durable record
/// uses yet, and reload drops it. Growth from queries rides along in the
/// same id-ordered sweep. Writes reach the page cache (process-crash
/// safe, like --wal-sync=never); sidecar failures warn and never stop
/// serving, matching SimilarityService's durability policy.
class DictLog {
 public:
  /// Fresh durable start: truncate and write every token interned so far.
  bool OpenFresh(const std::string& path, const TokenDictionary& dict) {
    path_ = path;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      Warn();
      return false;
    }
    return Sync(dict);
  }

  /// Restore: intern every complete line in id order, dropping a torn
  /// final line, then rewrite the file (self-healing the tail).
  bool OpenExisting(const std::string& path, TokenDictionary* dict) {
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::string contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
        size_t begin = 0;
        while (true) {
          size_t end = contents.find('\n', begin);
          if (end == std::string::npos) break;
          dict->Intern(std::string_view(contents).substr(begin, end - begin));
          begin = end + 1;
        }
      }
    }
    return OpenFresh(path, *dict);
  }

  /// Appends tokens the dictionary has grown since the last sync. A
  /// no-op for non-durable services (never opened).
  bool Sync(const TokenDictionary& dict) {
    if (!out_.is_open() || failed_) return false;
    for (; written_ < dict.size(); ++written_) {
      out_ << dict.ToString(static_cast<TokenId>(written_)) << '\n';
    }
    out_.flush();
    if (!out_) {
      failed_ = true;
      Warn();
      return false;
    }
    return true;
  }

 private:
  void Warn() {
    std::fprintf(stderr,
                 "warning: cannot write token dictionary %s: %s "
                 "(serving continues; restores may mis-tokenize queries)\n",
                 path_.c_str(), std::strerror(errno));
  }

  std::ofstream out_;
  std::string path_;
  size_t written_ = 0;
  bool failed_ = false;
};

/// Tokenizer shared by the corpus, inserts and queries: every text goes
/// through the same builder with the same (growing) dictionary, so query
/// tokens line up with index tokens.
class LineTokenizer {
 public:
  LineTokenizer(std::string mode, TokenDictionary* dict)
      : mode_(std::move(mode)), dict_(dict) {}

  int q() const { return mode_ == "words" ? 3 : mode_[0] - '0'; }

  RecordSet Build(const std::vector<std::string>& lines) const {
    if (mode_ == "words") return BuildWordCorpus(lines, dict_);
    return BuildQGramCorpus(lines, q(), dict_);
  }

  RecordSet BuildOne(const std::string& line) const {
    return Build(std::vector<std::string>{line});
  }

 private:
  std::string mode_;
  TokenDictionary* dict_;
};

inline void WarnIfDurabilityDegraded(const SimilarityService& service) {
  if (service.durable() && !service.durability_status().ok()) {
    std::fprintf(stderr, "warning: durability degraded: %s\n",
                 service.durability_status().ToString().c_str());
  }
}

/// Builds the service a driver asked for: restore from --data-dir when a
/// checkpoint exists there (the checkpoint + WAL are the source of truth
/// and --corpus is deliberately not re-read — inserting it again would
/// duplicate every record the previous incarnation already made
/// durable), otherwise a fresh start from --corpus. Returns null after
/// printing the failure.
inline std::unique_ptr<SimilarityService> SetUpService(
    const ServeCliOptions& options, const Predicate& pred,
    const LineTokenizer& tokenizer, TokenDictionary* dict,
    DictLog* dict_log) {
  ServiceOptions service_options;
  service_options.memtable_limit =
      static_cast<size_t>(options.memtable_limit);
  service_options.num_threads = options.threads;
  service_options.num_shards = static_cast<size_t>(options.shards);
  service_options.bitmap_bits = static_cast<size_t>(options.bitmap_bits);
  service_options.data_dir = options.data_dir;
  service_options.wal_sync = options.wal_sync == "never"
                                 ? WalSyncPolicy::kNever
                                 : WalSyncPolicy::kAlways;
  service_options.resident_budget_bytes = options.resident_budget;

  std::unique_ptr<SimilarityService> service;
  if (!options.data_dir.empty() && CheckpointExists(options.data_dir)) {
    dict_log->OpenExisting(options.data_dir + "/dict.log", dict);
    Result<std::unique_ptr<SimilarityService>> restored =
        SimilarityService::Open(pred, service_options);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot restore from %s: %s\n",
                   options.data_dir.c_str(),
                   restored.status().ToString().c_str());
      return nullptr;
    }
    service = std::move(restored).value();
    std::fprintf(stderr, "restored %zu records from %s (epoch %llu)\n",
                 service->size(), options.data_dir.c_str(),
                 static_cast<unsigned long long>(service->epoch()));
  } else {
    if (options.corpus.empty()) {
      std::fprintf(stderr,
                   "no checkpoint in %s and no --corpus to start from\n",
                   options.data_dir.c_str());
      return nullptr;
    }
    std::optional<std::vector<std::string>> corpus_lines =
        ReadLines(options.corpus);
    if (!corpus_lines.has_value()) return nullptr;
    RecordSet corpus = tokenizer.Build(*corpus_lines);
    if (!options.data_dir.empty()) {
      // The dictionary must be on disk before the constructor writes the
      // initial checkpoint: a crash between the two must never leave a
      // restorable checkpoint without its token mapping.
      if (Status made = EnsureDataDir(options.data_dir); !made.ok()) {
        std::fprintf(stderr, "warning: %s\n", made.ToString().c_str());
      }
      dict_log->OpenFresh(options.data_dir + "/dict.log", *dict);
    }
    service = std::make_unique<SimilarityService>(std::move(corpus), pred,
                                                  service_options);
  }
  WarnIfDurabilityDegraded(*service);
  return service;
}

// ---------------------------------------------------------------------
// Graceful shutdown signals. The first SIGINT/SIGTERM requests a drain
// (the driver finishes in-flight work, closes listeners, and — when
// durable — logs its final WAL position); a second signal force-exits.
// sigaction installs WITHOUT SA_RESTART so a blocking read (the REPL's
// stdin, the server's signal pipe) returns EINTR instead of resuming.

inline std::atomic<int> g_shutdown_signals{0};
inline int g_shutdown_pipe[2] = {-1, -1};

inline void ShutdownSignalHandler(int) {
  // Async-signal-safe: counter + one pipe write, nothing else.
  int seen = g_shutdown_signals.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen >= 2) _exit(130);
  if (g_shutdown_pipe[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_shutdown_pipe[1], &byte, 1);
  }
}

inline bool ShutdownRequested() {
  return g_shutdown_signals.load(std::memory_order_relaxed) > 0;
}

inline void InstallShutdownSignals() {
  if (pipe2(g_shutdown_pipe, O_CLOEXEC) != 0) {
    g_shutdown_pipe[0] = g_shutdown_pipe[1] = -1;
  }
  struct sigaction action = {};
  action.sa_handler = ShutdownSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // A client hanging up mid-write must be an EPIPE, not a process kill.
  signal(SIGPIPE, SIG_IGN);
}

/// Blocks until the first shutdown signal arrives.
inline void WaitForShutdownSignal() {
  char byte;
  while (!ShutdownRequested()) {
    ssize_t n = read(g_shutdown_pipe[0], &byte, 1);
    if (n < 0 && errno != EINTR) break;
  }
}

/// The shutdown log line: drain done, durable position for operators.
inline void LogCleanShutdown(SimilarityService* service) {
  if (service->durable()) {
    std::fprintf(stderr,
                 "shut down cleanly; final WAL position %llu (epoch %llu)\n",
                 static_cast<unsigned long long>(service->wal_sequence() - 1),
                 static_cast<unsigned long long>(service->epoch()));
  } else {
    std::fprintf(stderr, "shut down cleanly (epoch %llu)\n",
                 static_cast<unsigned long long>(service->epoch()));
  }
}

}  // namespace ssjoin::tools

#endif  // SSJOIN_TOOLS_SERVE_COMMON_H_
