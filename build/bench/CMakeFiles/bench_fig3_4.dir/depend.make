# Empty dependencies file for bench_fig3_4.
# This may be replaced when dependencies are built.
