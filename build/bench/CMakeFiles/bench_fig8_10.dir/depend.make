# Empty dependencies file for bench_fig8_10.
# This may be replaced when dependencies are built.
