# Empty dependencies file for bench_fig7_9.
# This may be replaced when dependencies are built.
