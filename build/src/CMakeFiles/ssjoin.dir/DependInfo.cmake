
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/band_partition.cc" "src/CMakeFiles/ssjoin.dir/core/band_partition.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/band_partition.cc.o.d"
  "/root/repo/src/core/cluster_mem.cc" "src/CMakeFiles/ssjoin.dir/core/cluster_mem.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/cluster_mem.cc.o.d"
  "/root/repo/src/core/cosine_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/cosine_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/cosine_predicate.cc.o.d"
  "/root/repo/src/core/dice_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/dice_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/dice_predicate.cc.o.d"
  "/root/repo/src/core/edit_distance_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/edit_distance_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/edit_distance_predicate.cc.o.d"
  "/root/repo/src/core/foreign_join.cc" "src/CMakeFiles/ssjoin.dir/core/foreign_join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/foreign_join.cc.o.d"
  "/root/repo/src/core/hamming_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/hamming_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/hamming_predicate.cc.o.d"
  "/root/repo/src/core/jaccard_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/jaccard_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/jaccard_predicate.cc.o.d"
  "/root/repo/src/core/join.cc" "src/CMakeFiles/ssjoin.dir/core/join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/join.cc.o.d"
  "/root/repo/src/core/merge_opt.cc" "src/CMakeFiles/ssjoin.dir/core/merge_opt.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/merge_opt.cc.o.d"
  "/root/repo/src/core/overlap_coefficient_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/overlap_coefficient_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/overlap_coefficient_predicate.cc.o.d"
  "/root/repo/src/core/overlap_predicate.cc" "src/CMakeFiles/ssjoin.dir/core/overlap_predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/overlap_predicate.cc.o.d"
  "/root/repo/src/core/pair_count.cc" "src/CMakeFiles/ssjoin.dir/core/pair_count.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/pair_count.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/CMakeFiles/ssjoin.dir/core/predicate.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/predicate.cc.o.d"
  "/root/repo/src/core/prefix_filter_join.cc" "src/CMakeFiles/ssjoin.dir/core/prefix_filter_join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/prefix_filter_join.cc.o.d"
  "/root/repo/src/core/probe_cluster.cc" "src/CMakeFiles/ssjoin.dir/core/probe_cluster.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/probe_cluster.cc.o.d"
  "/root/repo/src/core/probe_join.cc" "src/CMakeFiles/ssjoin.dir/core/probe_join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/probe_join.cc.o.d"
  "/root/repo/src/core/streaming_join.cc" "src/CMakeFiles/ssjoin.dir/core/streaming_join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/streaming_join.cc.o.d"
  "/root/repo/src/core/topk_join.cc" "src/CMakeFiles/ssjoin.dir/core/topk_join.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/topk_join.cc.o.d"
  "/root/repo/src/core/word_groups.cc" "src/CMakeFiles/ssjoin.dir/core/word_groups.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/core/word_groups.cc.o.d"
  "/root/repo/src/data/address_generator.cc" "src/CMakeFiles/ssjoin.dir/data/address_generator.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/address_generator.cc.o.d"
  "/root/repo/src/data/citation_generator.cc" "src/CMakeFiles/ssjoin.dir/data/citation_generator.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/citation_generator.cc.o.d"
  "/root/repo/src/data/corpus_builder.cc" "src/CMakeFiles/ssjoin.dir/data/corpus_builder.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/corpus_builder.cc.o.d"
  "/root/repo/src/data/corpus_stats.cc" "src/CMakeFiles/ssjoin.dir/data/corpus_stats.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/corpus_stats.cc.o.d"
  "/root/repo/src/data/record.cc" "src/CMakeFiles/ssjoin.dir/data/record.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/record.cc.o.d"
  "/root/repo/src/data/record_set.cc" "src/CMakeFiles/ssjoin.dir/data/record_set.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/record_set.cc.o.d"
  "/root/repo/src/data/record_store.cc" "src/CMakeFiles/ssjoin.dir/data/record_store.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/record_store.cc.o.d"
  "/root/repo/src/data/synth_text.cc" "src/CMakeFiles/ssjoin.dir/data/synth_text.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/data/synth_text.cc.o.d"
  "/root/repo/src/index/compressed_postings.cc" "src/CMakeFiles/ssjoin.dir/index/compressed_postings.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/index/compressed_postings.cc.o.d"
  "/root/repo/src/index/index_io.cc" "src/CMakeFiles/ssjoin.dir/index/index_io.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/index/index_io.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/ssjoin.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/index/posting_list.cc" "src/CMakeFiles/ssjoin.dir/index/posting_list.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/index/posting_list.cc.o.d"
  "/root/repo/src/minhash/minhash.cc" "src/CMakeFiles/ssjoin.dir/minhash/minhash.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/minhash/minhash.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/ssjoin.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/dfs_miner.cc" "src/CMakeFiles/ssjoin.dir/mining/dfs_miner.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/mining/dfs_miner.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/ssjoin.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/normalizer.cc" "src/CMakeFiles/ssjoin.dir/text/normalizer.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/text/normalizer.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/ssjoin.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/token_dictionary.cc" "src/CMakeFiles/ssjoin.dir/text/token_dictionary.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/text/token_dictionary.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/ssjoin.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/ssjoin.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/ssjoin.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ssjoin.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/ssjoin.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/varint.cc" "src/CMakeFiles/ssjoin.dir/util/varint.cc.o" "gcc" "src/CMakeFiles/ssjoin.dir/util/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
