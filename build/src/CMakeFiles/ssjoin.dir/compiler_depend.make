# Empty compiler generated dependencies file for ssjoin.
# This may be replaced when dependencies are built.
