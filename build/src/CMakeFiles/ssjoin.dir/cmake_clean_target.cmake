file(REMOVE_RECURSE
  "libssjoin.a"
)
