file(REMOVE_RECURSE
  "CMakeFiles/join_equivalence_test.dir/join_equivalence_test.cc.o"
  "CMakeFiles/join_equivalence_test.dir/join_equivalence_test.cc.o.d"
  "join_equivalence_test"
  "join_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
