# Empty compiler generated dependencies file for join_equivalence_test.
# This may be replaced when dependencies are built.
