file(REMOVE_RECURSE
  "CMakeFiles/pair_count_test.dir/pair_count_test.cc.o"
  "CMakeFiles/pair_count_test.dir/pair_count_test.cc.o.d"
  "pair_count_test"
  "pair_count_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
