# Empty dependencies file for pair_count_test.
# This may be replaced when dependencies are built.
