file(REMOVE_RECURSE
  "CMakeFiles/probe_cluster_test.dir/probe_cluster_test.cc.o"
  "CMakeFiles/probe_cluster_test.dir/probe_cluster_test.cc.o.d"
  "probe_cluster_test"
  "probe_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
