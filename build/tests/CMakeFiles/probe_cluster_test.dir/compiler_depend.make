# Empty compiler generated dependencies file for probe_cluster_test.
# This may be replaced when dependencies are built.
