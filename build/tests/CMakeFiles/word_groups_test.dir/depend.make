# Empty dependencies file for word_groups_test.
# This may be replaced when dependencies are built.
