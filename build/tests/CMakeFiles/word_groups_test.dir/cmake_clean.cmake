file(REMOVE_RECURSE
  "CMakeFiles/word_groups_test.dir/word_groups_test.cc.o"
  "CMakeFiles/word_groups_test.dir/word_groups_test.cc.o.d"
  "word_groups_test"
  "word_groups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
