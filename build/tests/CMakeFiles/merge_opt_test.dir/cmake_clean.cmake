file(REMOVE_RECURSE
  "CMakeFiles/merge_opt_test.dir/merge_opt_test.cc.o"
  "CMakeFiles/merge_opt_test.dir/merge_opt_test.cc.o.d"
  "merge_opt_test"
  "merge_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
