# Empty compiler generated dependencies file for merge_opt_test.
# This may be replaced when dependencies are built.
