# Empty compiler generated dependencies file for foreign_join_test.
# This may be replaced when dependencies are built.
