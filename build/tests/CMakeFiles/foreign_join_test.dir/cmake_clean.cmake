file(REMOVE_RECURSE
  "CMakeFiles/foreign_join_test.dir/foreign_join_test.cc.o"
  "CMakeFiles/foreign_join_test.dir/foreign_join_test.cc.o.d"
  "foreign_join_test"
  "foreign_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foreign_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
