# Empty compiler generated dependencies file for dfs_miner_test.
# This may be replaced when dependencies are built.
