file(REMOVE_RECURSE
  "CMakeFiles/dfs_miner_test.dir/dfs_miner_test.cc.o"
  "CMakeFiles/dfs_miner_test.dir/dfs_miner_test.cc.o.d"
  "dfs_miner_test"
  "dfs_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
