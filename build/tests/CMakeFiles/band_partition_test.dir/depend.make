# Empty dependencies file for band_partition_test.
# This may be replaced when dependencies are built.
