file(REMOVE_RECURSE
  "CMakeFiles/band_partition_test.dir/band_partition_test.cc.o"
  "CMakeFiles/band_partition_test.dir/band_partition_test.cc.o.d"
  "band_partition_test"
  "band_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/band_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
