file(REMOVE_RECURSE
  "CMakeFiles/cluster_mem_test.dir/cluster_mem_test.cc.o"
  "CMakeFiles/cluster_mem_test.dir/cluster_mem_test.cc.o.d"
  "cluster_mem_test"
  "cluster_mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
