# Empty compiler generated dependencies file for topk_join_test.
# This may be replaced when dependencies are built.
