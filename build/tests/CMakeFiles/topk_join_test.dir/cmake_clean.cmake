file(REMOVE_RECURSE
  "CMakeFiles/topk_join_test.dir/topk_join_test.cc.o"
  "CMakeFiles/topk_join_test.dir/topk_join_test.cc.o.d"
  "topk_join_test"
  "topk_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
