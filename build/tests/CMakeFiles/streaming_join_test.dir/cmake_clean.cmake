file(REMOVE_RECURSE
  "CMakeFiles/streaming_join_test.dir/streaming_join_test.cc.o"
  "CMakeFiles/streaming_join_test.dir/streaming_join_test.cc.o.d"
  "streaming_join_test"
  "streaming_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
