# Empty dependencies file for match_quality.
# This may be replaced when dependencies are built.
