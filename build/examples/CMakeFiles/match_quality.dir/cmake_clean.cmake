file(REMOVE_RECURSE
  "CMakeFiles/match_quality.dir/match_quality.cpp.o"
  "CMakeFiles/match_quality.dir/match_quality.cpp.o.d"
  "match_quality"
  "match_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
