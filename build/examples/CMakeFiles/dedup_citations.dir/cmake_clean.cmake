file(REMOVE_RECURSE
  "CMakeFiles/dedup_citations.dir/dedup_citations.cpp.o"
  "CMakeFiles/dedup_citations.dir/dedup_citations.cpp.o.d"
  "dedup_citations"
  "dedup_citations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_citations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
