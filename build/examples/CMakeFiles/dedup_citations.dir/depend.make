# Empty dependencies file for dedup_citations.
# This may be replaced when dependencies are built.
