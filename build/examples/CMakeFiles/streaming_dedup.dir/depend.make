# Empty dependencies file for streaming_dedup.
# This may be replaced when dependencies are built.
