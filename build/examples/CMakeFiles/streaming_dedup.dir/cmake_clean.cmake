file(REMOVE_RECURSE
  "CMakeFiles/streaming_dedup.dir/streaming_dedup.cpp.o"
  "CMakeFiles/streaming_dedup.dir/streaming_dedup.cpp.o.d"
  "streaming_dedup"
  "streaming_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
