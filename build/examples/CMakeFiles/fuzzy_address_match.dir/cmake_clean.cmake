file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_address_match.dir/fuzzy_address_match.cpp.o"
  "CMakeFiles/fuzzy_address_match.dir/fuzzy_address_match.cpp.o.d"
  "fuzzy_address_match"
  "fuzzy_address_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_address_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
