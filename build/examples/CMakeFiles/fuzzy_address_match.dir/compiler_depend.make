# Empty compiler generated dependencies file for fuzzy_address_match.
# This may be replaced when dependencies are built.
