file(REMOVE_RECURSE
  "CMakeFiles/limited_memory_join.dir/limited_memory_join.cpp.o"
  "CMakeFiles/limited_memory_join.dir/limited_memory_join.cpp.o.d"
  "limited_memory_join"
  "limited_memory_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limited_memory_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
