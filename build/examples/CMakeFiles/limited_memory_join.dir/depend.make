# Empty dependencies file for limited_memory_join.
# This may be replaced when dependencies are built.
