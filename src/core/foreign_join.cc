#include "core/foreign_join.h"

#include <numeric>
#include <unordered_set>
#include <vector>

#include "core/merge_opt.h"
#include "index/inverted_index.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

Result<JoinStats> ForeignProbeJoin(RecordSet* left, RecordSet* right,
                                   const Predicate& pred,
                                   const ForeignJoinOptions& options,
                                   const CrossPairSink& sink) {
  pred.PrepareForJoin(left, right);
  JoinStats stats;

  InvertedIndex index;
  index.PlanFromRecords(*right);
  for (RecordId id = 0; id < right->size(); ++id) {
    index.Insert(id, right->record(id));
  }
  stats.index_postings = index.total_postings();

  double short_bound = pred.ShortRecordNormBound();
  std::unordered_set<uint64_t> emitted;  // only used with the fallback

  auto verify_and_emit = [&](RecordId left_id, RecordId right_id) {
    ++stats.candidates_verified;
    if (pred.MatchesCross(*left, left_id, *right, right_id)) {
      ++stats.pairs;
      if (short_bound > 0) {
        emitted.insert((static_cast<uint64_t>(left_id) << 32) | right_id);
      }
      sink(left_id, right_id);
    }
  };

  std::vector<RecordId> order;
  if (options.presort) {
    order = left->IdsByDecreasingNorm();
  } else {
    order.resize(left->size());
    std::iota(order.begin(), order.end(), 0);
  }

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  // Probe-loop scratch, allocated once and reused across probes.
  std::vector<PostingListView> lists;
  std::vector<double> probe_scores;
  ListMerger merger;
  if (index.num_entities() > 0) {
    for (RecordId left_id : order) {
      const RecordView probe = left->record(left_id);
      double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
      auto required_fn = [&](RecordId m) {
        return pred.ThresholdForNorms(probe.norm(),
                                      right->record(m).norm());
      };
      FunctionRef<double(RecordId)> required = required_fn;
      auto filter_fn = [&](RecordId m) {
        return pred.NormFilter(probe.norm(), right->record(m).norm());
      };
      FunctionRef<bool(RecordId)> filter;
      if (options.apply_filter && pred.has_norm_filter()) {
        filter = filter_fn;
      }
      CollectProbeLists(index, probe, &lists, &probe_scores);
      merger.Reset(lists, probe_scores, floor, required, filter,
                   merge_options, &stats.merge);
      MergeCandidate candidate;
      while (merger.Next(&candidate)) {
        verify_and_emit(left_id, candidate.id);
      }
    }
  }

  if (short_bound > 0) {
    // Cross fallback: both-short pairs can match with no shared token.
    std::vector<RecordId> short_left, short_right;
    for (RecordId id = 0; id < left->size(); ++id) {
      if (left->record(id).norm() < short_bound) short_left.push_back(id);
    }
    for (RecordId id = 0; id < right->size(); ++id) {
      if (right->record(id).norm() < short_bound) short_right.push_back(id);
    }
    for (RecordId a : short_left) {
      for (RecordId b : short_right) {
        uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
        if (emitted.count(key) > 0) continue;
        ++stats.candidates_verified;
        if (pred.MatchesCross(*left, a, *right, b)) {
          ++stats.pairs;
          sink(a, b);
        }
      }
    }
  }
  return stats;
}

}  // namespace ssjoin
