#ifndef SSJOIN_CORE_HAMMING_PREDICATE_H_
#define SSJOIN_CORE_HAMMING_PREDICATE_H_

#include <string>

#include "core/predicate.h"

namespace ssjoin {

/// Set-Hamming join: match iff the symmetric difference is small,
///
///   |r Δ s| = |r| + |s| - 2 |r ∩ s| <= k.
///
/// In the Section 5 framework this is the overlap threshold
///
///   |r ∩ s| >= (|r| + |s| - k) / 2 = T(r, s),
///
/// non-decreasing in both set sizes, with the range filter
/// | |r| - |s| | <= k (each differing element contributes at least one to
/// the symmetric difference).
class HammingPredicate : public Predicate {
 public:
  /// Requires k >= 0.
  explicit HammingPredicate(double k);

  std::string name() const override { return "hamming"; }
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  bool NormFilter(double norm_r, double norm_s) const override;
  bool has_norm_filter() const override { return true; }

  /// Two sets with |r| + |s| <= k match while sharing nothing, invisible
  /// to any inverted-index algorithm; the join driver brute-forces records
  /// below this bound (both endpoints of such a pair are below k + 1).
  double ShortRecordNormBound() const override { return k_ + 1.0; }
  /// A partner has norm >= norm_r - k, so the threshold is at least
  /// (norm_r + norm_r - k - k) / 2 = norm_r - k.
  double MinMatchOverlap(double norm_r) const override {
    return norm_r - k_;
  }

  double k() const { return k_; }

 private:
  double k_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_HAMMING_PREDICATE_H_
