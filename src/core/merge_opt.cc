#include "core/merge_opt.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ssjoin {

MergeStats& MergeStats::operator+=(const MergeStats& other) {
  merges += other.merges;
  heap_pops += other.heap_pops;
  gallop_probes += other.gallop_probes;
  candidates += other.candidates;
  lists_direct += other.lists_direct;
  lists_merged += other.lists_merged;
  return *this;
}

double PruneBound(double bound) {
  return bound - 1e-7 * std::max(1.0, std::fabs(bound));
}

void ListMerger::Reset(const std::vector<PostingListView>& lists,
                       const std::vector<double>& probe_scores,
                       const std::vector<RecordId>* id_offsets, double floor,
                       FunctionRef<double(RecordId)> required,
                       FunctionRef<bool(RecordId)> filter,
                       MergeOptions options, MergeStats* stats) {
  SSJOIN_CHECK(lists.size() == probe_scores.size());
  SSJOIN_CHECK(id_offsets == nullptr || id_offsets->size() == lists.size());
  floor_ = floor;
  required_ = required;
  filter_ = filter;
  options_ = options;
  stats_ = stats;
  split_k_ = 0;
  heap_.clear();
  if (stats_ != nullptr) ++stats_->merges;

  // Order lists by decreasing length (step 1 of Algorithm 1), ties broken
  // by input position: deterministic without stable_sort's buffer
  // allocation (this runs once per probe).
  order_.resize(lists.size());
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&lists](uint32_t a, uint32_t b) {
    if (lists[a].size() != lists[b].size()) {
      return lists[a].size() > lists[b].size();
    }
    return a < b;
  });
  lists_.resize(lists.size());
  probe_scores_.resize(lists.size());
  offsets_.resize(lists.size());
  for (uint32_t i = 0; i < order_.size(); ++i) {
    lists_[i] = lists[order_[i]];
    probe_scores_[i] = probe_scores[order_[i]];
    offsets_[i] = id_offsets != nullptr ? (*id_offsets)[order_[i]] : 0;
  }

  // cumulativeWt(l_i) = sum_{j<=i} score(w_j, r) * score(w_j, I): the
  // maximum overlap obtainable from lists l_1..l_i (step 2).
  cumulative_weight_.resize(lists_.size());
  double running = 0;
  for (size_t i = 0; i < lists_.size(); ++i) {
    running += probe_scores_[i] * lists_[i].max_score();
    cumulative_weight_[i] = running;
  }

  frontier_.assign(lists_.size(), 0);
  search_pos_.assign(lists_.size(), 0);
  direct_.assign(lists_.size(), false);
  RecomputeSplit();
  for (uint32_t i = 0; i < lists_.size(); ++i) {
    if (!direct_[i]) {
      if (stats_ != nullptr) ++stats_->lists_merged;
      PushFrontier(i);
    }
  }
}

void ListMerger::RecomputeSplit() {
  if (!options_.split_lists) {
    split_k_ = 0;
    return;
  }
  // L = l_1..l_k with the largest k whose cumulative potential stays below
  // the floor (step 3). Monotone in the floor, so raising the floor only
  // grows k.
  size_t k = split_k_;
  while (k < lists_.size() && cumulative_weight_[k] < PruneBound(floor_)) {
    direct_[k] = true;
    // A list moving out of the heap mid-merge keeps its frontier as the
    // direct-search start: everything before it was already consumed
    // through the heap.
    search_pos_[k] = frontier_[k];
    if (stats_ != nullptr) ++stats_->lists_direct;
    ++k;
  }
  split_k_ = k;
}

void ListMerger::RaiseFloor(double floor) {
  if (floor <= floor_) return;
  floor_ = floor;
  RecomputeSplit();
}

void ListMerger::PushFrontier(uint32_t i) {
  const PostingListView& list = lists_[i];
  size_t& pos = frontier_[i];
  bool filtering = options_.apply_filter && filter_ != nullptr;
  while (pos < list.size()) {
    const Posting& p = list[pos];
    RecordId id = p.id + offsets_[i];  // chain-wide id (offset 0 otherwise)
    if (filtering && !filter_(id)) {
      ++pos;  // step 7: apply filter(r, n) before pushing
      continue;
    }
    heap_.push_back({id, i});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    return;
  }
}

bool ListMerger::Next(MergeCandidate* out) {
  while (!heap_.empty()) {
    // Pop every entry for the minimum id, accumulating the S-side overlap
    // (step 6). Entries of lists that migrated to L are skipped without
    // advancing their frontier: the direct search covers them.
    RecordId id = heap_.front().id;
    double overlap = 0;
    bool any_live = false;
    while (!heap_.empty() && heap_.front().id == id) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      uint32_t i = heap_.back().list;
      heap_.pop_back();
      if (direct_[i]) continue;  // migrated by RaiseFloor; frontier kept
      const Posting& p = lists_[i][frontier_[i]];
      SSJOIN_DCHECK(p.id + offsets_[i] == id);
      overlap += probe_scores_[i] * p.score;
      ++frontier_[i];
      if (stats_ != nullptr) ++stats_->heap_pops;
      PushFrontier(i);
      any_live = true;
    }
    if (!any_live) continue;

    double bound = floor_;
    if (required_ != nullptr) bound = std::max(bound, required_(id));

    // Steps 8-11: direct search of the L lists from the smallest
    // cumulative potential upwards, abandoning the candidate as soon as
    // even full membership in the remaining lists cannot reach the bound.
    bool viable = true;
    for (size_t i = split_k_; i-- > 0;) {
      if (overlap + cumulative_weight_[i] < PruneBound(bound)) {
        viable = false;
        break;
      }
      if (id < offsets_[i]) continue;  // below this list's id range
      RecordId target = id - offsets_[i];
      uint64_t* cost = stats_ != nullptr ? &stats_->gallop_probes : nullptr;
      size_t pos = lists_[i].GallopLowerBound(target, search_pos_[i], cost);
      search_pos_[i] = pos;  // candidates arrive in increasing id order
      if (pos < lists_[i].size() && lists_[i][pos].id == target) {
        overlap += probe_scores_[i] * lists_[i][pos].score;
      }
    }
    if (!viable) continue;
    if (overlap < PruneBound(bound)) continue;

    if (stats_ != nullptr) ++stats_->candidates;
    out->id = id;
    out->overlap = overlap;
    return true;
  }
  return false;
}

void CollectProbeLists(const InvertedIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores) {
  lists->clear();
  probe_scores->clear();
  for (size_t i = 0; i < probe.size(); ++i) {
    PostingListView list = index.list(probe.token(i));
    if (list.empty()) continue;
    lists->push_back(list);
    probe_scores->push_back(probe.score(i));
  }
}

void CollectProbeLists(const DynamicIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores) {
  lists->clear();
  probe_scores->clear();
  for (size_t i = 0; i < probe.size(); ++i) {
    const PostingList* list = index.list(probe.token(i));
    if (list == nullptr || list->empty()) continue;
    lists->push_back(list->view());
    probe_scores->push_back(probe.score(i));
  }
}

}  // namespace ssjoin
