#include "core/merge_opt.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "util/logging.h"

namespace ssjoin {

MergeStats& MergeStats::operator+=(const MergeStats& other) {
  merges += other.merges;
  heap_pops += other.heap_pops;
  gallop_probes += other.gallop_probes;
  candidates += other.candidates;
  bitmap_checked += other.bitmap_checked;
  bitmap_pruned += other.bitmap_pruned;
  lists_direct += other.lists_direct;
  lists_merged += other.lists_merged;
  return *this;
}

double PruneBound(double bound) {
  return bound - 1e-7 * std::max(1.0, std::fabs(bound));
}

namespace {
/// The bitmap gate consults only candidates guaranteed at least this many
/// direct searches (see Next): one consult costs roughly one cold cache
/// line, a direct search from its rolling hint often costs less, so
/// shallow candidates are cheaper to search than to gate. Purely a
/// cost knob — any value yields identical candidate streams.
constexpr size_t kBitmapGateMinDepth = 4;
}  // namespace

void ListMerger::Reset(const std::vector<PostingListView>& lists,
                       const std::vector<double>& probe_scores,
                       const std::vector<RecordId>* id_offsets, double floor,
                       FunctionRef<double(RecordId)> required,
                       FunctionRef<bool(RecordId)> filter,
                       MergeOptions options, MergeStats* stats,
                       const BitmapGate* gate) {
  SSJOIN_CHECK(lists.size() == probe_scores.size());
  SSJOIN_CHECK(id_offsets == nullptr || id_offsets->size() == lists.size());
  floor_ = floor;
  required_ = required;
  filter_ = filter;
  options_ = options;
  stats_ = stats;
  gate_ = gate;
  split_k_ = 0;
  max_l_pair_weight_ = 0;
  heap_.clear();
  if (stats_ != nullptr) ++stats_->merges;

  // Order lists by decreasing length (step 1 of Algorithm 1), ties broken
  // by input position: deterministic without stable_sort's buffer
  // allocation (this runs once per probe).
  order_.resize(lists.size());
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(), [&lists](uint32_t a, uint32_t b) {
    if (lists[a].size() != lists[b].size()) {
      return lists[a].size() > lists[b].size();
    }
    return a < b;
  });
  lists_.resize(lists.size());
  probe_scores_.resize(lists.size());
  offsets_.resize(lists.size());
  for (uint32_t i = 0; i < order_.size(); ++i) {
    lists_[i] = lists[order_[i]];
    probe_scores_[i] = probe_scores[order_[i]];
    offsets_[i] = id_offsets != nullptr ? (*id_offsets)[order_[i]] : 0;
  }

  // cumulativeWt(l_i) = sum_{j<=i} score(w_j, r) * score(w_j, I): the
  // maximum overlap obtainable from lists l_1..l_i (step 2).
  cumulative_weight_.resize(lists_.size());
  double running = 0;
  for (size_t i = 0; i < lists_.size(); ++i) {
    running += probe_scores_[i] * lists_[i].max_score();
    cumulative_weight_[i] = running;
  }

  frontier_.assign(lists_.size(), 0);
  search_pos_.assign(lists_.size(), 0);
  direct_.assign(lists_.size(), false);
  RecomputeSplit();
  for (uint32_t i = 0; i < lists_.size(); ++i) {
    if (!direct_[i]) {
      if (stats_ != nullptr) ++stats_->lists_merged;
      PushFrontier(i);
    }
  }
}

void ListMerger::RecomputeSplit() {
  if (!options_.split_lists) {
    split_k_ = 0;
    return;
  }
  // L = l_1..l_k with the largest k whose cumulative potential stays below
  // the floor (step 3). Monotone in the floor, so raising the floor only
  // grows k.
  size_t k = split_k_;
  while (k < lists_.size() && cumulative_weight_[k] < PruneBound(floor_)) {
    direct_[k] = true;
    // A list moving out of the heap mid-merge keeps its frontier as the
    // direct-search start: everything before it was already consumed
    // through the heap.
    search_pos_[k] = frontier_[k];
    // The bitmap gate bounds each still-unseen common token's overlap
    // contribution by the largest probe-weight * list-max-score over L.
    max_l_pair_weight_ = std::max(max_l_pair_weight_,
                                  probe_scores_[k] * lists_[k].max_score());
    if (stats_ != nullptr) ++stats_->lists_direct;
    ++k;
  }
  split_k_ = k;
}

void ListMerger::RaiseFloor(double floor) {
  if (floor <= floor_) return;
  floor_ = floor;
  RecomputeSplit();
}

void ListMerger::PushFrontier(uint32_t i) {
  const PostingListView& list = lists_[i];
  size_t& pos = frontier_[i];
  bool filtering = options_.apply_filter && filter_ != nullptr;
  while (pos < list.size()) {
    const Posting& p = list[pos];
    RecordId id = p.id + offsets_[i];  // chain-wide id (offset 0 otherwise)
    if (filtering && !filter_(id)) {
      ++pos;  // step 7: apply filter(r, n) before pushing
      continue;
    }
    heap_.push_back({id, i});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    return;
  }
}

bool ListMerger::Next(MergeCandidate* out) {
  while (!heap_.empty()) {
    // Pop every entry for the minimum id, accumulating the S-side overlap
    // (step 6). Entries of lists that migrated to L are skipped without
    // advancing their frontier: the direct search covers them.
    RecordId id = heap_.front().id;
    double overlap = 0;
    uint32_t s_matched = 0;  // distinct probe tokens matched via the heap
    while (!heap_.empty() && heap_.front().id == id) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      uint32_t i = heap_.back().list;
      heap_.pop_back();
      if (direct_[i]) continue;  // migrated by RaiseFloor; frontier kept
      const Posting& p = lists_[i][frontier_[i]];
      SSJOIN_DCHECK(p.id + offsets_[i] == id);
      overlap += probe_scores_[i] * p.score;
      ++frontier_[i];
      if (stats_ != nullptr) ++stats_->heap_pops;
      PushFrontier(i);
      // Each live pop is one distinct common token: probe tokens are
      // strictly increasing, and in chain mode a token's per-segment
      // lists cover disjoint id ranges, so at most one holds `id`.
      ++s_matched;
    }
    if (s_matched == 0) continue;

    // Floor-based viability, BEFORE the per-candidate required_() call:
    // the emit bound is at least the floor, so a candidate that cannot
    // reach the floor even with full membership in every L list is
    // discarded without paying required_'s indirect call and norm
    // lookup. (The descent's own first check repeats this against the
    // tighter bound.)
    const double l_potential =
        split_k_ > 0 ? cumulative_weight_[split_k_ - 1] : 0.0;
    if (overlap + l_potential < PruneBound(floor_)) continue;

    // Bitmap prefilter, stage 1: the XOR-popcount bound caps this
    // candidate's distinct common tokens; beyond the s_matched already
    // accumulated, each remaining one lives in some L list and
    // contributes at most max_l_pair_weight_. If even that ceiling
    // cannot reach the floor, the final `overlap < PruneBound(bound)`
    // check below (bound >= floor) would discard the candidate anyway —
    // pruning here changes no output, it only skips the required_()
    // lookup and the direct searches. With an empty L the overlap is
    // already exact, so there is nothing left to save.
    //
    // The consult itself costs a cache line (the candidate's bitmap
    // arena entry), so it runs only when the descent has real work at
    // stake: the all-miss descent depth is the number of L levels whose
    // viability check passes, and requiring viability at level
    // split_k_ - kBitmapGateMinDepth guarantees at least that many
    // direct searches would run. Shallower candidates are cheaper to
    // just search than to look up.
    double bitmap_cap = -1;  // < 0: gate not consulted for this candidate
    if (gate_ != nullptr && split_k_ >= kBitmapGateMinDepth &&
        overlap + cumulative_weight_[split_k_ - kBitmapGateMinDepth] >=
            PruneBound(floor_)) {
      const BitmapCandidate cand = gate_->lookup(id);
      if (stats_ != nullptr) ++stats_->bitmap_checked;
      const uint32_t ub =
          TokenBitmapOverlapBound(gate_->probe_bits, gate_->probe_tokens,
                                  cand.bits, cand.tokens, gate_->words);
      const double remaining =
          ub > s_matched ? static_cast<double>(ub - s_matched) : 0.0;
      bitmap_cap = remaining * max_l_pair_weight_;
      if (overlap + bitmap_cap < PruneBound(floor_)) {
        if (stats_ != nullptr) ++stats_->bitmap_pruned;
        continue;
      }
    }

    double bound = floor_;
    if (required_ != nullptr) bound = std::max(bound, required_(id));

    // Bitmap prefilter, stage 2: the same cached cap re-checked against
    // the per-candidate bound — catches candidates whose required(id)
    // exceeds the floor, at the cost of one comparison (no new loads).
    if (bitmap_cap >= 0 && overlap + bitmap_cap < PruneBound(bound)) {
      if (stats_ != nullptr) ++stats_->bitmap_pruned;
      continue;
    }

    // Steps 8-11: direct search of the L lists from the smallest
    // cumulative potential upwards, abandoning the candidate as soon as
    // even full membership in the remaining lists cannot reach the bound.
    bool viable = true;
    for (size_t i = split_k_; i-- > 0;) {
      if (overlap + cumulative_weight_[i] < PruneBound(bound)) {
        viable = false;
        break;
      }
      if (id < offsets_[i]) continue;  // below this list's id range
      RecordId target = id - offsets_[i];
      uint64_t* cost = stats_ != nullptr ? &stats_->gallop_probes : nullptr;
      size_t pos = MergeLowerBound(lists_[i], target, search_pos_[i], cost);
      search_pos_[i] = pos;  // candidates arrive in increasing id order
      if (pos < lists_[i].size() && lists_[i][pos].id == target) {
        overlap += probe_scores_[i] * lists_[i][pos].score;
      }
    }
    if (!viable) continue;
    if (overlap < PruneBound(bound)) continue;

    if (stats_ != nullptr) ++stats_->candidates;
    out->id = id;
    out->overlap = overlap;
    return true;
  }
  return false;
}

namespace {

size_t ScalarLowerBound(const PostingListView& list, RecordId id, size_t start,
                        uint64_t* probe_cost) {
  return list.GallopLowerBound(id, start, probe_cost);
}

#if defined(__x86_64__)

// Same contract as GallopLowerBound, compiled for AVX2 without requiring a
// global -mavx2: gallop exactly like the scalar primitive, binary-search
// the window down to a few vector strides, then compare 8 gathered ids per
// step. The returned position is the unique lower bound, so it is
// identical to the scalar path by construction; only the probe_cost
// comparison accounting differs (one increment per 8-lane compare).
__attribute__((target("avx2"))) size_t Avx2LowerBound(
    const PostingListView& list, RecordId id, size_t start,
    uint64_t* probe_cost) {
  const size_t n = list.size();
  if (start >= n) return n;
  const Posting* data = &list[0];
  size_t lo = start;
  size_t step = 1;
  size_t hi = start;
  while (hi < n && data[hi].id < id) {
    if (probe_cost != nullptr) ++*probe_cost;
    lo = hi + 1;
    hi = start + step;
    step *= 2;
  }
  hi = std::min(hi, n);
  while (hi - lo > 32) {
    size_t mid = lo + (hi - lo) / 2;
    if (probe_cost != nullptr) ++*probe_cost;
    if (data[mid].id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Posting is 16 bytes with the id at offset 0 (checked at dispatch), so
  // ids sit at every 4th int32; unsigned compares via the INT32_MIN bias.
  const __m256i offsets = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  const __m256i target =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int32_t>(id)), bias);
  while (lo + 8 <= hi) {
    const int* base = reinterpret_cast<const int*>(data + lo);
    __m256i ids = _mm256_i32gather_epi32(base, offsets, 4);
    ids = _mm256_xor_si256(ids, bias);
    // Lane k set when data[lo + k].id < id.
    const __m256i lt = _mm256_cmpgt_epi32(target, ids);
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(lt));
    if (probe_cost != nullptr) ++*probe_cost;
    if (mask != 0xFF) {
      return lo + static_cast<size_t>(__builtin_ctz(~mask & 0xFF));
    }
    lo += 8;
  }
  while (lo < hi) {
    if (probe_cost != nullptr) ++*probe_cost;
    if (data[lo].id >= id) break;
    ++lo;
  }
  return lo;
}

#endif  // defined(__x86_64__)

using LowerBoundFn = size_t (*)(const PostingListView&, RecordId, size_t,
                                uint64_t*);

bool ForceScalarEnv() {
  const char* v = std::getenv("SSJOIN_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

LowerBoundFn ResolveLowerBound() {
#if defined(__x86_64__)
  if (!ForceScalarEnv() && __builtin_cpu_supports("avx2") &&
      sizeof(Posting) == 16 && offsetof(Posting, id) == 0) {
    return &Avx2LowerBound;
  }
#endif
  return &ScalarLowerBound;
}

LowerBoundFn ActiveLowerBound() {
  // Resolved once per process: env + CPUID are stable for its lifetime.
  static const LowerBoundFn fn = ResolveLowerBound();
  return fn;
}

}  // namespace

const char* ActiveMergeBackend() {
#if defined(__x86_64__)
  if (ActiveLowerBound() == &Avx2LowerBound) return "avx2";
#endif
  return "scalar";
}

size_t MergeLowerBound(const PostingListView& list, RecordId id, size_t start,
                       uint64_t* probe_cost) {
  return ActiveLowerBound()(list, id, start, probe_cost);
}

void CollectProbeLists(const InvertedIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores) {
  lists->clear();
  probe_scores->clear();
  for (size_t i = 0; i < probe.size(); ++i) {
    PostingListView list = index.list(probe.token(i));
    if (list.empty()) continue;
    lists->push_back(list);
    probe_scores->push_back(probe.score(i));
  }
}

void CollectProbeLists(const DynamicIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores) {
  lists->clear();
  probe_scores->clear();
  for (size_t i = 0; i < probe.size(); ++i) {
    const PostingList* list = index.list(probe.token(i));
    if (list == nullptr || list->empty()) continue;
    lists->push_back(list->view());
    probe_scores->push_back(probe.score(i));
  }
}

}  // namespace ssjoin
