#ifndef SSJOIN_CORE_MERGE_OPT_H_
#define SSJOIN_CORE_MERGE_OPT_H_

#include <cstdint>
#include <vector>

#include "data/record_view.h"
#include "data/token_bitmap.h"
#include "index/dynamic_index.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"
#include "util/function_ref.h"

namespace ssjoin {

/// Instrumentation counters for one or many merges.
struct MergeStats {
  uint64_t merges = 0;          // probe-merge invocations
  uint64_t heap_pops = 0;       // postings consumed through the heap
  uint64_t gallop_probes = 0;   // comparisons in direct (L) searches
  uint64_t candidates = 0;      // candidates emitted
  uint64_t bitmap_checked = 0;  // candidates the bitmap bound was read for
  uint64_t bitmap_pruned = 0;   // candidates rejected by the bitmap bound
  uint64_t lists_direct = 0;    // lists placed in L across merges
  uint64_t lists_merged = 0;    // lists placed in S across merges

  MergeStats& operator+=(const MergeStats& other);
};

/// A candidate produced by a merge: an indexed entity id and its exact
/// total overlap with the probe record (S-side accumulation plus all
/// direct-search contributions).
struct MergeCandidate {
  RecordId id;
  double overlap;
};

struct MergeOptions {
  /// Enables the threshold-sensitive L/S split of Section 3.1 (MergeOpt).
  /// False gives the plain heap merge over all lists (Probe-Count).
  bool split_lists = true;
  /// Applies the pair filter when postings enter the heap (Section 5's
  /// simplest filter placement). Ignored when no filter is supplied.
  bool apply_filter = true;
};

/// Relative slack used whenever a float comparison prunes work: borderline
/// candidates survive to exact verification instead of being lost to
/// accumulation-order rounding.
double PruneBound(double bound);

/// A candidate's side of the bitmap filter: its token parity bitmap (at
/// least the gate's `words` words) and its distinct-token count. Lookups
/// normally read both from one RecordSet::token_bitmap_entry — a single
/// cache-line load per consult.
struct BitmapCandidate {
  const uint64_t* bits;
  uint32_t tokens;
};

/// Per-probe bitmap prefilter (data/token_bitmap.h). When a gate rides a
/// merge, every candidate popped off the heap is bounded BEFORE the
/// direct (L) searches run: the XOR-popcount overlap bound caps how many
/// distinct common tokens the L lists can still contribute, and a
/// candidate whose accumulated overlap plus that cap cannot reach its
/// emit bound is dropped without a single gallop. The gate only ever
/// discards candidates the merge's own final bound check would discard,
/// so candidate streams are bit-identical with and without it.
///
/// `lookup` resolves a (chain-wide) candidate id to its bitmap and token
/// count; like `required`/`filter` it is non-owning and must outlive the
/// merge. `words` <= kTokenBitmapWords selects the bitmap prefix consulted
/// (fewer words: less memory traffic, weaker bound — any prefix is sound).
struct BitmapGate {
  const uint64_t* probe_bits = nullptr;
  uint32_t probe_tokens = 0;
  size_t words = kTokenBitmapWords;
  FunctionRef<BitmapCandidate(RecordId)> lookup;
};

/// The lower-bound search backend the direct (L) searches use:
/// "avx2" when the CPU supports it and SSJOIN_FORCE_SCALAR is unset (or
/// "0"), "scalar" otherwise. Resolved once per process; both backends
/// return identical positions for identical inputs (only the
/// `gallop_probes` comparison accounting differs), which the differential
/// suite enforces.
const char* ActiveMergeBackend();

/// Dispatched first-position-with-id->=target search over a posting run,
/// starting at `start`: the scalar path is PostingListView::
/// GallopLowerBound; the AVX2 path gallops, narrows by binary search and
/// finishes with 8-lane gathered id compares. Exposed for the
/// differential tests.
size_t MergeLowerBound(const PostingListView& list, RecordId id, size_t start,
                       uint64_t* probe_cost);

/// Threshold-sensitive multi-way posting-list merge: Algorithm 1
/// (MergeOpt) and its generalized form Algorithm 3 (MergeOptGen), plus the
/// dynamic floor raises of Section 4.1.1.
///
/// Given the posting lists of a probe record's tokens, emits every indexed
/// id whose total overlap with the probe reaches the per-candidate bound
/// max(floor, required(id)). Lists are split into L (largest lists whose
/// cumulative potential stays below the floor, consulted only by doubling
/// binary search) and S (heap-merged). Candidates stream out of Next() in
/// increasing id order.
///
/// The merger is reusable: default-construct it once outside the probe
/// loop and Reset() it per probe — internal buffers keep their capacity,
/// so steady-state probes perform no heap allocations.
///
/// Contracts:
///   * `required` may be null; candidates are then held only to the floor.
///     When supplied it must satisfy required(id) >= any floor ever set
///     (join mode: required = T(r, m) and floor = T(r, I) <= T(r, m)).
///   * `required` and `filter` are non-owning references; the underlying
///     callables must outlive every Next() call of the current merge.
///   * RaiseFloor only increases the floor, and the caller must keep it
///     <= min over ids of the emit bound it still cares about (cluster
///     mode caps raises at T(r, I)).
class ListMerger {
 public:
  ListMerger() = default;

  /// Convenience for one-shot merges (tests, benches).
  ListMerger(const std::vector<PostingListView>& lists,
             const std::vector<double>& probe_scores, double floor,
             FunctionRef<double(RecordId)> required,
             FunctionRef<bool(RecordId)> filter, MergeOptions options,
             MergeStats* stats) {
    Reset(lists, probe_scores, floor, required, filter, options, stats);
  }

  ListMerger(const ListMerger&) = delete;
  ListMerger& operator=(const ListMerger&) = delete;

  /// Re-arms the merger for a new probe, reusing internal buffer capacity.
  /// `gate` (optional, non-owning, must outlive the merge) arms the
  /// bitmap prefilter for this probe.
  void Reset(const std::vector<PostingListView>& lists,
             const std::vector<double>& probe_scores, double floor,
             FunctionRef<double(RecordId)> required,
             FunctionRef<bool(RecordId)> filter, MergeOptions options,
             MergeStats* stats, const BitmapGate* gate = nullptr) {
    Reset(lists, probe_scores, nullptr, floor, required, filter, options,
          stats, gate);
  }

  /// Chained-index form: `id_offsets` (parallel to `lists`, may be null
  /// for all-zero) is added to every id a list emits, so several indexes
  /// over disjoint id ranges — the segment chain of the serving tier —
  /// merge as one id space. A token may then contribute SEVERAL lists
  /// (one per segment); a candidate still accumulates exactly the terms
  /// of its own segment because segment id ranges are disjoint.
  /// `required` and `filter` see adjusted (chain-wide) ids.
  void Reset(const std::vector<PostingListView>& lists,
             const std::vector<double>& probe_scores,
             const std::vector<RecordId>* id_offsets, double floor,
             FunctionRef<double(RecordId)> required,
             FunctionRef<bool(RecordId)> filter, MergeOptions options,
             MergeStats* stats, const BitmapGate* gate = nullptr);

  /// Produces the next candidate; returns false when the merge is done.
  bool Next(MergeCandidate* out);

  /// Raises the emit floor, migrating newly prunable lists from the heap
  /// to the direct-search set (Section 4.1.1).
  void RaiseFloor(double floor);

  double floor() const { return floor_; }

 private:
  struct HeapEntry {
    RecordId id;
    uint32_t list;
    bool operator>(const HeapEntry& other) const { return id > other.id; }
  };

  /// Pushes list `i`'s frontier posting (after filtering) into the heap.
  void PushFrontier(uint32_t i);
  void RecomputeSplit();

  std::vector<PostingListView> lists_;      // decreasing length order
  std::vector<double> probe_scores_;        // parallel to lists_
  std::vector<RecordId> offsets_;           // parallel to lists_
  std::vector<uint32_t> order_;             // sort scratch (reused)
  std::vector<double> cumulative_weight_;   // prefix sums of potential
  std::vector<size_t> frontier_;            // next unconsumed posting (S)
  std::vector<size_t> search_pos_;          // rolling gallop hint (L)
  std::vector<bool> direct_;                // list is in L
  size_t split_k_ = 0;                      // |L| under the current floor
  double max_l_pair_weight_ = 0;            // max probe*list weight over L
  double floor_ = 0;
  FunctionRef<double(RecordId)> required_;
  FunctionRef<bool(RecordId)> filter_;
  MergeOptions options_;
  MergeStats* stats_ = nullptr;
  const BitmapGate* gate_ = nullptr;
  std::vector<HeapEntry> heap_;  // min-heap on id via std::*_heap
};

/// Gathers the posting lists for `probe`'s tokens from `index`, paired
/// with the probe-side scores, in probe token order (ListMerger re-sorts
/// by decreasing list length as MergeOpt requires). Tokens with empty or
/// absent lists are skipped. Overloads cover the flat batch index and the
/// dynamic (cluster/streaming) index so both share one probe path.
void CollectProbeLists(const InvertedIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores);
void CollectProbeLists(const DynamicIndex& index, RecordView probe,
                       std::vector<PostingListView>* lists,
                       std::vector<double>* probe_scores);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_MERGE_OPT_H_
