#ifndef SSJOIN_CORE_MERGE_OPT_H_
#define SSJOIN_CORE_MERGE_OPT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/record.h"
#include "index/inverted_index.h"
#include "index/posting_list.h"

namespace ssjoin {

/// Instrumentation counters for one or many merges.
struct MergeStats {
  uint64_t merges = 0;          // probe-merge invocations
  uint64_t heap_pops = 0;       // postings consumed through the heap
  uint64_t gallop_probes = 0;   // comparisons in direct (L) searches
  uint64_t candidates = 0;      // candidates emitted
  uint64_t lists_direct = 0;    // lists placed in L across merges
  uint64_t lists_merged = 0;    // lists placed in S across merges

  MergeStats& operator+=(const MergeStats& other);
};

/// A candidate produced by a merge: an indexed entity id and its exact
/// total overlap with the probe record (S-side accumulation plus all
/// direct-search contributions).
struct MergeCandidate {
  RecordId id;
  double overlap;
};

struct MergeOptions {
  /// Enables the threshold-sensitive L/S split of Section 3.1 (MergeOpt).
  /// False gives the plain heap merge over all lists (Probe-Count).
  bool split_lists = true;
  /// Applies the pair filter when postings enter the heap (Section 5's
  /// simplest filter placement). Ignored when no filter is supplied.
  bool apply_filter = true;
};

/// Relative slack used whenever a float comparison prunes work: borderline
/// candidates survive to exact verification instead of being lost to
/// accumulation-order rounding.
double PruneBound(double bound);

/// Threshold-sensitive multi-way posting-list merge: Algorithm 1
/// (MergeOpt) and its generalized form Algorithm 3 (MergeOptGen), plus the
/// dynamic floor raises of Section 4.1.1.
///
/// Given the posting lists of a probe record's tokens, emits every indexed
/// id whose total overlap with the probe reaches the per-candidate bound
/// max(floor, required(id)). Lists are split into L (largest lists whose
/// cumulative potential stays below the floor, consulted only by doubling
/// binary search) and S (heap-merged). Candidates stream out of Next() in
/// increasing id order.
///
/// Contracts:
///   * `required` may be null; candidates are then held only to the floor.
///     When supplied it must satisfy required(id) >= any floor ever set
///     (join mode: required = T(r, m) and floor = T(r, I) <= T(r, m)).
///   * RaiseFloor only increases the floor, and the caller must keep it
///     <= min over ids of the emit bound it still cares about (cluster
///     mode caps raises at T(r, I)).
class ListMerger {
 public:
  ListMerger(std::vector<const PostingList*> lists,
             std::vector<double> probe_scores, double floor,
             std::function<double(RecordId)> required,
             std::function<bool(RecordId)> filter, MergeOptions options,
             MergeStats* stats);

  ListMerger(const ListMerger&) = delete;
  ListMerger& operator=(const ListMerger&) = delete;

  /// Produces the next candidate; returns false when the merge is done.
  bool Next(MergeCandidate* out);

  /// Raises the emit floor, migrating newly prunable lists from the heap
  /// to the direct-search set (Section 4.1.1).
  void RaiseFloor(double floor);

  double floor() const { return floor_; }

 private:
  struct HeapEntry {
    RecordId id;
    uint32_t list;
    bool operator>(const HeapEntry& other) const { return id > other.id; }
  };

  /// Pushes list `i`'s frontier posting (after filtering) into the heap.
  void PushFrontier(uint32_t i);
  void RecomputeSplit();

  std::vector<const PostingList*> lists_;   // decreasing length order
  std::vector<double> probe_scores_;        // parallel to lists_
  std::vector<double> cumulative_weight_;   // prefix sums of potential
  std::vector<size_t> frontier_;            // next unconsumed posting (S)
  std::vector<size_t> search_pos_;          // rolling gallop hint (L)
  std::vector<bool> direct_;                // list is in L
  size_t split_k_ = 0;                      // |L| under the current floor
  double floor_;
  std::function<double(RecordId)> required_;
  std::function<bool(RecordId)> filter_;
  MergeOptions options_;
  MergeStats* stats_;
  std::vector<HeapEntry> heap_;  // min-heap on id via std::*_heap
};

/// Gathers the posting lists for `probe`'s tokens from `index`, paired
/// with the probe-side scores, ordered by decreasing list length as
/// MergeOpt requires. Tokens absent from the index are skipped.
void CollectProbeLists(const InvertedIndex& index, const Record& probe,
                       std::vector<const PostingList*>* lists,
                       std::vector<double>* probe_scores);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_MERGE_OPT_H_
