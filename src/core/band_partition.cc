#include "core/band_partition.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace ssjoin {

namespace {

uint64_t SpanCost(size_t len) {
  return static_cast<uint64_t>(len) * static_cast<uint64_t>(len);
}

}  // namespace

std::vector<BandWindow> SimpleBandWindows(
    const std::vector<double>& sorted_values, double k) {
  std::vector<BandWindow> windows;
  const size_t n = sorted_values.size();
  if (n == 0) return windows;
  SSJOIN_DCHECK(std::is_sorted(sorted_values.begin(), sorted_values.end()));
  size_t start = 0;
  for (size_t i = 1; i < n; ++i) {
    if (sorted_values[i] - sorted_values[start] > k) {
      windows.push_back({start, i});
      while (sorted_values[i] - sorted_values[start] > k) ++start;
    }
  }
  windows.push_back({start, n});
  return windows;
}

std::vector<BandWindow> GreedyMergeWindows(
    const std::vector<BandWindow>& windows) {
  std::vector<BandWindow> merged;
  if (windows.empty()) return merged;
  BandWindow pending = windows[0];
  for (size_t i = 1; i < windows.size(); ++i) {
    const BandWindow& current = windows[i];
    size_t merged_len = current.end - pending.begin;
    size_t pending_len = pending.end - pending.begin;
    size_t current_len = current.end - current.begin;
    if (SpanCost(merged_len) < SpanCost(pending_len) + SpanCost(current_len)) {
      pending.end = current.end;
    } else {
      merged.push_back(pending);
      pending = current;
    }
  }
  merged.push_back(pending);
  return merged;
}

std::vector<BandWindow> OptimalMergeWindows(
    const std::vector<BandWindow>& windows) {
  const size_t n = windows.size();
  if (n == 0) return {};
  // dp[j] = cheapest partitioning of windows 1..j; edge (i, j) merges
  // windows i+1..j into the span [windows[i].begin, windows[j-1].end).
  std::vector<uint64_t> dp(n + 1, std::numeric_limits<uint64_t>::max());
  std::vector<size_t> parent(n + 1, 0);
  dp[0] = 0;
  for (size_t j = 1; j <= n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      size_t span_len = windows[j - 1].end - windows[i].begin;
      uint64_t cost = dp[i] + SpanCost(span_len);
      if (cost < dp[j]) {
        dp[j] = cost;
        parent[j] = i;
      }
    }
  }
  std::vector<BandWindow> partitions;
  for (size_t j = n; j > 0; j = parent[j]) {
    size_t i = parent[j];
    partitions.push_back({windows[i].begin, windows[j - 1].end});
  }
  std::reverse(partitions.begin(), partitions.end());
  return partitions;
}

std::vector<std::vector<RecordId>> BandPartitionByNorm(
    const RecordSet& records, double k, BandStrategy strategy) {
  std::vector<RecordId> ids(records.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [&records](RecordId a, RecordId b) {
    return records.record(a).norm() < records.record(b).norm();
  });
  std::vector<double> values;
  values.reserve(ids.size());
  for (RecordId id : ids) values.push_back(records.record(id).norm());

  std::vector<BandWindow> windows = SimpleBandWindows(values, k);
  switch (strategy) {
    case BandStrategy::kSimple:
      break;
    case BandStrategy::kGreedy:
      windows = GreedyMergeWindows(windows);
      break;
    case BandStrategy::kOptimal:
      windows = OptimalMergeWindows(windows);
      break;
  }

  std::vector<std::vector<RecordId>> partitions;
  partitions.reserve(windows.size());
  for (const BandWindow& w : windows) {
    partitions.emplace_back(ids.begin() + w.begin, ids.begin() + w.end);
  }
  return partitions;
}

uint64_t BandPartitionCost(const std::vector<BandWindow>& partitions) {
  uint64_t total = 0;
  for (const BandWindow& w : partitions) total += SpanCost(w.end - w.begin);
  return total;
}

}  // namespace ssjoin
