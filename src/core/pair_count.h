#ifndef SSJOIN_CORE_PAIR_COUNT_H_
#define SSJOIN_CORE_PAIR_COUNT_H_

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Pair-Count (Section 2.2): for every posting list, materialize all
/// record-id pairs in it and aggregate each pair's total overlap in a hash
/// table; pairs that reach the threshold are verified and emitted. Memory
/// grows with the sum of squared list lengths — the paper's reason this
/// algorithm only completes on small inputs — so `max_aggregated_pairs`
/// provides an abort valve for the benchmarks.
struct PairCountOptions {
  /// Threshold optimization of Section 3.1: the globally largest lists
  /// whose total potential stays below the smallest possible pair
  /// threshold are excluded from pair generation; surviving pairs
  /// binary-search into them (with cumulative-weight early termination)
  /// to complete their counts.
  bool optimized = true;

  /// Abort (OutOfRange) when the aggregation table exceeds this many
  /// pairs; 0 = unlimited.
  uint64_t max_aggregated_pairs = 0;
};

/// Runs Pair-Count. `records` must already be Prepare()d by `pred`.
Result<JoinStats> PairCountJoin(const RecordSet& records,
                                const Predicate& pred,
                                const PairCountOptions& options,
                                const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PAIR_COUNT_H_
