#ifndef SSJOIN_CORE_JOIN_COMMON_H_
#define SSJOIN_CORE_JOIN_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <functional>

#include "core/merge_opt.h"
#include "data/record.h"

namespace ssjoin {

/// Receives each matching pair exactly once, with a < b.
using PairSink = std::function<void(RecordId a, RecordId b)>;

/// Counters reported by every join algorithm. Two kinds of counter live
/// here, and they merge differently:
///
///   * flow counters (pairs, candidates_verified, groups, merge.*) count
///     events and always add;
///   * capacity peaks (index_postings, aggregated_pairs) measure the
///     footprint of a structure while it existed. Re-running over the
///     same (or a successor) structure keeps the max; combining disjoint
///     partitions — band partitions, parallel workers — adds, because
///     the per-partition structures coexist and the total footprint is
///     the sum of the per-partition peaks.
///
/// Pick the merge that matches how the runs relate; there is
/// deliberately no operator+= to sum-or-max implicitly.
struct JoinStats {
  uint64_t pairs = 0;                 // matches emitted
  uint64_t candidates_verified = 0;   // Predicate::Matches invocations
  uint64_t index_postings = 0;        // peak postings held in indexes
  uint64_t aggregated_pairs = 0;      // Pair-Count hash-table peak size
  uint64_t groups = 0;                // Word-Groups groups emitted
  MergeStats merge;

  /// Folds in a later run or phase that reuses (or replaces) the same
  /// in-memory structures: flow counters add, capacity peaks take max.
  JoinStats& MergeSequential(const JoinStats& other) {
    pairs += other.pairs;
    candidates_verified += other.candidates_verified;
    index_postings = std::max(index_postings, other.index_postings);
    aggregated_pairs = std::max(aggregated_pairs, other.aggregated_pairs);
    groups += other.groups;
    merge += other.merge;
    return *this;
  }

  /// Folds in a disjoint partition of the same join (band partition,
  /// parallel worker): every counter adds, capacity peaks included.
  JoinStats& MergePartition(const JoinStats& other) {
    pairs += other.pairs;
    candidates_verified += other.candidates_verified;
    index_postings += other.index_postings;
    aggregated_pairs += other.aggregated_pairs;
    groups += other.groups;
    merge += other.merge;
    return *this;
  }
};

/// Canonical 64-bit key of an unordered pair (used for deduplication).
inline uint64_t PairKey(RecordId a, RecordId b) {
  if (a > b) {
    RecordId tmp = a;
    a = b;
    b = tmp;
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace ssjoin

#endif  // SSJOIN_CORE_JOIN_COMMON_H_
