#ifndef SSJOIN_CORE_JOIN_COMMON_H_
#define SSJOIN_CORE_JOIN_COMMON_H_

#include <cstdint>
#include <functional>

#include "core/merge_opt.h"
#include "data/record.h"

namespace ssjoin {

/// Receives each matching pair exactly once, with a < b.
using PairSink = std::function<void(RecordId a, RecordId b)>;

/// Counters reported by every join algorithm.
struct JoinStats {
  uint64_t pairs = 0;                 // matches emitted
  uint64_t candidates_verified = 0;   // Predicate::Matches invocations
  uint64_t index_postings = 0;        // peak postings held in indexes
  uint64_t aggregated_pairs = 0;      // Pair-Count hash-table peak size
  uint64_t groups = 0;                // Word-Groups groups emitted
  MergeStats merge;

  JoinStats& operator+=(const JoinStats& other) {
    pairs += other.pairs;
    candidates_verified += other.candidates_verified;
    index_postings = std::max(index_postings, other.index_postings);
    aggregated_pairs = std::max(aggregated_pairs, other.aggregated_pairs);
    groups += other.groups;
    merge += other.merge;
    return *this;
  }
};

/// Canonical 64-bit key of an unordered pair (used for deduplication).
inline uint64_t PairKey(RecordId a, RecordId b) {
  if (a > b) {
    RecordId tmp = a;
    a = b;
    b = tmp;
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace ssjoin

#endif  // SSJOIN_CORE_JOIN_COMMON_H_
