#ifndef SSJOIN_CORE_EDIT_DISTANCE_PREDICATE_H_
#define SSJOIN_CORE_EDIT_DISTANCE_PREDICATE_H_

#include <string>

#include "core/predicate.h"

namespace ssjoin {

/// The edit-distance join of Section 5.2.3: match iff the Levenshtein
/// distance between the two original strings is <= k. Operates on a
/// q-gram corpus (BuildQGramCorpus with the same q). The framework's
/// pieces are:
///
///   * score(w, r) = 1 (match amount = number of shared q-grams);
///   * threshold T(r, s) = max(len(r), len(s)) - 1 - q(k - 1), the q-gram
///     count filter, non-decreasing in the string lengths, so the norm is
///     text_length;
///   * filter |len(r) - len(s)| <= k;
///   * Matches additionally runs the banded edit-distance verifier, making
///     the join exact rather than a candidate filter.
///
/// Caveat handled by the join driver: when both strings are shorter than
/// ShortRecordNormBound() the q-gram threshold is vacuous and a matching
/// pair may share no q-gram at all; such records are cross-checked
/// brute-force.
class EditDistancePredicate : public Predicate {
 public:
  /// Requires k >= 0 and q >= 1. `q` must match the corpus tokenization.
  EditDistancePredicate(int k, int q);

  std::string name() const override { return "edit-distance"; }
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  bool NormFilter(double norm_r, double norm_s) const override;
  bool has_norm_filter() const override { return true; }
  bool MatchesCross(const RecordSet& set_a, RecordId a,
                    const RecordSet& set_b, RecordId b) const override;
  bool has_static_weights() const override { return true; }
  double ShortRecordNormBound() const override;

  int k() const { return k_; }
  int q() const { return q_; }

 private:
  int k_;
  int q_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_EDIT_DISTANCE_PREDICATE_H_
