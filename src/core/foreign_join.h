#ifndef SSJOIN_CORE_FOREIGN_JOIN_H_
#define SSJOIN_CORE_FOREIGN_JOIN_H_

#include <functional>

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Receives one matching cross pair: `left_id` indexes the left set,
/// `right_id` the right set.
using CrossPairSink =
    std::function<void(RecordId left_id, RecordId right_id)>;

/// Non-self similarity join R ⋈ S (the paper presents self-joins and notes
/// "the extension to non-self-joins is obvious"): index the right set once,
/// probe with every left record through MergeOpt, verify with
/// Predicate::MatchesCross.
struct ForeignJoinOptions {
  bool optimized_merge = true;
  bool apply_filter = true;
  /// Probe left records in decreasing-norm order (Section 3.3's sort; it
  /// only affects speed, never output).
  bool presort = true;
};

/// Runs the cross join, preparing both sides via
/// Predicate::PrepareForJoin. Emits each matching (left, right) pair
/// exactly once. Handles the short-record fallback for predicates (edit
/// distance, Hamming) whose tiny records can match without shared tokens.
Result<JoinStats> ForeignProbeJoin(RecordSet* left, RecordSet* right,
                                   const Predicate& pred,
                                   const ForeignJoinOptions& options,
                                   const CrossPairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_FOREIGN_JOIN_H_
