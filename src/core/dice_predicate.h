#ifndef SSJOIN_CORE_DICE_PREDICATE_H_
#define SSJOIN_CORE_DICE_PREDICATE_H_

#include <string>

#include "core/predicate.h"

namespace ssjoin {

/// Dice (Sørensen) coefficient join: match iff
///
///   2 |r ∩ s| / (|r| + |s|) >= f.
///
/// Not evaluated in the paper, but it drops straight out of the Section 5
/// framework: rewriting gives the overlap threshold
///
///   |r ∩ s| >= f/2 (|r| + |s|) = T(r, s),
///
/// non-decreasing in both set sizes (norm = set size), with the size-ratio
/// filter min/max >= f / (2 - f) (attained when the smaller set is fully
/// contained in the larger).
class DicePredicate : public Predicate {
 public:
  /// Requires 0 < fraction <= 1.
  explicit DicePredicate(double fraction);

  std::string name() const override { return "dice"; }
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  bool NormFilter(double norm_r, double norm_s) const override;
  bool has_norm_filter() const override { return true; }
  /// A partner has norm >= f/(2-f) norm_r, so the threshold is at least
  /// f/2 (norm_r + f/(2-f) norm_r) = f norm_r / (2 - f).
  double MinMatchOverlap(double norm_r) const override {
    return fraction_ * norm_r / (2.0 - fraction_);
  }
  bool supports_bitmap_pruning() const override { return true; }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_DICE_PREDICATE_H_
