#ifndef SSJOIN_CORE_STREAMING_JOIN_H_
#define SSJOIN_CORE_STREAMING_JOIN_H_

#include <memory>
#include <vector>

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record.h"
#include "data/record_set.h"
#include "index/dynamic_index.h"

namespace ssjoin {

/// Incremental (streaming) similarity join: the single-pass build-and-
/// probe loop of Section 3.2 exposed as a long-lived object. Each Add()
/// reports the new record's matches against everything added before it,
/// then indexes it — so feeding a whole dataset reproduces exactly the
/// ProbeCount-online self-join, but records can arrive one at a time
/// (deduplication against a growing reference set, change-data capture,
/// etc.).
///
/// Scores and norms are installed per record via a single-record
/// Prepare, so only predicates whose scores do not depend on corpus-wide
/// statistics are supported (overlap, Jaccard, Dice, Hamming, overlap-
/// coefficient, edit distance — not TF-IDF cosine, whose IDF would drift
/// as the stream grows). Construction fails a SSJOIN_CHECK otherwise.
class StreamingJoin {
 public:
  struct Options {
    bool apply_filter;
    Options() : apply_filter(true) {}
  };

  /// `pred` must outlive the StreamingJoin.
  explicit StreamingJoin(const Predicate& pred, Options options = Options());

  StreamingJoin(const StreamingJoin&) = delete;
  StreamingJoin& operator=(const StreamingJoin&) = delete;

  /// Adds a record (with optional original text, needed by edit
  /// distance), invoking `on_match` once per earlier record it matches.
  /// Returns the id assigned to the record (its arrival position). The
  /// view is copied into the internal record set; it only needs to stay
  /// valid for the duration of the call.
  RecordId Add(RecordView record, std::string text,
               const std::function<void(RecordId earlier)>& on_match);

  /// Number of records ingested so far.
  size_t size() const { return records_.size(); }

  /// The ingested records (ids are arrival positions).
  const RecordSet& records() const { return records_; }

  const JoinStats& stats() const { return stats_; }

 private:
  const Predicate& pred_;
  Options options_;
  RecordSet records_;
  DynamicIndex index_;  // grows with the stream; membership unknown up front
  JoinStats stats_;
  // Scratch for the short-record fallback (edit distance / Hamming):
  // ids of past records below the predicate's short bound.
  std::vector<RecordId> short_records_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_STREAMING_JOIN_H_
