#include "core/word_groups.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "data/corpus_stats.h"
#include "mining/dfs_miner.h"
#include "util/logging.h"

namespace ssjoin {

Result<JoinStats> WordGroupsJoin(const RecordSet& records,
                                 const Predicate& pred,
                                 const WordGroupsOptions& options,
                                 const PairSink& sink) {
  std::optional<double> constant = pred.ConstantThreshold();
  if (!constant.has_value() || !pred.has_static_weights()) {
    return Status::InvalidArgument(
        "Word-Groups requires a constant-threshold predicate with static "
        "token weights; '" +
        pred.name() + "' does not qualify");
  }
  JoinStats stats;
  double threshold = *constant;

  std::vector<double> token_weights(records.vocabulary_size(), 1.0);
  for (TokenId t = 0; t < records.vocabulary_size(); ++t) {
    token_weights[t] = pred.StaticTokenWeight(t);
  }

  AprioriOptions apriori = options.apriori;
  apriori.min_weight = threshold;
  if (options.threshold_optimized) {
    // Global L set: the most frequent tokens whose cumulative weight stays
    // below T; itemsets inside L can never certify a match.
    std::vector<TokenId> by_frequency =
        TopFrequentTokens(records, records.vocabulary_size());
    apriori.token_in_large_set.assign(records.vocabulary_size(), false);
    double sum = 0;
    for (TokenId t : by_frequency) {
      if (sum + token_weights[t] >= PruneBound(threshold)) break;
      sum += token_weights[t];
      apriori.token_in_large_set[t] = true;
    }
  }

  std::unordered_set<uint64_t> emitted;
  auto handle_group = [&](const MinedGroup& group) {
    ++stats.groups;
    for (size_t i = 0; i < group.rids.size(); ++i) {
      for (size_t j = i + 1; j < group.rids.size(); ++j) {
        RecordId a = group.rids[i];
        RecordId b = group.rids[j];
        if (!emitted.insert(PairKey(a, b)).second) continue;
        // Confirmed groups imply the match analytically, but the final
        // arbiter stays Predicate::Matches so that rounding in the
        // sqrt-factored scores can never disagree with the reference
        // join on borderline pairs.
        ++stats.candidates_verified;
        if (pred.Matches(records, a, b)) {
          ++stats.pairs;
          sink(std::min(a, b), std::max(a, b));
        }
      }
    }
  };

  if (options.miner == WordGroupsMiner::kDepthFirst) {
    DfsMiner miner(records, std::move(token_weights), apriori);
    miner.Mine(handle_group);
  } else {
    AprioriMiner miner(records, std::move(token_weights), apriori);
    miner.Mine(handle_group);
  }
  return stats;
}

}  // namespace ssjoin
