#include "core/edit_distance_predicate.h"

#include <algorithm>
#include <cmath>

#include "text/edit_distance.h"
#include "util/logging.h"

namespace ssjoin {

EditDistancePredicate::EditDistancePredicate(int k, int q) : k_(k), q_(q) {
  SSJOIN_CHECK(k >= 0);
  SSJOIN_CHECK(q >= 1);
}

void EditDistancePredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    const RecordView r = records->record(id);
    for (size_t i = 0; i < r.size(); ++i) records->set_score(id, i, 1.0);
    records->set_norm(id, static_cast<double>(r.text_length()));
  }
}

double EditDistancePredicate::ThresholdForNorms(double norm_r,
                                                double norm_s) const {
  return std::max(norm_r, norm_s) - 1.0 - static_cast<double>(q_) * (k_ - 1);
}

bool EditDistancePredicate::NormFilter(double norm_r, double norm_s) const {
  return std::abs(norm_r - norm_s) <= static_cast<double>(k_);
}

bool EditDistancePredicate::MatchesCross(const RecordSet& set_a, RecordId a,
                                         const RecordSet& set_b,
                                         RecordId b) const {
  // text_view: either side may be a mapped (view-mode) segment arena.
  const std::string_view text_a = set_a.text_view(a);
  const std::string_view text_b = set_b.text_view(b);
  if (!NormFilter(static_cast<double>(text_a.size()),
                  static_cast<double>(text_b.size()))) {
    return false;
  }
  return EditDistanceAtMost(text_a, text_b, static_cast<size_t>(k_));
}

double EditDistancePredicate::ShortRecordNormBound() const {
  // T(r, s) >= 1 requires max(len) >= 2 + q(k-1); pairs where both strings
  // are shorter can share zero q-grams yet be within distance k.
  return 2.0 + static_cast<double>(q_) * (k_ - 1);
}

}  // namespace ssjoin
