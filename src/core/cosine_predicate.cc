#include "core/cosine_predicate.h"

#include <cmath>

#include "text/tfidf.h"
#include "util/logging.h"

namespace ssjoin {

CosinePredicate::CosinePredicate(double fraction) : fraction_(fraction) {
  SSJOIN_CHECK(fraction > 0 && fraction <= 1);
}

namespace {

/// Installs unit-normalized TF-IDF scores from `weighter` onto `records`.
void ApplyWeights(RecordSet* records, const TfIdfWeighter& weighter);

}  // namespace

void CosinePredicate::Prepare(RecordSet* records) const {
  ApplyWeights(records, TfIdfWeighter::FromRecordSet(*records));
}

void CosinePredicate::PrepareIncremental(const RecordSet& reference,
                                         RecordSet* staging) const {
  ApplyWeights(staging, TfIdfWeighter::FromRecordSet(reference));
}

void CosinePredicate::PrepareForJoin(RecordSet* left,
                                     RecordSet* right) const {
  std::vector<uint64_t> combined = left->term_frequencies();
  const std::vector<uint64_t>& other = right->term_frequencies();
  if (other.size() > combined.size()) combined.resize(other.size(), 0);
  for (size_t t = 0; t < other.size(); ++t) combined[t] += other[t];
  TfIdfWeighter weighter(std::move(combined), left->size() + right->size());
  ApplyWeights(left, weighter);
  ApplyWeights(right, weighter);
}

namespace {

void ApplyWeights(RecordSet* records, const TfIdfWeighter& weighter) {
  // Normalization is staged in a scratch buffer so the arena only ever
  // receives final values: a repeated Prepare writes each score slot once
  // with an identical value, which RecordSet recognizes as a no-op and
  // the cached TokenStats stay warm.
  std::vector<double> weights;
  for (RecordId id = 0; id < records->size(); ++id) {
    const RecordView r = records->record(id);
    weights.resize(r.size());
    double squared = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      double w = weighter.Weight(r.token(i), /*tf=*/1);
      weights[i] = w;
      squared += w * w;
    }
    double l2 = std::sqrt(squared);
    for (size_t i = 0; i < r.size(); ++i) {
      records->set_score(id, i, l2 > 0 ? weights[i] / l2 : weights[i]);
    }
    // Unit vectors make Equation 1's record score identically 1, which
    // would defeat the pre-sort heuristic; record size is the natural
    // proxy (longer records produce longer lists). The threshold is
    // norm-independent, so this choice has no correctness impact.
    records->set_norm(id, static_cast<double>(r.size()));
  }
}

}  // namespace

double CosinePredicate::ThresholdForNorms(double /*norm_r*/,
                                          double /*norm_s*/) const {
  return fraction_;
}

}  // namespace ssjoin
