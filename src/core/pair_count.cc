#include "core/pair_count.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.h"
#include "util/logging.h"

namespace ssjoin {

Result<JoinStats> PairCountJoin(const RecordSet& records,
                                const Predicate& pred,
                                const PairCountOptions& options,
                                const PairSink& sink) {
  JoinStats stats;
  InvertedIndex index;
  index.PlanFromRecords(records);
  for (RecordId id = 0; id < records.size(); ++id) {
    index.Insert(id, records.record(id));
  }
  stats.index_postings = index.total_postings();

  // Gather the live lists, largest first (for the L/S split), ties broken
  // by token id (ForEachList already yields ascending tokens, so a stable
  // sort on length alone would do; the explicit tie-break keeps the intent
  // obvious).
  std::vector<std::pair<TokenId, PostingListView>> token_lists;
  index.ForEachList([&token_lists](TokenId t, PostingListView list) {
    token_lists.emplace_back(t, list);
  });
  std::sort(token_lists.begin(), token_lists.end(),
            [](const auto& a, const auto& b) {
              if (a.second.size() != b.second.size()) {
                return a.second.size() > b.second.size();
              }
              return a.first < b.first;
            });
  std::vector<PostingListView> lists;
  lists.reserve(token_lists.size());
  for (const auto& [t, list] : token_lists) lists.push_back(list);

  // Smallest threshold any pair can have: T is non-decreasing in both
  // norms, so evaluate it at the global minimum norm.
  double floor = pred.ThresholdForNorms(index.min_norm(), index.min_norm());

  // cumulative potential of the k largest lists; L = maximal prefix below
  // the floor (excluded from pair generation).
  std::vector<double> cumulative(lists.size(), 0);
  double running = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    running += lists[i].max_score() * lists[i].max_score();
    cumulative[i] = running;
  }
  size_t split_k = 0;
  if (options.optimized) {
    while (split_k < lists.size() &&
           cumulative[split_k] < PruneBound(floor)) {
      ++split_k;
    }
  }
  stats.merge.lists_direct = split_k;
  stats.merge.lists_merged = lists.size() - split_k;

  // Aggregate every pair from the S lists.
  std::unordered_map<uint64_t, double> pair_weight;
  for (size_t i = split_k; i < lists.size(); ++i) {
    const PostingListView list = lists[i];
    for (size_t a = 0; a < list.size(); ++a) {
      for (size_t b = a + 1; b < list.size(); ++b) {
        pair_weight[PairKey(list[a].id, list[b].id)] +=
            list[a].score * list[b].score;
        if (options.max_aggregated_pairs != 0 &&
            pair_weight.size() > options.max_aggregated_pairs) {
          return Status::OutOfRange(
              "Pair-Count aggregation exceeded the configured pair budget");
        }
      }
    }
  }
  stats.aggregated_pairs = pair_weight.size();

  // Complete each surviving pair's count against the L lists and verify.
  std::vector<uint64_t> keys;
  keys.reserve(pair_weight.size());
  for (const auto& [key, weight] : pair_weight) keys.push_back(key);
  std::sort(keys.begin(), keys.end());  // deterministic emission order

  for (uint64_t key : keys) {
    RecordId a = static_cast<RecordId>(key >> 32);
    RecordId b = static_cast<RecordId>(key & 0xFFFFFFFFu);
    double weight = pair_weight[key];
    double required = pred.ThresholdForNorms(records.record(a).norm(),
                                             records.record(b).norm());
    bool viable = true;
    for (size_t i = split_k; i-- > 0;) {
      if (weight + cumulative[i] < PruneBound(required)) {
        viable = false;
        break;
      }
      uint64_t* cost = &stats.merge.gallop_probes;
      size_t pos_a = lists[i].GallopFind(a, 0, cost);
      if (pos_a == SIZE_MAX) continue;
      size_t pos_b = lists[i].GallopFind(b, pos_a + 1, cost);
      if (pos_b == SIZE_MAX) continue;
      weight += lists[i][pos_a].score * lists[i][pos_b].score;
    }
    if (!viable || weight < PruneBound(required)) continue;
    ++stats.candidates_verified;
    if (pred.Matches(records, a, b)) {
      ++stats.pairs;
      sink(a, b);
    }
  }
  return stats;
}

}  // namespace ssjoin
