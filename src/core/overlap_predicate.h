#ifndef SSJOIN_CORE_OVERLAP_PREDICATE_H_
#define SSJOIN_CORE_OVERLAP_PREDICATE_H_

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/predicate.h"

namespace ssjoin {

/// The (weighted) T-overlap join of Section 2: match iff the total weight
/// of common tokens is >= T. In the framework's product form the match
/// contribution of token w must equal weight(w), so Prepare installs
/// score(w, r) = sqrt(weight(w)). The record norm is then the total
/// weight of the record's tokens (Equation 1).
class OverlapPredicate : public Predicate {
 public:
  /// Unweighted T-overlap: weight(w) = 1, i.e. |r ∩ s| >= T.
  explicit OverlapPredicate(double threshold);

  /// Weighted T-overlap: `token_weights[t]` is weight(t) (> 0); tokens
  /// beyond the vector default to 1.
  OverlapPredicate(double threshold, std::vector<double> token_weights);

  std::string name() const override;
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  std::optional<double> ConstantThreshold() const override {
    return threshold_;
  }
  bool has_static_weights() const override { return true; }
  double StaticTokenWeight(TokenId t) const override;
  /// Every match overlaps by at least T.
  double MinMatchOverlap(double /*norm_r*/) const override {
    return threshold_;
  }
  bool supports_bitmap_pruning() const override { return true; }

  double threshold() const { return threshold_; }
  bool weighted() const { return !token_weights_.empty(); }

 private:
  double threshold_;
  std::vector<double> token_weights_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_OVERLAP_PREDICATE_H_
