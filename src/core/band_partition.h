#ifndef SSJOIN_CORE_BAND_PARTITION_H_
#define SSJOIN_CORE_BAND_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/record.h"
#include "data/record_set.h"

namespace ssjoin {

/// Range-filter partitioning (Section 5.3). All the framework's filters
/// are range conditions |l(r) - l(s)| <= k on an ordered record property
/// l(); instead of evaluating the filter during list merging, records can
/// be range-partitioned into (overlapping) groups such that every pair
/// satisfying the condition co-occurs in at least one group, and the join
/// run per group.

/// A window over the records sorted by l(): positions [begin, end).
struct BandWindow {
  size_t begin;
  size_t end;
};

/// The paper's Simple algorithm: grow a window while the first record
/// stays within range k of the current one; on overflow, emit the window
/// and restart it at the first in-range position. Guarantees every pair
/// with |l(r) - l(s)| <= k shares a window. `sorted_values` must be
/// ascending.
std::vector<BandWindow> SimpleBandWindows(
    const std::vector<double>& sorted_values, double k);

/// The Greedy algorithm: delay each window and merge it with its successor
/// when the merged join cost (|merged|^2) undercuts the sum of the two.
std::vector<BandWindow> GreedyMergeWindows(
    const std::vector<BandWindow>& windows);

/// The Optimal algorithm: shortest path over window boundaries with edge
/// weight = cost of the merged span (dynamic program of Section 5.3).
std::vector<BandWindow> OptimalMergeWindows(
    const std::vector<BandWindow>& windows);

enum class BandStrategy { kSimple, kGreedy, kOptimal };

/// End-to-end helper: sorts record ids by norm (the l() of every built-in
/// filter), windows them with range `k`, merges windows per `strategy`,
/// and returns groups of RecordIds. Every pair with |norm difference|
/// <= k co-occurs in at least one group; groups may overlap, so a join
/// over the groups must deduplicate its output.
std::vector<std::vector<RecordId>> BandPartitionByNorm(
    const RecordSet& records, double k, BandStrategy strategy);

/// Total join cost estimate (sum of squared partition sizes) used to
/// compare strategies in the ablation bench.
uint64_t BandPartitionCost(const std::vector<BandWindow>& partitions);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_BAND_PARTITION_H_
