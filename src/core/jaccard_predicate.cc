#include "core/jaccard_predicate.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ssjoin {

JaccardPredicate::JaccardPredicate(double fraction) : fraction_(fraction) {
  SSJOIN_CHECK(fraction > 0 && fraction <= 1);
}

JaccardPredicate::JaccardPredicate(double fraction,
                                   std::vector<double> token_weights)
    : fraction_(fraction), token_weights_(std::move(token_weights)) {
  SSJOIN_CHECK(fraction > 0 && fraction <= 1);
  for (double w : token_weights_) SSJOIN_CHECK(w > 0);
}

std::string JaccardPredicate::name() const {
  return weighted() ? "weighted-jaccard" : "jaccard";
}

double JaccardPredicate::TokenWeight(TokenId t) const {
  return t < token_weights_.size() ? token_weights_[t] : 1.0;
}

void JaccardPredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    const RecordView r = records->record(id);
    double norm = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      double weight = TokenWeight(r.token(i));
      records->set_score(id, i, std::sqrt(weight));
      norm += weight;
    }
    records->set_norm(id, norm);
  }
}

double JaccardPredicate::ThresholdForNorms(double norm_r,
                                           double norm_s) const {
  return fraction_ / (1.0 + fraction_) * (norm_r + norm_s);
}

bool JaccardPredicate::NormFilter(double norm_r, double norm_s) const {
  return std::min(norm_r, norm_s) >= fraction_ * std::max(norm_r, norm_s);
}

}  // namespace ssjoin
