#include "core/prefix_filter_join.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/merge_opt.h"
#include "util/logging.h"

namespace ssjoin {

Result<JoinStats> PrefixFilterJoin(const RecordSet& records,
                                   const Predicate& pred,
                                   const PrefixFilterJoinOptions& options,
                                   const PairSink& sink) {
  if (pred.MinMatchOverlap(1e18) <= 0) {
    return Status::InvalidArgument(
        "prefix filtering needs a positive MinMatchOverlap bound; '" +
        pred.name() + "' does not provide one");
  }
  JoinStats stats;
  const size_t n = records.size();

  // Global token order: increasing document frequency, rare tokens first,
  // so prefixes hold the most selective tokens.
  std::vector<uint32_t> rank(records.vocabulary_size());
  {
    std::vector<TokenId> by_df(records.vocabulary_size());
    std::iota(by_df.begin(), by_df.end(), 0);
    std::stable_sort(by_df.begin(), by_df.end(),
                     [&records](TokenId a, TokenId b) {
                       return records.doc_frequency(a) <
                              records.doc_frequency(b);
                     });
    for (uint32_t i = 0; i < by_df.size(); ++i) rank[by_df[i]] = i;
  }

  // Corpus-wide max score per token (the gmax of the suffix bound), from
  // the RecordSet's cached TokenStats — no corpus rescan per join call.
  const std::vector<double>& gmax = records.token_stats().max_token_scores;

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  std::unordered_map<TokenId, std::vector<RecordId>> prefix_index;
  std::vector<std::pair<uint32_t, size_t>> ordered;  // (rank, token pos)
  std::vector<RecordId> candidates;
  std::vector<uint32_t> last_seen(n, UINT32_MAX);  // probe-local dedup

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId id = order[pos];
    const RecordView r = records.record(id);

    // Probe: every token of r against the prefix index of earlier records.
    candidates.clear();
    for (size_t i = 0; i < r.size(); ++i) {
      auto it = prefix_index.find(r.token(i));
      if (it == prefix_index.end()) continue;
      for (RecordId other : it->second) {
        if (last_seen[other] == pos) continue;
        last_seen[other] = pos;
        if (options.apply_filter && pred.has_norm_filter() &&
            !pred.NormFilter(r.norm(), records.record(other).norm())) {
          continue;
        }
        candidates.push_back(other);
      }
    }
    for (RecordId other : candidates) {
      ++stats.candidates_verified;
      if (pred.Matches(records, other, id)) {
        ++stats.pairs;
        sink(std::min(other, id), std::max(other, id));
      }
    }

    // Index r's prefix: tokens in rank order; the suffix is the longest
    // tail whose total potential stays below α(r).
    double alpha = pred.MinMatchOverlap(r.norm());
    ordered.clear();
    for (size_t i = 0; i < r.size(); ++i) {
      ordered.emplace_back(rank[r.token(i)], i);
    }
    std::sort(ordered.begin(), ordered.end());
    size_t prefix_len = ordered.size();
    if (alpha > 0) {
      double suffix_potential = 0;
      while (prefix_len > 0) {
        size_t token_pos = ordered[prefix_len - 1].second;
        double contribution =
            r.score(token_pos) * gmax[r.token(token_pos)];
        if (suffix_potential + contribution >= PruneBound(alpha)) break;
        suffix_potential += contribution;
        --prefix_len;
      }
    }
    for (size_t i = 0; i < prefix_len; ++i) {
      prefix_index[r.token(ordered[i].second)].push_back(id);
      ++stats.index_postings;
    }
  }
  return stats;
}

}  // namespace ssjoin
