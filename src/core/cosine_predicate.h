#ifndef SSJOIN_CORE_COSINE_PREDICATE_H_
#define SSJOIN_CORE_COSINE_PREDICATE_H_

#include <optional>
#include <string>

#include "core/predicate.h"

namespace ssjoin {

/// The cosine-similarity join on TF-IDF scores of Section 5.2.2: match iff
///
///   sum_w TF-IDF(w, r) * TF-IDF(w, s) / (||r||_2 ||s||_2) >= f.
///
/// Prepare installs score(w, r) = TF-IDF(w, r) / ||r||_2 (unit-normalized
/// vectors), making the match amount the cosine itself and the threshold
/// the constant f. Because IDF scores are inversely related to list
/// length, the large-and-low-weight lists land in MergeOpt's L set — the
/// paper notes the optimization is *more* effective here than for
/// unweighted overlap.
///
/// Records are sets, so the within-record term frequency is 1 and
/// TF-IDF(w, r) reduces to the IDF factor log(1 + N / fr(w)), with fr(w)
/// taken from the corpus being prepared.
class CosinePredicate : public Predicate {
 public:
  /// Requires 0 < fraction <= 1.
  explicit CosinePredicate(double fraction);

  std::string name() const override { return "cosine"; }
  void Prepare(RecordSet* records) const override;
  /// Non-self joins weight both sides against the combined corpus so a
  /// token's IDF is the same on the left and the right.
  void PrepareForJoin(RecordSet* left, RecordSet* right) const override;
  /// Serving/incremental use: weights `staging` with the reference
  /// corpus's IDF table frozen in place (tokens unseen there get the
  /// maximum IDF). Re-scoring a record that is *in* the reference corpus
  /// reproduces its in-corpus scores exactly.
  void PrepareIncremental(const RecordSet& reference,
                          RecordSet* staging) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  std::optional<double> ConstantThreshold() const override {
    return fraction_;
  }
  bool corpus_independent_scores() const override { return false; }
  /// Unit vectors: every match has dot product >= f.
  double MinMatchOverlap(double /*norm_r*/) const override {
    return fraction_;
  }
  bool supports_bitmap_pruning() const override { return true; }

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_COSINE_PREDICATE_H_
