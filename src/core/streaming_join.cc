#include "core/streaming_join.h"

#include <unordered_set>

#include "core/merge_opt.h"
#include "core/probe_common.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

StreamingJoin::StreamingJoin(const Predicate& pred, Options options)
    : pred_(pred), options_(options) {
  SSJOIN_CHECK(pred.corpus_independent_scores())
      << "StreamingJoin requires per-record scores; predicate '"
      << pred.name() << "' weights records against corpus statistics";
}

RecordId StreamingJoin::Add(
    RecordView record, std::string text,
    const std::function<void(RecordId earlier)>& on_match) {
  // Single-record preparation: installs score(w, r) and the norm.
  RecordSet staging;
  staging.Add(record, std::move(text));
  pred_.Prepare(&staging);
  const RecordView probe = staging.record(0);

  double short_bound = pred_.ShortRecordNormBound();
  bool probe_is_short = short_bound > 0 && probe.norm() < short_bound;
  std::unordered_set<RecordId> emitted;  // only filled when needed

  if (index_.num_entities() > 0 && !probe.empty()) {
    double floor = pred_.ThresholdForNorms(probe.norm(), index_.min_norm());
    auto required_fn = [&](RecordId m) {
      return pred_.ThresholdForNorms(probe.norm(),
                                     records_.record(m).norm());
    };
    FunctionRef<double(RecordId)> required = required_fn;
    auto filter_fn = [&](RecordId m) {
      return pred_.NormFilter(probe.norm(), records_.record(m).norm());
    };
    FunctionRef<bool(RecordId)> filter;
    if (options_.apply_filter && pred_.has_norm_filter()) {
      filter = filter_fn;
    }
    probe_internal::ProbeScratch scratch;
    probe_internal::ProbeOne(
        index_, probe, floor, required, filter, {}, &stats_.merge, &scratch,
        [&](const MergeCandidate& candidate) {
          ++stats_.candidates_verified;
          if (pred_.MatchesCross(records_, candidate.id, staging, 0)) {
            ++stats_.pairs;
            if (probe_is_short) emitted.insert(candidate.id);
            on_match(candidate.id);
          }
        });
  }

  if (probe_is_short) {
    // Both-short pairs can match with no shared token (edit distance,
    // Hamming); check the new record against every past short record.
    for (RecordId earlier : short_records_) {
      if (emitted.count(earlier) > 0) continue;
      ++stats_.candidates_verified;
      if (pred_.MatchesCross(records_, earlier, staging, 0)) {
        ++stats_.pairs;
        on_match(earlier);
      }
    }
  }

  // Move the prepared record into the permanent set and index it.
  RecordId id = records_.Add(staging.record(0), staging.text(0));
  index_.Insert(id, records_.record(id));
  if (short_bound > 0 && records_.record(id).norm() < short_bound) {
    short_records_.push_back(id);
  }
  stats_.index_postings = index_.total_postings();
  return id;
}

}  // namespace ssjoin
