#include "core/hamming_predicate.h"

#include <cmath>

#include "util/logging.h"

namespace ssjoin {

HammingPredicate::HammingPredicate(double k) : k_(k) {
  SSJOIN_CHECK(k >= 0);
}

void HammingPredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    size_t size = records->record_size(id);
    for (size_t i = 0; i < size; ++i) records->set_score(id, i, 1.0);
    records->set_norm(id, static_cast<double>(size));
  }
}

double HammingPredicate::ThresholdForNorms(double norm_r,
                                           double norm_s) const {
  return (norm_r + norm_s - k_) / 2.0;
}

bool HammingPredicate::NormFilter(double norm_r, double norm_s) const {
  return std::abs(norm_r - norm_s) <= k_;
}

}  // namespace ssjoin
