#ifndef SSJOIN_CORE_PREDICATE_H_
#define SSJOIN_CORE_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "data/record.h"
#include "data/record_set.h"

namespace ssjoin {

/// The general similarity-join framework of Section 5, defined by three
/// subroutines:
///
///   * a word match score score(w, r), installed on the records by
///     Prepare(); a pair's match amount is the sum over common tokens of
///     score(w, r) * score(w, s) (Record::OverlapWith);
///   * a threshold T(r, s) that is a non-decreasing function of the record
///     scores ||r||, ||s|| (Equation 1), exposed here through
///     ThresholdForNorms so the same code computes T(r, s), the index
///     lower bound T(r, I) = T(r, minS) and the per-candidate bound
///     T(r, m);
///   * an optional pair filter, which Section 5.3 observes is always a
///     range condition on an ordered record property — here, the norm.
///
/// A predicate is also the final arbiter of matches (Matches recomputes
/// the overlap in canonical token order so that every algorithm and the
/// brute-force reference agree bit-for-bit on borderline pairs).
class Predicate {
 public:
  virtual ~Predicate() = default;

  virtual std::string name() const = 0;

  /// Installs score(w, r) and norm ||r|| on every record. Idempotent.
  virtual void Prepare(RecordSet* records) const = 0;

  /// Prepares both sides of a non-self join consistently. The default
  /// prepares each side independently, which is correct for predicates
  /// whose scores depend only on the record itself; corpus-statistics
  /// predicates (TF-IDF cosine) override it to weight both sides against
  /// the combined corpus.
  virtual void PrepareForJoin(RecordSet* left, RecordSet* right) const;

  /// Prepares `staging` (new or query records) for comparison against the
  /// already-prepared corpus `reference`, without mutating the reference.
  /// The default forwards to Prepare(staging), which is exact whenever
  /// scores depend only on the record itself. Corpus-statistics
  /// predicates (TF-IDF cosine) override it to weight the staging
  /// records with the reference corpus's statistics frozen in place —
  /// exact for records drawn from the reference corpus, and the standard
  /// serving-time approximation for genuinely new records until the next
  /// full Prepare over the grown corpus. The serving layer's base/delta
  /// scoring (src/serve/) is built on this hook.
  virtual void PrepareIncremental(const RecordSet& reference,
                                  RecordSet* staging) const;

  /// T as a function of the two record norms. Must be non-decreasing in
  /// both arguments. May return a value <= 0, meaning any shared token
  /// makes a pair a candidate.
  virtual double ThresholdForNorms(double norm_r, double norm_s) const = 0;

  /// The "additional filter" of the framework. Pairs failing it can be
  /// skipped before any token matching. Default: pass.
  virtual bool NormFilter(double norm_r, double norm_s) const;

  /// True when NormFilter is not vacuous (lets the merge skip per-posting
  /// filter calls otherwise).
  virtual bool has_norm_filter() const { return false; }

  /// Exact decision for a pair, recomputing the overlap canonically.
  /// Self-join form; forwards to MatchesCross with both sides equal.
  bool Matches(const RecordSet& records, RecordId a, RecordId b) const {
    return MatchesCross(records, a, records, b);
  }

  /// Exact decision for a pair drawn from two (possibly equal) record
  /// sets. Subclasses add verification beyond the overlap test (edit
  /// distance) by overriding this.
  virtual bool MatchesCross(const RecordSet& set_a, RecordId a,
                            const RecordSet& set_b, RecordId b) const;

  /// The threshold when it does not depend on the pair (T-overlap, cosine);
  /// enables the stopword, Pair-Count and Word-Groups optimizations.
  virtual std::optional<double> ConstantThreshold() const {
    return std::nullopt;
  }

  /// True when score(w, r) does not depend on r, i.e. tokens have static
  /// weights (required by Word-Groups' itemset weights).
  virtual bool has_static_weights() const { return false; }

  /// The pair-match contribution of token t when weights are static:
  /// score(t, r) * score(t, s) for any r, s containing t.
  virtual double StaticTokenWeight(TokenId t) const;

  /// Records with norm strictly below this bound can match records that
  /// share no token at all (tiny strings under the edit-distance q-gram
  /// filter); the join driver handles such pairs with a brute-force side
  /// pool. 0 disables the fallback.
  virtual double ShortRecordNormBound() const { return 0; }

  /// True when Prepare's scores depend only on the record itself (not on
  /// corpus statistics), which streaming/incremental use requires.
  /// TF-IDF cosine returns false.
  virtual bool corpus_independent_scores() const { return true; }

  /// The smallest overlap any matching pair involving a record of norm
  /// `norm_r` can have — the α(r) bound that powers prefix filtering
  /// (the AllPairs/PPJoin line this paper seeded). Derived per predicate
  /// from the threshold and the range filter; must be a valid lower
  /// bound. A return value <= 0 disables prefix filtering for the
  /// predicate (the default).
  virtual double MinMatchOverlap(double norm_r) const;

  /// True when the token-bitmap candidate prefilter (data/token_bitmap.h)
  /// may ride this predicate's probes. Requires only that matching is
  /// decided by the merged token overlap against the merge bound —
  /// overlap/jaccard/dice/cosine opt in; predicates with side channels
  /// beyond the overlap test (edit distance's short-record pool and
  /// verification) stay out. The filter never changes answers either
  /// way; this merely keeps it off paths it was not measured on.
  virtual bool supports_bitmap_pruning() const { return false; }
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PREDICATE_H_
