#include "core/cluster_mem.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <unordered_map>

#include "data/record_store.h"
#include "util/logging.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

/// One pInfo entry: the record, its home cluster (kNoCluster in batch
/// files when the home lies in another batch) and the clusters to join.
struct PartitionEntry {
  RecordId rid = 0;
  ClusterId home = kNoCluster;
  std::vector<ClusterId> joins;
};

void SerializeEntry(const PartitionEntry& entry, std::string* out) {
  PutVarint32(out, entry.rid);
  PutVarint32(out, entry.home == kNoCluster ? 0 : entry.home + 1);
  PutVarint32(out, static_cast<uint32_t>(entry.joins.size()));
  ClusterId prev = 0;
  for (ClusterId c : entry.joins) {
    PutVarint32(out, c - prev);  // joins are ascending
    prev = c;
  }
}

bool DeserializeEntry(const std::string& data, size_t* offset,
                      PartitionEntry* entry) {
  uint32_t home_plus1 = 0;
  uint32_t count = 0;
  if (!GetVarint32(data, offset, &entry->rid)) return false;
  if (!GetVarint32(data, offset, &home_plus1)) return false;
  if (!GetVarint32(data, offset, &count)) return false;
  entry->home = home_plus1 == 0 ? kNoCluster : home_plus1 - 1;
  entry->joins.assign(count, 0);
  ClusterId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, offset, &delta)) return false;
    prev += delta;
    entry->joins[i] = prev;
  }
  return true;
}

/// Append-only spill file (the paper's pInfo): sequential writes in phase
/// 1, sequential scan afterwards. The file is removed when the SpillFile
/// goes out of scope — including every early-error return — unless
/// Keep() disarms the cleanup (keep_temp_files mode).
class SpillFile {
 public:
  explicit SpillFile(std::string path) : path_(std::move(path)) {}

  SpillFile(SpillFile&& other) noexcept
      : path_(std::move(other.path_)),
        out_(std::move(other.out_)),
        buffer_(std::move(other.buffer_)),
        owns_file_(other.owns_file_) {
    other.owns_file_ = false;
  }
  SpillFile& operator=(SpillFile&&) = delete;

  ~SpillFile() {
    if (owns_file_) {
      out_.close();
      std::remove(path_.c_str());
    }
  }

  /// Disarms the destructor's cleanup; the file outlives the object.
  void Keep() { owns_file_ = false; }

  Status OpenForWrite() {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) return Status::IOError("cannot open spill file: " + path_);
    return Status::OK();
  }

  void Append(const PartitionEntry& entry) {
    buffer_.clear();
    SerializeEntry(entry, &buffer_);
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  }

  Status CloseWrite() {
    out_.close();
    if (out_.fail()) return Status::IOError("short write: " + path_);
    return Status::OK();
  }

  /// Reads the whole file back; invokes `visit` per entry in order.
  Status Scan(const std::function<void(const PartitionEntry&)>& visit) const {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return Status::IOError("cannot reopen spill file: " + path_);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    size_t offset = 0;
    PartitionEntry entry;
    while (offset < data.size()) {
      if (!DeserializeEntry(data, &offset, &entry)) {
        return Status::IOError("corrupt spill entry in " + path_);
      }
      visit(entry);
    }
    return Status::OK();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  bool owns_file_ = true;
};

/// RAII deletion for temp files created through other APIs (the
/// RecordStore backing file): removed on scope exit unless kept.
class TempFileGuard {
 public:
  explicit TempFileGuard(std::string path) : path_(std::move(path)) {}
  TempFileGuard(const TempFileGuard&) = delete;
  TempFileGuard& operator=(const TempFileGuard&) = delete;
  ~TempFileGuard() {
    if (armed_) std::remove(path_.c_str());
  }
  void Keep() { armed_ = false; }

 private:
  std::string path_;
  bool armed_ = true;
};

std::string UniqueTempPath(const std::string& dir, const std::string& stem) {
  // The pid keeps concurrent processes sharing a temp_dir (e.g. test
  // binaries under `ctest -j`) from clobbering each other's spill files.
  static std::atomic<uint64_t> counter{0};
  uint64_t n = counter.fetch_add(1);
  return dir + "/" + stem + "." + std::to_string(::getpid()) + "." +
         std::to_string(n) + ".tmp";
}

}  // namespace

Result<JoinStats> ClusterMemJoin(const RecordSet& records,
                                 const Predicate& pred,
                                 const ClusterMemOptions& options,
                                 const PairSink& sink) {
  if (options.memory_budget_postings == 0) {
    return Status::InvalidArgument(
        "ClusterMem requires memory_budget_postings > 0");
  }
  JoinStats stats;
  const uint64_t n = records.size();
  const uint64_t total_postings =
      std::max<uint64_t>(1, records.total_token_occurrences());
  const uint64_t budget = options.memory_budget_postings;

  // Section 4.1's estimates: Ng = N * M / W clusters, NR records per
  // cluster sized so that Ng clusters can absorb all N records (2x slack).
  ClusterSetOptions cluster_options = options.cluster;
  // Limited memory forces every record into some cluster, so the home
  // search must consider clusters below the join threshold (Section 4.1.1).
  cluster_options.low_floor_home_search = true;
  if (cluster_options.max_clusters == 0) {
    uint64_t ng = n * budget / total_postings;
    cluster_options.max_clusters = static_cast<uint32_t>(
        std::clamp<uint64_t>(ng, 1, std::max<uint64_t>(n, 1)));
  }
  if (cluster_options.max_cluster_size == 0 && n > 0) {
    uint64_t per_cluster =
        (n + cluster_options.max_clusters - 1) / cluster_options.max_clusters;
    cluster_options.max_cluster_size =
        static_cast<uint32_t>(std::max<uint64_t>(2 * per_cluster, 2));
  }
  cluster_options.max_index_postings = budget;

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  // The record store stands in for "the database" phase 2 re-fetches from.
  std::string store_path = UniqueTempPath(options.temp_dir, "ssjoin_records");
  TempFileGuard store_guard(store_path);
  Result<RecordStore> store_result = RecordStore::Create(store_path, records);
  if (!store_result.ok()) return store_result.status();
  const RecordStore& store = store_result.value();

  // ---- Phase 1: data partitioning -------------------------------------
  ClusterSet cluster_set(pred, cluster_options);
  SpillFile pinfo(UniqueTempPath(options.temp_dir, "ssjoin_pinfo"));
  SSJOIN_RETURN_IF_ERROR(pinfo.OpenForWrite());
  for (uint64_t pos = 0; pos < n; ++pos) {
    RecordId id = order[pos];
    ClusterSet::ProbeResult probe =
        cluster_set.ProbeAndAssign(records.record(id), &stats.merge);
    PartitionEntry entry;
    entry.rid = id;
    entry.home = probe.home;
    entry.joins = std::move(probe.joins);
    pinfo.Append(entry);
  }
  SSJOIN_RETURN_IF_ERROR(pinfo.CloseWrite());
  stats.index_postings = cluster_set.index_postings();

  // ---- Phase 2: finer-grained joins ------------------------------------
  // Pack clusters into batches whose member-level indexes fit in M.
  const size_t num_clusters = cluster_set.num_clusters();
  std::vector<uint32_t> batch_of(num_clusters, 0);
  uint32_t num_batches = num_clusters > 0 ? 1 : 0;
  {
    uint64_t batch_postings = 0;
    for (ClusterId c = 0; c < num_clusters; ++c) {
      uint64_t need = cluster_set.cluster_member_postings(c);
      if (batch_postings > 0 && batch_postings + need > budget) {
        ++num_batches;  // start a new batch (a lone oversized cluster
                        // still gets a batch of its own)
        batch_postings = 0;
      }
      batch_of[c] = num_batches - 1;
      batch_postings += need;
    }
  }

  // Split pInfo into per-batch spill files (each entry lands in every
  // batch it touches, with its join list restricted to that batch).
  std::vector<SpillFile> batch_files;
  batch_files.reserve(num_batches);
  for (uint32_t b = 0; b < num_batches; ++b) {
    batch_files.emplace_back(
        UniqueTempPath(options.temp_dir, "ssjoin_batch"));
    SSJOIN_RETURN_IF_ERROR(batch_files.back().OpenForWrite());
  }
  Status split_status = pinfo.Scan([&](const PartitionEntry& entry) {
    // Destination batches, ascending and unique.
    std::vector<uint32_t> destinations;
    for (ClusterId c : entry.joins) destinations.push_back(batch_of[c]);
    if (entry.home != kNoCluster) destinations.push_back(batch_of[entry.home]);
    std::sort(destinations.begin(), destinations.end());
    destinations.erase(
        std::unique(destinations.begin(), destinations.end()),
        destinations.end());
    for (uint32_t b : destinations) {
      PartitionEntry sub;
      sub.rid = entry.rid;
      sub.home = (entry.home != kNoCluster && batch_of[entry.home] == b)
                     ? entry.home
                     : kNoCluster;
      for (ClusterId c : entry.joins) {
        if (batch_of[c] == b) sub.joins.push_back(c);
      }
      batch_files[b].Append(sub);
    }
  });
  SSJOIN_RETURN_IF_ERROR(split_status);
  for (SpillFile& f : batch_files) SSJOIN_RETURN_IF_ERROR(f.CloseWrite());

  // Process each batch: build member indexes in arrival order while
  // probing, exactly like the online Probe-Cluster inner loop.
  uint64_t peak_batch_postings = 0;
  for (uint32_t b = 0; b < num_batches; ++b) {
    std::unordered_map<ClusterId, std::vector<RecordId>> members;
    std::unordered_map<ClusterId, DynamicIndex> member_index;
    Record fetched;
    std::string text;
    Status status = Status::OK();
    uint64_t batch_postings = 0;
    Status scan_status = batch_files[b].Scan([&](const PartitionEntry& e) {
      if (!status.ok()) return;
      Status fetch = store.Fetch(e.rid, &fetched, &text);
      if (!fetch.ok()) {
        status = fetch;
        return;
      }
      for (ClusterId c : e.joins) {
        auto it = member_index.find(c);
        if (it == member_index.end()) continue;  // no members yet
        ProbeMemberIndex(records, pred, fetched.view(), e.rid, members[c],
                         it->second, options.apply_filter, &stats, sink);
      }
      if (e.home != kNoCluster) {
        DynamicIndex& index = member_index[e.home];
        std::vector<RecordId>& member_list = members[e.home];
        index.Insert(static_cast<RecordId>(member_list.size()),
                     fetched.view());
        member_list.push_back(e.rid);
        batch_postings += fetched.size();
      }
    });
    SSJOIN_RETURN_IF_ERROR(scan_status);
    SSJOIN_RETURN_IF_ERROR(status);
    peak_batch_postings = std::max(peak_batch_postings, batch_postings);
  }
  stats.index_postings = std::max(stats.index_postings, peak_batch_postings);

  if (options.keep_temp_files) {
    pinfo.Keep();
    for (SpillFile& f : batch_files) f.Keep();
    store_guard.Keep();
  }
  return stats;
}

}  // namespace ssjoin
