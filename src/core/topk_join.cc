#include "core/topk_join.h"

#include <algorithm>
#include <queue>

#include "core/cosine_predicate.h"
#include "core/merge_opt.h"
#include "core/overlap_predicate.h"
#include "index/inverted_index.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

namespace {

/// Per-metric plumbing: how records are prepared, how a pair's score is
/// derived from its exact overlap, and the smallest overlap a pair with
/// the given norms needs to reach a target score (monotone in both norms,
/// like the Section 5 threshold functions).
struct MetricPlan {
  void (*prepare)(RecordSet*);
  double (*score)(double overlap, double norm_a, double norm_b);
  double (*required_overlap)(double target, double norm_a, double norm_b);
};

void PrepareUnit(RecordSet* records) {
  for (RecordId id = 0; id < records->size(); ++id) {
    size_t size = records->record_size(id);
    for (size_t i = 0; i < size; ++i) records->set_score(id, i, 1.0);
    records->set_norm(id, static_cast<double>(size));
  }
}

void PrepareCosine(RecordSet* records) {
  CosinePredicate(/*fraction=*/1.0).Prepare(records);
}

MetricPlan PlanFor(TopKMetric metric) {
  switch (metric) {
    case TopKMetric::kOverlap:
      return {PrepareUnit,
              [](double o, double, double) { return o; },
              [](double t, double, double) { return t; }};
    case TopKMetric::kJaccard:
      return {PrepareUnit,
              [](double o, double na, double nb) {
                double u = na + nb - o;
                return u > 0 ? o / u : 0.0;
              },
              [](double t, double na, double nb) {
                return t / (1.0 + t) * (na + nb);
              }};
    case TopKMetric::kCosine:
      return {PrepareCosine,
              [](double o, double, double) { return o; },
              [](double t, double, double) { return t; }};
    case TopKMetric::kDice:
      return {PrepareUnit,
              [](double o, double na, double nb) {
                double d = na + nb;
                return d > 0 ? 2.0 * o / d : 0.0;
              },
              [](double t, double na, double nb) {
                return t / 2.0 * (na + nb);
              }};
  }
  return {PrepareUnit, nullptr, nullptr};
}

struct HeapOrder {
  bool operator()(const TopKMatch& x, const TopKMatch& y) const {
    if (x.score != y.score) return x.score > y.score;  // min-heap on score
    return PairKey(x.a, x.b) < PairKey(y.a, y.b);
  }
};

}  // namespace

const char* TopKMetricName(TopKMetric metric) {
  switch (metric) {
    case TopKMetric::kOverlap:
      return "overlap";
    case TopKMetric::kJaccard:
      return "jaccard";
    case TopKMetric::kCosine:
      return "cosine";
    case TopKMetric::kDice:
      return "dice";
  }
  return "unknown";
}

Result<std::vector<TopKMatch>> TopKJoin(RecordSet* records,
                                        TopKMetric metric, size_t k,
                                        JoinStats* stats_out) {
  MetricPlan plan = PlanFor(metric);
  plan.prepare(records);
  JoinStats stats;

  std::vector<TopKMatch> heap;  // min-heap (HeapOrder) of the best k
  auto bound = [&heap, k]() {
    // Smallest score that could still improve the result. While the heap
    // is not full any positive-similarity pair qualifies.
    return heap.size() < k ? 0.0 : heap.front().score;
  };

  std::vector<RecordId> order = records->IdsByDecreasingNorm();
  InvertedIndex index;  // keyed by processing position
  index.PlanFromRecords(*records);
  std::vector<PostingListView> lists;
  std::vector<double> probe_scores;
  ListMerger merger;

  if (k > 0) {
    for (uint32_t pos = 0; pos < order.size(); ++pos) {
      RecordId id = order[pos];
      const RecordView probe = records->record(id);
      if (index.num_entities() > 0 && !probe.empty()) {
        // The merge floor ratchets with the k-th best score; per-candidate
        // bounds sharpen it with the candidate's own norm.
        auto required_fn = [&](RecordId m) {
          return plan.required_overlap(
              bound(), probe.norm(), records->record(order[m]).norm());
        };
        FunctionRef<double(RecordId)> required = required_fn;
        double floor =
            plan.required_overlap(bound(), probe.norm(), index.min_norm());
        CollectProbeLists(index, probe, &lists, &probe_scores);
        merger.Reset(lists, probe_scores, std::max(floor, 0.0), required,
                     nullptr, {}, &stats.merge);
        MergeCandidate candidate;
        while (merger.Next(&candidate)) {
          RecordId other = order[candidate.id];
          ++stats.candidates_verified;
          const RecordView rec_other = records->record(other);
          // Canonical overlap recomputation keeps scores bit-identical to
          // the brute-force reference.
          double overlap = probe.OverlapWith(rec_other);
          double score =
              plan.score(overlap, probe.norm(), rec_other.norm());
          if (score <= 0) continue;
          TopKMatch match{std::min(id, other), std::max(id, other), score};
          if (heap.size() < k) {
            heap.push_back(match);
            std::push_heap(heap.begin(), heap.end(), HeapOrder());
          } else if (HeapOrder()(match, heap.front())) {
            // match ranks above the current k-th best
            std::pop_heap(heap.begin(), heap.end(), HeapOrder());
            heap.back() = match;
            std::push_heap(heap.begin(), heap.end(), HeapOrder());
            merger.RaiseFloor(plan.required_overlap(
                bound(), probe.norm(), index.min_norm()));
          }
        }
      }
      index.Insert(pos, probe);
    }
  }

  std::sort(heap.begin(), heap.end(), [](const TopKMatch& x,
                                         const TopKMatch& y) {
    if (x.score != y.score) return x.score > y.score;
    return PairKey(x.a, x.b) < PairKey(y.a, y.b);
  });
  stats.pairs = heap.size();
  stats.index_postings = index.total_postings();
  if (stats_out != nullptr) *stats_out = stats;
  return heap;
}

}  // namespace ssjoin
