#ifndef SSJOIN_CORE_PROBE_CLUSTER_H_
#define SSJOIN_CORE_PROBE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "data/record_view.h"
#include "index/dynamic_index.h"
#include "util/status.h"

namespace ssjoin {

/// Dense cluster identifier (creation order).
using ClusterId = uint32_t;

constexpr ClusterId kNoCluster = UINT32_MAX;

/// Knobs shared by Probe-Cluster (Section 3.4) and ClusterMem phase 1
/// (Section 4.1).
struct ClusterSetOptions {
  /// Whether the home-cluster search may consider clusters below the join
  /// threshold. Section 3.4's full-memory Probe-Cluster assigns a record
  /// only to a cluster from its T-overlap set J(r) (or a new one), so the
  /// probe runs at full MergeOpt strength. ClusterMem (Section 4.1.1)
  /// must assign every record somewhere even without T overlap, so it
  /// starts the merge at a low floor and raises it as candidates appear.
  bool low_floor_home_search = false;

  /// The Section 4.1.1 search starts at this fraction of T(r, I) and is
  /// raised toward it as similar clusters are found. Only used when
  /// low_floor_home_search is true.
  double initial_floor_fraction = 0.2;

  /// A record joins its most similar cluster only when the ratio
  /// similarity overlap/union reaches this; otherwise a new cluster is
  /// created (when allowed).
  double assign_similarity_threshold = 0.3;

  /// NR: maximum records per cluster (0 = unlimited).
  uint32_t max_cluster_size = 0;

  /// Ng: maximum number of clusters (0 = unlimited).
  uint32_t max_clusters = 0;

  /// Hard cap on cluster-level index postings — the M of Section 4
  /// (0 = unlimited). When reached, no new clusters are created.
  uint64_t max_index_postings = 0;
};

/// Online clustering over a stream of records: maintains the cluster-level
/// inverted index (one posting per cluster per token, score(w, C) = max
/// over members, ||C|| = min member norm) and, per record, finds
///
///   * J(r): every cluster whose word-union overlap with r reaches
///     T(r, ||C||) — a superset of the clusters holding true matches;
///   * h(r): the most similar cluster (ratio of overlap to union weight),
///     located with the increasing-threshold MergeOpt adaptation of
///     Section 4.1.1, or a freshly created cluster.
///
/// The cluster-level index is a DynamicIndex: cluster membership is not
/// known up front and an old cluster acquires new tokens whenever a member
/// brings them, so flat CSR extents cannot be pre-carved.
///
/// The caller owns whatever per-cluster structures it needs (member
/// indexes for Probe-Cluster, partition bookkeeping for ClusterMem).
class ClusterSet {
 public:
  struct ProbeResult {
    std::vector<ClusterId> joins;  // J(r), ascending cluster id
    ClusterId home = kNoCluster;
    bool created = false;  // home is a brand-new cluster
  };

  ClusterSet(const Predicate& pred, ClusterSetOptions options);

  ClusterSet(const ClusterSet&) = delete;
  ClusterSet& operator=(const ClusterSet&) = delete;

  /// Probes the current clusters with `record`, then assigns it to a home
  /// cluster (updating the summaries and the cluster-level index).
  ProbeResult ProbeAndAssign(RecordView record, MergeStats* stats);

  size_t num_clusters() const { return clusters_.size(); }
  uint32_t cluster_size(ClusterId c) const { return clusters_[c].size; }
  double cluster_norm(ClusterId c) const { return clusters_[c].norm; }
  /// Total postings the member-level index of cluster `c` would need
  /// (sum of member record sizes) — ClusterMem's batching unit.
  uint64_t cluster_member_postings(ClusterId c) const {
    return clusters_[c].member_postings;
  }
  uint64_t index_postings() const { return index_.total_postings(); }

 private:
  struct Cluster {
    Record summary;        // token union with max scores (Section 5.1.3)
    double norm = 0;       // ||C|| = min member norm
    double total_weight = 0;  // sum of summary score^2 (union weight)
    uint32_t size = 0;     // member count
    uint64_t member_postings = 0;
  };

  ClusterId CreateCluster(RecordView record);
  void AddToCluster(ClusterId c, RecordView record);

  const Predicate& pred_;
  ClusterSetOptions options_;
  DynamicIndex index_;  // cluster-level
  std::vector<Cluster> clusters_;
};

/// Probe-Cluster (Section 3.4): the fully-optimized in-memory algorithm —
/// online build+probe, optional pre-sort, MergeOpt everywhere, and
/// cluster-level indirection so highly overlapping records share index
/// postings.
struct ProbeClusterOptions {
  bool presort = true;
  bool apply_filter = true;
  ClusterSetOptions cluster;
};

/// Runs Probe-Cluster. `records` must already be Prepare()d by `pred`.
Result<JoinStats> ProbeClusterJoin(const RecordSet& records,
                                   const Predicate& pred,
                                   const ProbeClusterOptions& options,
                                   const PairSink& sink);

/// Probes one cluster's member-level index with `record` (RecordId
/// `record_id`), verifies candidates against the predicate, and emits
/// matching pairs. `members` maps the index's local ids back to RecordIds.
/// Shared by Probe-Cluster and ClusterMem's second phase.
void ProbeMemberIndex(const RecordSet& records, const Predicate& pred,
                      RecordView record, RecordId record_id,
                      const std::vector<RecordId>& members,
                      const DynamicIndex& index, bool apply_filter,
                      JoinStats* stats, const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PROBE_CLUSTER_H_
