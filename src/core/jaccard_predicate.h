#ifndef SSJOIN_CORE_JACCARD_PREDICATE_H_
#define SSJOIN_CORE_JACCARD_PREDICATE_H_

#include <string>
#include <vector>

#include "core/predicate.h"

namespace ssjoin {

/// The Jaccard-coefficient join of Section 5.2.1: match iff
/// |r ∩ s| / |r ∪ s| >= f. Rewritten as an overlap threshold,
///
///   |r ∩ s| >= f / (1 + f) * (|r| + |s|) = T(r, s),
///
/// which is non-decreasing in both set sizes, so the norm is the set
/// size. The additional filter is the size-ratio condition
/// min(|r|/|s|, |s|/|r|) >= f.
///
/// The weighted extension (paper: "intersection and union on the weighted
/// words") replaces set sizes by total token weight; pass per-token
/// weights to enable it.
class JaccardPredicate : public Predicate {
 public:
  /// Requires 0 < fraction <= 1.
  explicit JaccardPredicate(double fraction);
  JaccardPredicate(double fraction, std::vector<double> token_weights);

  std::string name() const override;
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  bool NormFilter(double norm_r, double norm_s) const override;
  bool has_norm_filter() const override { return true; }
  /// A partner has norm >= f * norm_r (size-ratio filter), so the
  /// threshold is at least f/(1+f) (norm_r + f norm_r) = f * norm_r.
  double MinMatchOverlap(double norm_r) const override {
    return fraction_ * norm_r;
  }
  bool supports_bitmap_pruning() const override { return true; }

  double fraction() const { return fraction_; }
  bool weighted() const { return !token_weights_.empty(); }

 private:
  double TokenWeight(TokenId t) const;

  double fraction_;
  std::vector<double> token_weights_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_JACCARD_PREDICATE_H_
