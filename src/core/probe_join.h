#ifndef SSJOIN_CORE_PROBE_JOIN_H_
#define SSJOIN_CORE_PROBE_JOIN_H_

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Configuration of the Probe-Count family. The paper's named variants
/// are presets over these flags:
///
///   Probe-Count          {optimized_merge=false, online=false, ...}
///   Probe-stopWords      {optimized_merge=false, stopwords=true}
///   Probe-optMerge       {optimized_merge=true,  online=false}
///   ProbeCount-online    {optimized_merge=true,  online=true}
///   ProbeCount-sort      {optimized_merge=true,  online=true, presort=true}
struct ProbeJoinOptions {
  /// Threshold-sensitive MergeOpt (Section 3.1) vs. plain heap merge
  /// over all lists (Section 2.1).
  bool optimized_merge = true;

  /// Single-pass build-and-probe (Section 3.2): each record probes the
  /// partial index of earlier records, then inserts itself. When false,
  /// the full index is built first and every record probes it.
  bool online = true;

  /// Process records in decreasing norm order (Section 3.3 / 5.1.2).
  bool presort = false;

  /// Probe-stopWords (Section 3.1): the most frequent tokens whose total
  /// potential contribution stays below the (constant) threshold are
  /// dropped from the index, and each probe's threshold is reduced by the
  /// potential its own stopwords carried. Requires a predicate with
  /// ConstantThreshold(). Candidates are verified on the full records, so
  /// the join stays exact.
  bool stopwords = false;

  /// Apply the predicate's norm filter while merging.
  bool apply_filter = true;

  /// Arm the token-bitmap candidate prefilter (data/token_bitmap.h) for
  /// predicates that opt in via supports_bitmap_pruning(). Answers are
  /// byte-identical either way; the filter only skips merge/verify work.
  /// Off by default so the serial join remains the instrumentation
  /// baseline the parallel driver's stats are compared against.
  bool bitmap_filter = false;
};

/// Runs the configured Probe-Count variant. `records` must already be
/// Prepare()d by `pred` (the RunJoin driver does this). Emits each
/// matching pair exactly once with the smaller id first.
Result<JoinStats> ProbeJoin(const RecordSet& records, const Predicate& pred,
                            const ProbeJoinOptions& options,
                            const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PROBE_JOIN_H_
