#ifndef SSJOIN_CORE_TOPK_JOIN_H_
#define SSJOIN_CORE_TOPK_JOIN_H_

#include <cstddef>
#include <vector>

#include "core/join_common.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Similarity measure ranked by the top-k join.
enum class TopKMetric {
  kOverlap,  // |r ∩ s| (unweighted intersect size)
  kJaccard,  // |r ∩ s| / |r ∪ s|
  kCosine,   // TF-IDF cosine
  kDice,     // 2 |r ∩ s| / (|r| + |s|)
};

struct TopKMatch {
  RecordId a;  // a < b
  RecordId b;
  double score;
};

/// Top-k similarity self-join: returns the k most similar record pairs
/// under `metric`, sorted by decreasing score (ties broken by pair id).
///
/// This is the paper's related-work direction [9] (Cohen's top-r joins)
/// realized on the Probe Cluster machinery: an online probe whose
/// threshold is not fixed but *ratchets up* as better pairs are found —
/// exactly the dynamic-floor capability MergeOpt grew for the Section
/// 4.1.1 cluster search. Records are processed in decreasing norm order
/// so the k-th best score rises early and prunes hard.
///
/// Only pairs with at least one shared token are rankable (all metrics
/// are zero otherwise); if fewer than k such pairs exist, all of them are
/// returned.
Result<std::vector<TopKMatch>> TopKJoin(RecordSet* records,
                                        TopKMetric metric, size_t k,
                                        JoinStats* stats = nullptr);

/// Display name of a metric ("overlap", "jaccard", ...).
const char* TopKMetricName(TopKMetric metric);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_TOPK_JOIN_H_
