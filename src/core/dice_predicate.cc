#include "core/dice_predicate.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

DicePredicate::DicePredicate(double fraction) : fraction_(fraction) {
  SSJOIN_CHECK(fraction > 0 && fraction <= 1);
}

void DicePredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    size_t size = records->record_size(id);
    for (size_t i = 0; i < size; ++i) records->set_score(id, i, 1.0);
    records->set_norm(id, static_cast<double>(size));
  }
}

double DicePredicate::ThresholdForNorms(double norm_r, double norm_s) const {
  return fraction_ / 2.0 * (norm_r + norm_s);
}

bool DicePredicate::NormFilter(double norm_r, double norm_s) const {
  // Best case: the smaller set is contained in the larger, giving
  // Dice = 2 min / (min + max) >= f  <=>  min/max >= f / (2 - f).
  double lo = std::min(norm_r, norm_s);
  double hi = std::max(norm_r, norm_s);
  return lo >= fraction_ / (2.0 - fraction_) * hi;
}

}  // namespace ssjoin
