#ifndef SSJOIN_CORE_JOIN_H_
#define SSJOIN_CORE_JOIN_H_

#include <string>
#include <utility>
#include <vector>

#include "core/band_partition.h"
#include "core/cluster_mem.h"
#include "core/join_common.h"
#include "core/pair_count.h"
#include "core/predicate.h"
#include "core/prefix_filter_join.h"
#include "core/probe_cluster.h"
#include "core/probe_join.h"
#include "core/word_groups.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Every algorithm evaluated in the paper, named as in the figures.
enum class JoinAlgorithm {
  kBruteForce,            // reference nested-loop join (testing)
  kProbeCount,            // Section 2.1
  kProbeStopwords,        // Section 3.1 (Probe-stopWords)
  kProbeOptMerge,         // Section 3.1 (Probe-optMerge)
  kProbeOnline,           // Section 3.2 (ProbeCount-online)
  kProbeSort,             // Section 3.3 (ProbeCount-sort)
  kProbeCluster,          // Section 3.4 (the final Probe Cluster)
  kPairCount,             // Section 2.2
  kPairCountOptMerge,     // Section 3.1 (threshold-optimized Pair-Count)
  kWordGroups,            // Section 2.3
  kWordGroupsOptMerge,    // Section 3.1 (threshold-optimized Word-Groups)
  kClusterMem,            // Section 4 (limited-memory)
  kPrefixFilter,          // extension: AllPairs-style prefix filtering
};

/// Paper-style display name, e.g. "ProbeCount-optMerge".
const char* JoinAlgorithmName(JoinAlgorithm algorithm);

/// Union of per-algorithm knobs; the driver picks the relevant block.
struct JoinOptions {
  ProbeJoinOptions probe;          // flags overridden per algorithm preset
  ProbeClusterOptions cluster;
  ClusterMemOptions cluster_mem;
  PairCountOptions pair_count;
  WordGroupsOptions word_groups;
  PrefixFilterJoinOptions prefix_filter;

  /// Worker threads for the index-probe algorithms (the Probe-Count
  /// family and PrefixFilter): the read-only index is built once and
  /// record probes fan out across this many workers, with output merged
  /// deterministically (sorted pairs, partition-summed stats) so results
  /// are identical to the serial path at any thread count. <= 1 keeps
  /// the serial path. Algorithms whose probe loop mutates shared state
  /// (Probe-Cluster, ClusterMem, Pair-Count, Word-Groups) ignore this
  /// and run sequentially; see DESIGN.md "Threading model".
  int num_threads = 1;
};

/// Runs `algorithm` over `records` under `pred`:
///   1. pred.Prepare(records) installs scores and norms;
///   2. the algorithm emits each matching pair once (smaller id first);
///   3. when the predicate declares a short-record bound (edit distance),
///      the degenerate short-short pairs are joined brute-force and
///      deduplicated against the main output.
Result<JoinStats> RunJoin(RecordSet* records, const Predicate& pred,
                          JoinAlgorithm algorithm, const JoinOptions& options,
                          const PairSink& sink);

/// Convenience wrapper collecting the output, sorted ascending.
Result<std::vector<std::pair<RecordId, RecordId>>> JoinToPairs(
    RecordSet* records, const Predicate& pred, JoinAlgorithm algorithm,
    const JoinOptions& options = {});

/// Reference O(n^2) join via Predicate::Matches. `records` must already be
/// Prepare()d.
JoinStats BruteForceJoin(const RecordSet& records, const Predicate& pred,
                         const PairSink& sink);

/// Section 5.3 alternative to inline filter evaluation: band-partition the
/// records on their norm with range `k`, run the Probe-Cluster join inside
/// every partition, and deduplicate the output. Exact for predicates whose
/// filter is |norm_r - norm_s| <= k (edit distance with k = max edits).
/// With num_threads > 1 the partitions run concurrently (each partition's
/// join stays sequential inside); per-partition pair buffers are replayed
/// in partition order through the shared dedup, so output and stats are
/// byte-identical to the serial run.
Result<JoinStats> BandPartitionedJoin(RecordSet* records,
                                      const Predicate& pred, double k,
                                      BandStrategy strategy,
                                      const PairSink& sink,
                                      int num_threads = 1);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_JOIN_H_
