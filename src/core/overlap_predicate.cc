#include "core/overlap_predicate.h"

#include "util/logging.h"

namespace ssjoin {

OverlapPredicate::OverlapPredicate(double threshold)
    : threshold_(threshold) {
  SSJOIN_CHECK(threshold > 0);
}

OverlapPredicate::OverlapPredicate(double threshold,
                                   std::vector<double> token_weights)
    : threshold_(threshold), token_weights_(std::move(token_weights)) {
  SSJOIN_CHECK(threshold > 0);
  for (double w : token_weights_) SSJOIN_CHECK(w > 0);
}

std::string OverlapPredicate::name() const {
  return weighted() ? "weighted-overlap" : "overlap";
}

void OverlapPredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    const RecordView r = records->record(id);
    double norm = 0;
    for (size_t i = 0; i < r.size(); ++i) {
      double weight = StaticTokenWeight(r.token(i));
      records->set_score(id, i, std::sqrt(weight));
      norm += weight;
    }
    records->set_norm(id, norm);
  }
}

double OverlapPredicate::ThresholdForNorms(double /*norm_r*/,
                                           double /*norm_s*/) const {
  return threshold_;
}

double OverlapPredicate::StaticTokenWeight(TokenId t) const {
  return t < token_weights_.size() ? token_weights_[t] : 1.0;
}

}  // namespace ssjoin
