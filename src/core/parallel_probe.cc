#include "core/parallel_probe.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/merge_opt.h"
#include "core/probe_common.h"
#include "index/inverted_index.h"
#include "util/function_ref.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ssjoin {

namespace {

using probe_internal::BuildStopwordPlan;
using probe_internal::ProbeOne;
using probe_internal::ProbeScratch;
using probe_internal::ReducedThreshold;
using probe_internal::StopwordPlan;

/// Positions per work chunk: small enough to balance skewed probe costs,
/// large enough to amortize the chunk-claim atomic.
size_t ChunkSize(size_t n, int threads) {
  size_t chunk = n / (8 * static_cast<size_t>(std::max(1, threads)));
  return std::clamp<size_t>(chunk, 1, 256);
}

}  // namespace

JoinStats ParallelProbeDriver::Run(size_t n, int num_threads,
                                   const ProbeFn& probe,
                                   const PairSink& sink) {
  int requested = std::max(1, num_threads);
  ThreadPool pool(requested);
  const int threads = pool.num_threads();

  std::vector<JoinStats> worker_stats(threads);
  std::vector<std::vector<std::pair<RecordId, RecordId>>> worker_pairs(
      threads);

  pool.ParallelFor(
      n, ChunkSize(n, threads), [&](size_t begin, size_t end, int worker) {
        JoinStats* stats = &worker_stats[worker];
        std::vector<std::pair<RecordId, RecordId>>& buffer =
            worker_pairs[worker];
        PairSink emit = [&buffer](RecordId a, RecordId b) {
          buffer.emplace_back(a, b);
        };
        for (size_t pos = begin; pos < end; ++pos) {
          probe(static_cast<uint32_t>(pos), worker, stats, emit);
        }
      });

  // Deterministic reduction: stats counters are sums over a fixed set of
  // per-position contributions, so worker order does not matter; pairs
  // are globally sorted before emission, erasing scheduling order.
  JoinStats stats;
  size_t total_pairs = 0;
  for (int w = 0; w < threads; ++w) {
    stats.MergePartition(worker_stats[w]);
    total_pairs += worker_pairs[w].size();
  }
  std::vector<std::pair<RecordId, RecordId>> merged;
  merged.reserve(total_pairs);
  for (int w = 0; w < threads; ++w) {
    merged.insert(merged.end(), worker_pairs[w].begin(),
                  worker_pairs[w].end());
  }
  std::sort(merged.begin(), merged.end());
  for (const auto& [a, b] : merged) sink(a, b);
  return stats;
}

Result<JoinStats> ParallelProbeJoin(const RecordSet& records,
                                    const Predicate& pred,
                                    const ProbeJoinOptions& options,
                                    int num_threads, const PairSink& sink) {
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  StopwordPlan stop_plan;
  if (options.stopwords) {
    std::optional<double> constant = pred.ConstantThreshold();
    if (!constant.has_value()) {
      return Status::InvalidArgument(
          "Probe-stopWords requires a constant-threshold predicate; '" +
          pred.name() + "' has a pair-dependent threshold");
    }
    stop_plan = BuildStopwordPlan(records, *constant);
  }
  const std::vector<bool>* skip =
      options.stopwords ? &stop_plan.is_stop : nullptr;

  // Freeze the full index before any probing; from here on every worker
  // only reads it (InvertedIndex::list, PostingListView searches and
  // CollectProbeLists are const and touch no shared mutable state).
  InvertedIndex index;
  index.PlanFromRecords(records);
  for (uint32_t pos = 0; pos < n; ++pos) {
    index.Insert(pos, records.record(order[pos]), skip);
  }

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  // Per-worker probe scratch, allocated once: no per-record heap
  // allocations inside the probe loop.
  int requested = std::max(1, num_threads);
  std::vector<ProbeScratch> scratch(requested);

  auto probe_one = [&](uint32_t pos, int worker, JoinStats* stats,
                       const PairSink& emit) {
    RecordId probe_id = order[pos];
    const RecordView probe = records.record(probe_id);

    auto verify_and_emit = [&](RecordId a, RecordId b) {
      ++stats->candidates_verified;
      if (pred.Matches(records, a, b)) {
        ++stats->pairs;
        emit(std::min(a, b), std::max(a, b));
      }
    };

    double floor;
    auto required_fn = [&](RecordId m) {
      return pred.ThresholdForNorms(probe.norm(),
                                    records.record(order[m]).norm());
    };
    FunctionRef<double(RecordId)> required;
    if (options.stopwords) {
      double reduced = ReducedThreshold(probe, stop_plan);
      if (reduced <= 0) {
        // Degenerate probe: its own stopwords could carry the whole
        // threshold, so every earlier record is a candidate.
        for (uint32_t m = 0; m < pos; ++m) {
          verify_and_emit(order[m], probe_id);
        }
        return;
      }
      floor = reduced;
    } else {
      floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
      required = required_fn;
    }
    auto filter_fn = [&](RecordId m) {
      return pred.NormFilter(probe.norm(), records.record(order[m]).norm());
    };
    FunctionRef<bool(RecordId)> filter;
    if (options.apply_filter && pred.has_norm_filter()) {
      filter = filter_fn;
    }
    ProbeOne(index, probe, floor, required, filter, merge_options,
             &stats->merge, &scratch[worker],
             [&](const MergeCandidate& candidate) {
               // Every record is indexed: skip self matches and emit each
               // unordered pair from its later endpoint only.
               if (candidate.id >= pos) return;
               verify_and_emit(order[candidate.id], probe_id);
             });
  };

  JoinStats stats =
      ParallelProbeDriver::Run(n, num_threads, probe_one, sink);
  stats.index_postings = index.total_postings();
  return stats;
}

Result<JoinStats> ParallelPrefixFilterJoin(
    const RecordSet& records, const Predicate& pred,
    const PrefixFilterJoinOptions& options, int num_threads,
    const PairSink& sink) {
  if (pred.MinMatchOverlap(1e18) <= 0) {
    return Status::InvalidArgument(
        "prefix filtering needs a positive MinMatchOverlap bound; '" +
        pred.name() + "' does not provide one");
  }
  const size_t n = records.size();

  // Global token order: increasing document frequency, rare tokens first
  // (identical to the serial PrefixFilterJoin).
  std::vector<uint32_t> rank(records.vocabulary_size());
  {
    std::vector<TokenId> by_df(records.vocabulary_size());
    std::iota(by_df.begin(), by_df.end(), 0);
    std::stable_sort(by_df.begin(), by_df.end(),
                     [&records](TokenId a, TokenId b) {
                       return records.doc_frequency(a) <
                              records.doc_frequency(b);
                     });
    for (uint32_t i = 0; i < by_df.size(); ++i) rank[by_df[i]] = i;
  }

  // Per-token corpus score maxima, from the RecordSet's cached TokenStats
  // (no corpus rescan per join call).
  const std::vector<double>& gmax = records.token_stats().max_token_scores;

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  // Freeze the whole prefix index up front, keyed by processing position
  // (lists stay position-sorted because positions are inserted in order).
  // A probe at position p then considers list entries < p — exactly the
  // records that were already indexed when the serial form probed p.
  std::unordered_map<TokenId, std::vector<uint32_t>> prefix_index;
  uint64_t prefix_postings = 0;
  {
    std::vector<std::pair<uint32_t, size_t>> ordered;  // (rank, token pos)
    for (uint32_t pos = 0; pos < n; ++pos) {
      const RecordView r = records.record(order[pos]);
      double alpha = pred.MinMatchOverlap(r.norm());
      ordered.clear();
      for (size_t i = 0; i < r.size(); ++i) {
        ordered.emplace_back(rank[r.token(i)], i);
      }
      std::sort(ordered.begin(), ordered.end());
      size_t prefix_len = ordered.size();
      if (alpha > 0) {
        double suffix_potential = 0;
        while (prefix_len > 0) {
          size_t token_pos = ordered[prefix_len - 1].second;
          double contribution =
              r.score(token_pos) * gmax[r.token(token_pos)];
          if (suffix_potential + contribution >= PruneBound(alpha)) break;
          suffix_potential += contribution;
          --prefix_len;
        }
      }
      for (size_t i = 0; i < prefix_len; ++i) {
        prefix_index[r.token(ordered[i].second)].push_back(pos);
        ++prefix_postings;
      }
    }
  }

  struct Scratch {
    std::vector<uint32_t> candidates;  // candidate positions, probe-local
    std::vector<uint32_t> last_seen;   // per-position dedup stamp
  };
  int requested = std::max(1, num_threads);
  std::vector<Scratch> scratch(requested);
  for (Scratch& s : scratch) s.last_seen.assign(n, UINT32_MAX);

  auto probe_one = [&](uint32_t pos, int worker, JoinStats* stats,
                       const PairSink& emit) {
    RecordId id = order[pos];
    const RecordView r = records.record(id);
    Scratch& s = scratch[worker];
    s.candidates.clear();
    for (size_t i = 0; i < r.size(); ++i) {
      auto it = prefix_index.find(r.token(i));
      if (it == prefix_index.end()) continue;
      for (uint32_t other_pos : it->second) {
        if (other_pos >= pos) break;  // positions ascend within a list
        if (s.last_seen[other_pos] == pos) continue;
        s.last_seen[other_pos] = pos;
        if (options.apply_filter && pred.has_norm_filter() &&
            !pred.NormFilter(r.norm(),
                             records.record(order[other_pos]).norm())) {
          continue;
        }
        s.candidates.push_back(other_pos);
      }
    }
    for (uint32_t other_pos : s.candidates) {
      RecordId other = order[other_pos];
      ++stats->candidates_verified;
      if (pred.Matches(records, other, id)) {
        ++stats->pairs;
        emit(std::min(other, id), std::max(other, id));
      }
    }
  };

  JoinStats stats =
      ParallelProbeDriver::Run(n, num_threads, probe_one, sink);
  stats.index_postings = prefix_postings;
  return stats;
}

}  // namespace ssjoin
