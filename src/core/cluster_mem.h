#ifndef SSJOIN_CORE_CLUSTER_MEM_H_
#define SSJOIN_CORE_CLUSTER_MEM_H_

#include <cstdint>
#include <string>

#include "core/join_common.h"
#include "core/predicate.h"
#include "core/probe_cluster.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// ClusterMem (Section 4, Algorithm 2): the limited-memory join.
///
/// Phase 1 scans the data once, maintaining only a *compressed* inverted
/// index — one posting per (token, cluster) instead of per (token,
/// record) — capped at the memory budget M. Each record's join targets
/// J(r) and home cluster h(r) are appended to a partition file (pInfo) on
/// disk.
///
/// Phase 2 packs clusters into batches whose full member-level indexes fit
/// in M, splits pInfo by batch, and streams each batch: records are
/// re-fetched from the record store in scan order, probe the member
/// indexes of their J(r) ∩ batch clusters, and are inserted into their
/// home cluster's index when it belongs to the batch.
struct ClusterMemOptions {
  /// M: the memory budget in postings (word occurrences). Must be > 0.
  /// With M >= W (the full index size) the algorithm degenerates to a
  /// single batch, i.e. Probe-Cluster.
  uint64_t memory_budget_postings = 0;

  /// Directory for the record store, pInfo and per-batch spill files.
  std::string temp_dir = ".";

  /// Keep spill files after the join (debugging).
  bool keep_temp_files = false;

  bool presort = true;
  bool apply_filter = true;

  /// Clustering knobs. max_clusters / max_cluster_size of 0 are estimated
  /// from the data as in Section 4.1: Ng = clamp(N*M/W, 1, N) and
  /// NR = 2*ceil(N/Ng) (the paper's formulas with a 2x occupancy slack —
  /// the exact estimation procedure is elided in the paper "because of
  /// lack of space").
  ClusterSetOptions cluster;
};

/// Runs ClusterMem. `records` must already be Prepare()d by `pred`.
Result<JoinStats> ClusterMemJoin(const RecordSet& records,
                                 const Predicate& pred,
                                 const ClusterMemOptions& options,
                                 const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_CLUSTER_MEM_H_
