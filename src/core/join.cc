#include "core/join.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/parallel_probe.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace ssjoin {

namespace {

/// Joins the records whose norms fall below the predicate's short-record
/// bound by brute force: under the edit-distance q-gram filter such pairs
/// can match while sharing no token, which no inverted-index algorithm can
/// see. `emitted` holds the pairs the main algorithm already produced.
void ShortRecordFallback(const RecordSet& records, const Predicate& pred,
                         const std::unordered_set<uint64_t>& emitted,
                         JoinStats* stats, const PairSink& sink) {
  double bound = pred.ShortRecordNormBound();
  std::vector<RecordId> shorts;
  for (RecordId id = 0; id < records.size(); ++id) {
    if (records.record(id).norm() < bound) shorts.push_back(id);
  }
  for (size_t i = 0; i < shorts.size(); ++i) {
    for (size_t j = i + 1; j < shorts.size(); ++j) {
      RecordId a = shorts[i];
      RecordId b = shorts[j];
      if (emitted.count(PairKey(a, b)) > 0) continue;
      ++stats->candidates_verified;
      if (pred.Matches(records, a, b)) {
        ++stats->pairs;
        sink(std::min(a, b), std::max(a, b));
      }
    }
  }
}

}  // namespace

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBruteForce:
      return "BruteForce";
    case JoinAlgorithm::kProbeCount:
      return "Probe";
    case JoinAlgorithm::kProbeStopwords:
      return "Probe-stopWords";
    case JoinAlgorithm::kProbeOptMerge:
      return "Probe-optMerge";
    case JoinAlgorithm::kProbeOnline:
      return "ProbeCount-online";
    case JoinAlgorithm::kProbeSort:
      return "ProbeCount-sort";
    case JoinAlgorithm::kProbeCluster:
      return "Cluster";
    case JoinAlgorithm::kPairCount:
      return "PairCount";
    case JoinAlgorithm::kPairCountOptMerge:
      return "PairCount-optMerge";
    case JoinAlgorithm::kWordGroups:
      return "Word-Groups";
    case JoinAlgorithm::kWordGroupsOptMerge:
      return "Word-Groups-optMerge";
    case JoinAlgorithm::kClusterMem:
      return "ClusterMem";
    case JoinAlgorithm::kPrefixFilter:
      return "PrefixFilter";
  }
  return "unknown";
}

JoinStats BruteForceJoin(const RecordSet& records, const Predicate& pred,
                         const PairSink& sink) {
  JoinStats stats;
  for (RecordId a = 0; a < records.size(); ++a) {
    for (RecordId b = a + 1; b < records.size(); ++b) {
      ++stats.candidates_verified;
      if (pred.Matches(records, a, b)) {
        ++stats.pairs;
        sink(a, b);
      }
    }
  }
  return stats;
}

Result<JoinStats> RunJoin(RecordSet* records, const Predicate& pred,
                          JoinAlgorithm algorithm, const JoinOptions& options,
                          const PairSink& sink) {
  pred.Prepare(records);

  // When the predicate needs the short-record fallback, remember what the
  // main algorithm emitted so the fallback can deduplicate.
  bool track_emitted = pred.ShortRecordNormBound() > 0;
  std::unordered_set<uint64_t> emitted;
  PairSink wrapped_sink = sink;
  if (track_emitted) {
    wrapped_sink = [&emitted, &sink](RecordId a, RecordId b) {
      emitted.insert(PairKey(a, b));
      sink(a, b);
    };
  }

  Result<JoinStats> result = Status::OK();
  switch (algorithm) {
    case JoinAlgorithm::kBruteForce: {
      // BruteForce needs no fallback: it already compares every pair.
      return BruteForceJoin(*records, pred, sink);
    }
    case JoinAlgorithm::kProbeCount:
    case JoinAlgorithm::kProbeStopwords:
    case JoinAlgorithm::kProbeOptMerge:
    case JoinAlgorithm::kProbeOnline:
    case JoinAlgorithm::kProbeSort: {
      ProbeJoinOptions probe = options.probe;
      probe.optimized_merge = algorithm != JoinAlgorithm::kProbeCount &&
                              algorithm != JoinAlgorithm::kProbeStopwords;
      probe.stopwords = algorithm == JoinAlgorithm::kProbeStopwords;
      probe.online = algorithm == JoinAlgorithm::kProbeOnline ||
                     algorithm == JoinAlgorithm::kProbeSort;
      probe.presort = algorithm == JoinAlgorithm::kProbeSort;
      if (options.num_threads > 1) {
        result = ParallelProbeJoin(*records, pred, probe,
                                   options.num_threads, wrapped_sink);
      } else {
        result = ProbeJoin(*records, pred, probe, wrapped_sink);
      }
      break;
    }
    case JoinAlgorithm::kProbeCluster: {
      result = ProbeClusterJoin(*records, pred, options.cluster,
                                wrapped_sink);
      break;
    }
    case JoinAlgorithm::kPairCount:
    case JoinAlgorithm::kPairCountOptMerge: {
      PairCountOptions pair = options.pair_count;
      pair.optimized = algorithm == JoinAlgorithm::kPairCountOptMerge;
      result = PairCountJoin(*records, pred, pair, wrapped_sink);
      break;
    }
    case JoinAlgorithm::kWordGroups:
    case JoinAlgorithm::kWordGroupsOptMerge: {
      WordGroupsOptions groups = options.word_groups;
      groups.threshold_optimized =
          algorithm == JoinAlgorithm::kWordGroupsOptMerge;
      result = WordGroupsJoin(*records, pred, groups, wrapped_sink);
      break;
    }
    case JoinAlgorithm::kClusterMem: {
      result = ClusterMemJoin(*records, pred, options.cluster_mem,
                              wrapped_sink);
      break;
    }
    case JoinAlgorithm::kPrefixFilter: {
      if (options.num_threads > 1) {
        result = ParallelPrefixFilterJoin(*records, pred,
                                          options.prefix_filter,
                                          options.num_threads, wrapped_sink);
      } else {
        result = PrefixFilterJoin(*records, pred, options.prefix_filter,
                                  wrapped_sink);
      }
      break;
    }
  }
  if (!result.ok()) return result;

  if (track_emitted) {
    JoinStats stats = result.value();
    ShortRecordFallback(*records, pred, emitted, &stats, sink);
    return stats;
  }
  return result;
}

Result<std::vector<std::pair<RecordId, RecordId>>> JoinToPairs(
    RecordSet* records, const Predicate& pred, JoinAlgorithm algorithm,
    const JoinOptions& options) {
  std::vector<std::pair<RecordId, RecordId>> pairs;
  Result<JoinStats> result =
      RunJoin(records, pred, algorithm, options,
              [&pairs](RecordId a, RecordId b) { pairs.emplace_back(a, b); });
  if (!result.ok()) return result.status();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<JoinStats> BandPartitionedJoin(RecordSet* records,
                                      const Predicate& pred, double k,
                                      BandStrategy strategy,
                                      const PairSink& sink,
                                      int num_threads) {
  pred.Prepare(records);

  std::vector<std::vector<RecordId>> partitions =
      BandPartitionByNorm(*records, k, strategy);

  // Each partition joins into a private buffer (global ids, partition-local
  // emission order preserved), so partitions can run on any thread while
  // the cross-partition dedup below stays strictly in partition order.
  struct PartitionResult {
    std::vector<std::pair<RecordId, RecordId>> pairs;
    JoinStats stats;
    Status status = Status::OK();
  };
  std::vector<PartitionResult> results(partitions.size());

  auto run_partition = [&](size_t p) {
    const std::vector<RecordId>& partition = partitions[p];
    PartitionResult& out = results[p];
    // Materialize the partition as its own (already prepared) record set.
    RecordSet subset;
    for (RecordId id : partition) {
      subset.Add(records->record(id), records->text(id));
    }
    ProbeClusterOptions cluster_options;
    Result<JoinStats> sub = ProbeClusterJoin(
        subset, pred, cluster_options,
        [&](RecordId local_a, RecordId local_b) {
          RecordId a = partition[local_a];
          RecordId b = partition[local_b];
          out.pairs.emplace_back(std::min(a, b), std::max(a, b));
        });
    if (!sub.ok()) {
      out.status = sub.status();
      return;
    }
    out.stats = sub.value();
  };

  if (num_threads > 1 && partitions.size() > 1) {
    ThreadPool pool(num_threads);
    pool.ParallelFor(partitions.size(), /*chunk=*/1,
                     [&](size_t begin, size_t end, int /*worker*/) {
                       for (size_t p = begin; p < end; ++p) run_partition(p);
                     });
  } else {
    for (size_t p = 0; p < partitions.size(); ++p) run_partition(p);
  }

  // Partitions are disjoint joins over overlapping record subsets: their
  // counters (including per-partition index peaks) add, while `pairs` is
  // re-counted after cross-partition deduplication.
  JoinStats stats;
  std::unordered_set<uint64_t> emitted;
  for (PartitionResult& result : results) {
    if (!result.status.ok()) return result.status;
    result.stats.pairs = 0;
    stats.MergePartition(result.stats);
    for (const auto& [a, b] : result.pairs) {
      if (!emitted.insert(PairKey(a, b)).second) continue;
      ++stats.pairs;
      sink(a, b);
    }
  }

  ShortRecordFallback(*records, pred, emitted, &stats, sink);
  return stats;
}

}  // namespace ssjoin
