#include "core/predicate.h"

namespace ssjoin {

bool Predicate::NormFilter(double /*norm_r*/, double /*norm_s*/) const {
  return true;
}

void Predicate::PrepareForJoin(RecordSet* left, RecordSet* right) const {
  Prepare(left);
  Prepare(right);
}

void Predicate::PrepareIncremental(const RecordSet& /*reference*/,
                                   RecordSet* staging) const {
  Prepare(staging);
}

bool Predicate::MatchesCross(const RecordSet& set_a, RecordId a,
                             const RecordSet& set_b, RecordId b) const {
  const RecordView ra = set_a.record(a);
  const RecordView rb = set_b.record(b);
  if (!NormFilter(ra.norm(), rb.norm())) return false;
  return ra.OverlapWith(rb) >= ThresholdForNorms(ra.norm(), rb.norm());
}

double Predicate::StaticTokenWeight(TokenId /*t*/) const { return 1.0; }

double Predicate::MinMatchOverlap(double /*norm_r*/) const { return 0; }

}  // namespace ssjoin
