#include "core/overlap_coefficient_predicate.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

OverlapCoefficientPredicate::OverlapCoefficientPredicate(double fraction)
    : fraction_(fraction) {
  SSJOIN_CHECK(fraction > 0 && fraction <= 1);
}

void OverlapCoefficientPredicate::Prepare(RecordSet* records) const {
  for (RecordId id = 0; id < records->size(); ++id) {
    size_t size = records->record_size(id);
    for (size_t i = 0; i < size; ++i) records->set_score(id, i, 1.0);
    records->set_norm(id, static_cast<double>(size));
  }
}

double OverlapCoefficientPredicate::ThresholdForNorms(double norm_r,
                                                      double norm_s) const {
  return fraction_ * std::min(norm_r, norm_s);
}

bool OverlapCoefficientPredicate::MatchesCross(const RecordSet& set_a,
                                               RecordId a,
                                               const RecordSet& set_b,
                                               RecordId b) const {
  const RecordView ra = set_a.record(a);
  const RecordView rb = set_b.record(b);
  // 0/0 guard: an empty record matches nothing. Without this, the default
  // overlap >= T comparison would accept 0 >= 0 — a pair the index-based
  // algorithms can never surface (no shared token).
  if (ra.empty() || rb.empty()) return false;
  return ra.OverlapWith(rb) >= ThresholdForNorms(ra.norm(), rb.norm());
}

}  // namespace ssjoin
