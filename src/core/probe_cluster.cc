#include "core/probe_cluster.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

ClusterSet::ClusterSet(const Predicate& pred, ClusterSetOptions options)
    : pred_(pred), options_(options) {
  SSJOIN_CHECK(options_.initial_floor_fraction >= 0 &&
               options_.initial_floor_fraction <= 1);
}

ClusterId ClusterSet::CreateCluster(RecordView record) {
  ClusterId id = static_cast<ClusterId>(clusters_.size());
  Cluster cluster;
  cluster.summary = Record::FromView(record);
  cluster.norm = record.norm();
  cluster.total_weight = 0;
  for (size_t i = 0; i < record.size(); ++i) {
    cluster.total_weight += record.score(i) * record.score(i);
  }
  cluster.size = 1;
  cluster.member_postings = record.size();
  clusters_.push_back(std::move(cluster));
  index_.InsertOrUpdateMax(id, record, record.norm());
  return id;
}

void ClusterSet::AddToCluster(ClusterId c, RecordView record) {
  Cluster& cluster = clusters_[c];
  cluster.summary = Record::UnionMax(cluster.summary.view(), record);
  cluster.norm = std::min(cluster.norm, record.norm());
  cluster.total_weight = 0;
  for (size_t i = 0; i < cluster.summary.size(); ++i) {
    cluster.total_weight +=
        cluster.summary.score(i) * cluster.summary.score(i);
  }
  ++cluster.size;
  cluster.member_postings += record.size();
  index_.InsertOrUpdateMax(c, record, record.norm());
}

ClusterSet::ProbeResult ClusterSet::ProbeAndAssign(RecordView record,
                                                   MergeStats* stats) {
  ProbeResult result;
  double record_weight = 0;
  for (size_t i = 0; i < record.size(); ++i) {
    record_weight += record.score(i) * record.score(i);
  }

  bool can_create =
      (options_.max_clusters == 0 ||
       clusters_.size() < options_.max_clusters) &&
      (options_.max_index_postings == 0 ||
       index_.total_postings() < options_.max_index_postings);
  // Section 4's promise: "when sufficient memory is available, the method
  // just reduces to the Probe Cluster method". While new clusters can
  // still be created, the home search stays at full MergeOpt strength;
  // the expensive below-threshold search only starts once the budget
  // binds and every record must be squeezed into an existing cluster.
  bool low_floor = options_.low_floor_home_search && !can_create;

  double best_similarity = -1;
  ClusterId best_cluster = kNoCluster;

  if (!clusters_.empty()) {
    // T(r, I): the smallest threshold any cluster can demand. In
    // low-floor mode (ClusterMem) the search starts below it and is
    // raised toward it as candidates appear — never beyond, or a J(r)
    // member could be pruned. In full-strength mode (Probe-Cluster) the
    // merge runs directly at the join threshold with per-cluster bounds.
    double t_index =
        pred_.ThresholdForNorms(record.norm(), index_.min_norm());
    double floor = t_index;
    if (low_floor && t_index > 0) {
      // Scaling a negative threshold would move the floor above T(r, I).
      floor = options_.initial_floor_fraction * t_index;
    }
    auto required_fn = [this, &record](RecordId c) {
      return pred_.ThresholdForNorms(record.norm(), clusters_[c].norm);
    };
    FunctionRef<double(RecordId)> required;
    if (!low_floor) {
      required = required_fn;
    }

    std::vector<PostingListView> lists;
    std::vector<double> scores;
    CollectProbeLists(index_, record, &lists, &scores);
    MergeOptions merge_options;
    merge_options.split_lists = true;
    merge_options.apply_filter = false;  // cluster norms aggregate members;
                                         // pair filters apply at the
                                         // member level only
    ListMerger merger(lists, scores, floor, required,
                      /*filter=*/nullptr, merge_options, stats);

    MergeCandidate candidate;
    while (merger.Next(&candidate)) {
      ClusterId c = candidate.id;
      double overlap = candidate.overlap;
      if (overlap >=
          PruneBound(pred_.ThresholdForNorms(record.norm(),
                                             clusters_[c].norm))) {
        result.joins.push_back(c);
      } else if (!low_floor) {
        continue;  // full-strength mode: only J(r) members are homes
      }
      bool joinable_size =
          options_.max_cluster_size == 0 ||
          clusters_[c].size < options_.max_cluster_size;
      if (joinable_size) {
        // Ratio similarity (overlap over union weight): "prevents large
        // clusters from getting too large too fast".
        double union_weight =
            record_weight + clusters_[c].total_weight - overlap;
        double similarity =
            union_weight > 0 ? overlap / union_weight : 1.0;
        if (similarity > best_similarity) {
          best_similarity = similarity;
          best_cluster = c;
        }
        if (low_floor) {
          // Ratio-similarity update rule (Section 4.1.1): raise the floor
          // toward T(r, I) by averaging in the observed overlap.
          merger.RaiseFloor(std::min(
              t_index,
              0.5 * (merger.floor() + std::min(overlap, t_index))));
        }
      }
    }
  }

  if (best_cluster != kNoCluster &&
      best_similarity >= options_.assign_similarity_threshold) {
    result.home = best_cluster;
    AddToCluster(best_cluster, record);
  } else if (can_create) {
    result.home = CreateCluster(record);
    result.created = true;
  } else if (best_cluster != kNoCluster) {
    // Cluster budget exhausted and nothing similar: fall back to the most
    // similar non-full cluster anyway.
    result.home = best_cluster;
    AddToCluster(best_cluster, record);
  } else {
    // Every probed cluster was full (or none shared a token). Assign to
    // the globally smallest cluster to keep sizes balanced.
    ClusterId smallest = 0;
    for (ClusterId c = 1; c < clusters_.size(); ++c) {
      if (clusters_[c].size < clusters_[smallest].size) smallest = c;
    }
    result.home = smallest;
    AddToCluster(smallest, record);
  }
  return result;
}

void ProbeMemberIndex(const RecordSet& records, const Predicate& pred,
                      RecordView record, RecordId record_id,
                      const std::vector<RecordId>& members,
                      const DynamicIndex& index, bool apply_filter,
                      JoinStats* stats, const PairSink& sink) {
  if (index.num_entities() == 0) return;
  double floor = pred.ThresholdForNorms(record.norm(), index.min_norm());
  auto required_fn = [&](RecordId local) {
    return pred.ThresholdForNorms(record.norm(),
                                  records.record(members[local]).norm());
  };
  FunctionRef<double(RecordId)> required = required_fn;
  auto filter_fn = [&](RecordId local) {
    return pred.NormFilter(record.norm(),
                           records.record(members[local]).norm());
  };
  FunctionRef<bool(RecordId)> filter;
  if (apply_filter && pred.has_norm_filter()) {
    filter = filter_fn;
  }
  std::vector<PostingListView> lists;
  std::vector<double> scores;
  CollectProbeLists(index, record, &lists, &scores);
  MergeOptions merge_options;
  merge_options.split_lists = true;
  merge_options.apply_filter = apply_filter;
  ListMerger merger(lists, scores, floor, required, filter, merge_options,
                    &stats->merge);
  MergeCandidate candidate;
  while (merger.Next(&candidate)) {
    RecordId other = members[candidate.id];
    ++stats->candidates_verified;
    if (pred.Matches(records, other, record_id)) {
      ++stats->pairs;
      sink(std::min(other, record_id), std::max(other, record_id));
    }
  }
}

Result<JoinStats> ProbeClusterJoin(const RecordSet& records,
                                   const Predicate& pred,
                                   const ProbeClusterOptions& options,
                                   const PairSink& sink) {
  JoinStats stats;
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  ClusterSet cluster_set(pred, options.cluster);
  // Per-cluster member structures: a local-id -> RecordId map and a
  // member-level inverted index (local ids keep posting ids increasing
  // under any processing order; dynamic because membership grows online).
  std::vector<std::vector<RecordId>> members;
  std::vector<DynamicIndex> member_index;

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId id = order[pos];
    const RecordView record = records.record(id);

    ClusterSet::ProbeResult probe =
        cluster_set.ProbeAndAssign(record, &stats.merge);

    // Finer-grained joins against every cluster in J(r) (state excludes
    // the current record: it is added to member structures below).
    for (ClusterId c : probe.joins) {
      if (members[c].size() == 1) {
        // Singleton cluster: its summary IS its one member, so the
        // cluster-level probe already established T-overlap; verify the
        // pair directly instead of a second merge.
        RecordId other = members[c][0];
        ++stats.candidates_verified;
        if (pred.Matches(records, other, id)) {
          ++stats.pairs;
          sink(std::min(other, id), std::max(other, id));
        }
        continue;
      }
      ProbeMemberIndex(records, pred, record, id, members[c],
                       member_index[c], options.apply_filter, &stats, sink);
    }

    // Install the record in its home cluster's member structures. The
    // member-level index is built lazily on the second member — singleton
    // clusters are served by the shortcut above and need no index.
    if (probe.created) {
      members.emplace_back();
      member_index.emplace_back();
    }
    ClusterId home = probe.home;
    members[home].push_back(id);
    if (members[home].size() >= 2) {
      DynamicIndex& index = member_index[home];
      for (size_t local = index.num_entities();
           local < members[home].size(); ++local) {
        index.Insert(static_cast<RecordId>(local),
                     records.record(members[home][local]));
      }
    }
  }

  stats.index_postings = cluster_set.index_postings();
  for (const DynamicIndex& index : member_index) {
    stats.index_postings += index.total_postings();
  }
  return stats;
}

}  // namespace ssjoin
