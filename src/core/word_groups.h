#ifndef SSJOIN_CORE_WORD_GROUPS_H_
#define SSJOIN_CORE_WORD_GROUPS_H_

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "mining/apriori.h"
#include "util/status.h"

namespace ssjoin {

/// Word-Groups (Section 2.3): cast the join as frequent-itemset mining
/// with tokens as items and records as transactions (minimum support 2,
/// itemset weight capped at T). Every emitted group implies the pairs of
/// records inside it; confirmed groups (weight >= T) emit their pairs
/// outright, candidate groups (early-output, compaction merges) are
/// verified. A global deduplication set removes the cross-group
/// redundancy the paper identifies as this algorithm's weakness.
///
/// Requires a constant-threshold predicate with static token weights
/// (the weighted T-overlap family).
/// Which itemset miner drives Word-Groups.
enum class WordGroupsMiner {
  /// Level-wise Apriori with MinHash compaction (Section 2.3's default).
  kApriori,
  /// Depth-first vertical mining — the memory-lean alternative standing
  /// in for the paper's FP-growth variant (see mining/dfs_miner.h).
  kDepthFirst,
};

struct WordGroupsOptions {
  /// Threshold optimization of Section 3.1: never generate itemsets whose
  /// tokens all come from the global large-list set L.
  bool threshold_optimized = true;

  WordGroupsMiner miner = WordGroupsMiner::kApriori;

  /// Miner knobs (min_weight and token_in_large_set are filled in here).
  AprioriOptions apriori;
};

/// Runs Word-Groups. `records` must already be Prepare()d by `pred`.
Result<JoinStats> WordGroupsJoin(const RecordSet& records,
                                 const Predicate& pred,
                                 const WordGroupsOptions& options,
                                 const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_WORD_GROUPS_H_
