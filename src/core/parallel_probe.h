#ifndef SSJOIN_CORE_PARALLEL_PROBE_H_
#define SSJOIN_CORE_PARALLEL_PROBE_H_

#include <cstdint>
#include <functional>

#include "core/join_common.h"
#include "core/predicate.h"
#include "core/prefix_filter_join.h"
#include "core/probe_join.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Parallel execution layer for the index-probe join algorithms.
///
/// All of them share one shape: build a read-only index over the corpus,
/// then probe it once per record, where probe `pos` may only pair with
/// entries at earlier positions (each unordered pair is found exactly
/// once, from its later endpoint). The probes are independent, so after
/// the index is frozen they fan out across a ThreadPool.
///
/// Determinism contract: workers accumulate into private JoinStats and
/// private pair buffers; the driver reduces stats with
/// JoinStats::MergePartition (every counter a scheduling-independent sum)
/// and sorts the union of the pair buffers before emitting, so the
/// output pair sequence and the merged stats are byte-identical across
/// runs and thread counts — and identical to the serial two-pass path.
///
/// Algorithms that mutate shared state between probes stay sequential:
/// Probe-Cluster and ClusterMem phase 1 grow the ClusterSet with every
/// record, ProbeCount-online/-sort interleave index growth with probing
/// (parallel runs use the equivalent frozen-index two-pass form), and
/// Pair-Count / Word-Groups are whole-index aggregations, not probe
/// loops. See DESIGN.md "Threading model".
class ParallelProbeDriver {
 public:
  /// Probes one position. `worker` indexes per-worker scratch owned by
  /// the caller, `stats` is the worker's private counter block and
  /// `emit` its private buffering sink.
  using ProbeFn = std::function<void(uint32_t pos, int worker,
                                     JoinStats* stats, const PairSink& emit)>;

  /// Runs probe(pos) for every pos in [0, n) on up to `num_threads`
  /// workers, then merges per-worker results deterministically and
  /// emits the sorted pairs to `sink` on the calling thread.
  static JoinStats Run(size_t n, int num_threads, const ProbeFn& probe,
                       const PairSink& sink);
};

/// Parallel Probe-Count family. Equivalent to the serial ProbeJoin with
/// `options.online` forced off (the two-pass frozen-index form — the
/// online single-pass optimization is inherently sequential); all other
/// flags (optimized_merge, stopwords, presort, apply_filter) behave as
/// in the serial path. Emits pairs in sorted order.
Result<JoinStats> ParallelProbeJoin(const RecordSet& records,
                                    const Predicate& pred,
                                    const ProbeJoinOptions& options,
                                    int num_threads, const PairSink& sink);

/// Parallel prefix-filter join: builds the full prefix index up front,
/// then probes records in parallel, restricting candidates to earlier
/// positions — the same candidate set the serial incremental form sees.
/// Emits pairs in sorted order.
Result<JoinStats> ParallelPrefixFilterJoin(
    const RecordSet& records, const Predicate& pred,
    const PrefixFilterJoinOptions& options, int num_threads,
    const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PARALLEL_PROBE_H_
