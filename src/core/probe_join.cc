#include "core/probe_join.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/probe_common.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

using probe_internal::BuildStopwordPlan;
using probe_internal::ProbeOne;
using probe_internal::ProbeScratch;
using probe_internal::ReducedThreshold;
using probe_internal::StopwordPlan;

Result<JoinStats> ProbeJoin(const RecordSet& records, const Predicate& pred,
                            const ProbeJoinOptions& options,
                            const PairSink& sink) {
  JoinStats stats;
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  StopwordPlan stop_plan;
  if (options.stopwords) {
    std::optional<double> constant = pred.ConstantThreshold();
    if (!constant.has_value()) {
      return Status::InvalidArgument(
          "Probe-stopWords requires a constant-threshold predicate; '" +
          pred.name() + "' has a pair-dependent threshold");
    }
    stop_plan = BuildStopwordPlan(records, *constant);
  }
  const std::vector<bool>* skip =
      options.stopwords ? &stop_plan.is_stop : nullptr;

  // The index is keyed by processing position so posting ids stay strictly
  // increasing under any processing order; `order` maps back to RecordIds.
  // Every record is inserted exactly once in both two-pass and online
  // mode, so the corpus document frequencies bound each token's extent.
  InvertedIndex index;
  index.PlanFromRecords(records);

  if (!options.online) {
    for (uint32_t pos = 0; pos < n; ++pos) {
      index.Insert(pos, records.record(order[pos]), skip);
    }
  }

  auto verify_and_emit = [&](RecordId a, RecordId b) {
    ++stats.candidates_verified;
    if (pred.Matches(records, a, b)) {
      ++stats.pairs;
      sink(std::min(a, b), std::max(a, b));
    }
  };

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  // Probe-loop scratch, allocated once and reused: no per-record heap
  // allocations inside the loop.
  ProbeScratch scratch;

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId probe_id = order[pos];
    const RecordView probe = records.record(probe_id);

    if (index.num_entities() > 0) {
      double floor;
      auto required_fn = [&](RecordId m) {
        return pred.ThresholdForNorms(probe.norm(),
                                      records.record(order[m]).norm());
      };
      FunctionRef<double(RecordId)> required;
      if (options.stopwords) {
        double reduced = ReducedThreshold(probe, stop_plan);
        if (reduced <= 0) {
          // Degenerate probe: its own stopwords could carry the whole
          // threshold, so every indexed record is a candidate.
          uint32_t limit = options.online ? pos : static_cast<uint32_t>(n);
          for (uint32_t m = 0; m < limit; ++m) {
            if (!options.online && m >= pos) break;
            verify_and_emit(order[m], probe_id);
          }
          if (options.online) index.Insert(pos, probe, skip);
          continue;
        }
        floor = reduced;
      } else {
        floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
        required = required_fn;
      }
      auto filter_fn = [&](RecordId m) {
        return pred.NormFilter(probe.norm(),
                               records.record(order[m]).norm());
      };
      FunctionRef<bool(RecordId)> filter;
      if (options.apply_filter && pred.has_norm_filter()) {
        filter = filter_fn;
      }
      ProbeOne(index, probe, floor, required, filter, merge_options,
               &stats.merge, &scratch, [&](const MergeCandidate& candidate) {
                 if (!options.online && candidate.id >= pos) {
                   // Two-pass mode indexes every record: skip self matches
                   // and emit each unordered pair from its later endpoint
                   // only.
                   return;
                 }
                 verify_and_emit(order[candidate.id], probe_id);
               });
    }

    if (options.online) index.Insert(pos, probe, skip);
  }

  stats.index_postings = index.total_postings();
  return stats;
}

}  // namespace ssjoin
