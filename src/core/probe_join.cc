#include "core/probe_join.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "data/corpus_stats.h"
#include "util/logging.h"

namespace ssjoin {

namespace {

/// Per-token upper bound on what a single shared occurrence of the token
/// can contribute to any pair's overlap: (max_r score(t, r))^2.
std::vector<double> MaxTokenScores(const RecordSet& records) {
  std::vector<double> max_score(records.vocabulary_size(), 0.0);
  for (const Record& r : records.records()) {
    for (size_t i = 0; i < r.size(); ++i) {
      max_score[r.token(i)] = std::max(max_score[r.token(i)], r.score(i));
    }
  }
  return max_score;
}

struct StopwordPlan {
  std::vector<bool> is_stop;       // per token
  std::vector<double> max_score;   // per token
  double threshold = 0;            // the predicate's constant T
};

/// Picks the maximal prefix of the most document-frequent tokens whose
/// total potential contribution stays below T (the paper's "top T-1
/// highest frequency words" generalized to weighted scores).
StopwordPlan BuildStopwordPlan(const RecordSet& records, double threshold) {
  StopwordPlan plan;
  plan.threshold = threshold;
  plan.max_score = MaxTokenScores(records);
  plan.is_stop.assign(records.vocabulary_size(), false);
  std::vector<TokenId> by_frequency =
      TopFrequentTokens(records, records.vocabulary_size());
  double sum = 0;
  for (TokenId t : by_frequency) {
    double contribution = plan.max_score[t] * plan.max_score[t];
    if (sum + contribution >= threshold) break;
    sum += contribution;
    plan.is_stop[t] = true;
  }
  return plan;
}

/// The record with stopword tokens removed, keeping the original norm and
/// text_length so index statistics and thresholds stay correct.
Record StripStopwords(const Record& r, const StopwordPlan& plan) {
  std::vector<std::pair<TokenId, double>> kept;
  kept.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    if (!plan.is_stop[r.token(i)]) kept.emplace_back(r.token(i), r.score(i));
  }
  Record out = Record::FromWeightedTokens(std::move(kept));
  out.set_norm(r.norm());
  out.set_text_length(r.text_length());
  return out;
}

/// Reduced threshold for probe r: T minus the potential carried by r's own
/// stopwords (Section 3.1).
double ReducedThreshold(const Record& r, const StopwordPlan& plan) {
  double reduction = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    TokenId t = r.token(i);
    if (plan.is_stop[t]) reduction += r.score(i) * plan.max_score[t];
  }
  return plan.threshold - reduction;
}

}  // namespace

Result<JoinStats> ProbeJoin(const RecordSet& records, const Predicate& pred,
                            const ProbeJoinOptions& options,
                            const PairSink& sink) {
  JoinStats stats;
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  StopwordPlan stop_plan;
  if (options.stopwords) {
    std::optional<double> constant = pred.ConstantThreshold();
    if (!constant.has_value()) {
      return Status::InvalidArgument(
          "Probe-stopWords requires a constant-threshold predicate; '" +
          pred.name() + "' has a pair-dependent threshold");
    }
    stop_plan = BuildStopwordPlan(records, *constant);
  }

  // The index is keyed by processing position so posting ids stay strictly
  // increasing under any processing order; `order` maps back to RecordIds.
  InvertedIndex index;
  std::vector<Record> stripped;  // stopword mode only
  if (options.stopwords) {
    stripped.reserve(n);
    for (RecordId id = 0; id < n; ++id) {
      stripped.push_back(StripStopwords(records.record(id), stop_plan));
    }
  }
  auto record_for_index = [&](RecordId id) -> const Record& {
    return options.stopwords ? stripped[id] : records.record(id);
  };

  if (!options.online) {
    for (uint32_t pos = 0; pos < n; ++pos) {
      index.Insert(pos, record_for_index(order[pos]));
    }
  }

  auto verify_and_emit = [&](RecordId a, RecordId b) {
    ++stats.candidates_verified;
    if (pred.Matches(records, a, b)) {
      ++stats.pairs;
      sink(std::min(a, b), std::max(a, b));
    }
  };

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  std::vector<const PostingList*> lists;
  std::vector<double> probe_scores;

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId probe_id = order[pos];
    const Record& probe_full = records.record(probe_id);
    const Record& probe = record_for_index(probe_id);

    if (index.num_entities() > 0) {
      double floor;
      std::function<double(RecordId)> required;
      if (options.stopwords) {
        double reduced = ReducedThreshold(probe_full, stop_plan);
        if (reduced <= 0) {
          // Degenerate probe: its own stopwords could carry the whole
          // threshold, so every indexed record is a candidate.
          uint32_t limit = options.online ? pos : static_cast<uint32_t>(n);
          for (uint32_t m = 0; m < limit; ++m) {
            if (!options.online && m >= pos) break;
            verify_and_emit(order[m], probe_id);
          }
          if (options.online) index.Insert(pos, probe);
          continue;
        }
        floor = reduced;
      } else {
        floor = pred.ThresholdForNorms(probe_full.norm(), index.min_norm());
        required = [&](RecordId m) {
          return pred.ThresholdForNorms(probe_full.norm(),
                                        records.record(order[m]).norm());
        };
      }
      std::function<bool(RecordId)> filter;
      if (options.apply_filter && pred.has_norm_filter()) {
        filter = [&](RecordId m) {
          return pred.NormFilter(probe_full.norm(),
                                 records.record(order[m]).norm());
        };
      }
      CollectProbeLists(index, probe, &lists, &probe_scores);
      ListMerger merger(std::move(lists), std::move(probe_scores), floor,
                        required, filter, merge_options, &stats.merge);
      MergeCandidate candidate;
      while (merger.Next(&candidate)) {
        if (!options.online && candidate.id >= pos) {
          // Two-pass mode indexes every record: skip self matches and
          // emit each unordered pair from its later endpoint only.
          continue;
        }
        verify_and_emit(order[candidate.id], probe_id);
      }
      lists.clear();
      probe_scores.clear();
    }

    if (options.online) index.Insert(pos, probe);
  }

  stats.index_postings = index.total_postings();
  return stats;
}

}  // namespace ssjoin
