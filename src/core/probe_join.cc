#include "core/probe_join.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/probe_common.h"
#include "util/function_ref.h"
#include "util/logging.h"

namespace ssjoin {

using probe_internal::BuildStopwordPlan;
using probe_internal::ProbeOne;
using probe_internal::ProbeScratch;
using probe_internal::ReducedThreshold;
using probe_internal::StopwordPlan;

Result<JoinStats> ProbeJoin(const RecordSet& records, const Predicate& pred,
                            const ProbeJoinOptions& options,
                            const PairSink& sink) {
  JoinStats stats;
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  StopwordPlan stop_plan;
  if (options.stopwords) {
    std::optional<double> constant = pred.ConstantThreshold();
    if (!constant.has_value()) {
      return Status::InvalidArgument(
          "Probe-stopWords requires a constant-threshold predicate; '" +
          pred.name() + "' has a pair-dependent threshold");
    }
    stop_plan = BuildStopwordPlan(records, *constant);
  }
  const std::vector<bool>* skip =
      options.stopwords ? &stop_plan.is_stop : nullptr;

  // The index is keyed by processing position so posting ids stay strictly
  // increasing under any processing order; `order` maps back to RecordIds.
  // Every record is inserted exactly once in both two-pass and online
  // mode, so the corpus document frequencies bound each token's extent.
  InvertedIndex index;
  index.PlanFromRecords(records);

  if (!options.online) {
    for (uint32_t pos = 0; pos < n; ++pos) {
      index.Insert(pos, records.record(order[pos]), skip);
    }
  }

  auto verify_and_emit = [&](RecordId a, RecordId b) {
    ++stats.candidates_verified;
    if (pred.Matches(records, a, b)) {
      ++stats.pairs;
      sink(std::min(a, b), std::max(a, b));
    }
  };

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  // Bitmap prefilter plumbing: the candidate lookup maps a processing
  // position back through `order` to its record's bitmap; the probe side
  // of the gate is re-pointed per probe below.
  const bool use_bitmaps =
      options.bitmap_filter && pred.supports_bitmap_pruning();
  auto bitmap_lookup = [&](RecordId m) {
    const TokenBitmapEntry& e = records.token_bitmap_entry(order[m]);
    return BitmapCandidate{e.bits, static_cast<uint32_t>(e.tokens)};
  };
  BitmapGate gate;
  gate.lookup = bitmap_lookup;

  // Probe-loop scratch, allocated once and reused: no per-record heap
  // allocations inside the loop.
  ProbeScratch scratch;

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId probe_id = order[pos];
    const RecordView probe = records.record(probe_id);
    if (use_bitmaps) {
      gate.probe_bits = records.token_bitmap(probe_id);
      gate.probe_tokens = static_cast<uint32_t>(probe.size());
    }

    // Emit-level gate, stopword mode only: there the merger holds
    // candidates to the REDUCED threshold while verification runs the
    // full constant threshold, so the bitmap bound gets a second cut at
    // the gap. Each common token contributes at most probe-score times
    // corpus-max-score, so ub * probe_pair_max bounds the pair's exact
    // overlap; below the full threshold, Matches() must fail, and the
    // verification is skipped without changing the emitted pairs. (The
    // non-stopword paths need no emit gate: their merger already holds
    // candidates to the exact per-pair threshold.)
    const bool emit_gated = use_bitmaps && options.stopwords;
    double probe_pair_max = 0;
    if (emit_gated) {
      for (size_t i = 0; i < probe.size(); ++i) {
        probe_pair_max =
            std::max(probe_pair_max,
                     probe.score(i) * stop_plan.max_score[probe.token(i)]);
      }
    }
    auto emit_gate_prunes = [&](uint32_t m) {
      const BitmapCandidate cand = bitmap_lookup(m);
      ++stats.merge.bitmap_checked;
      const uint32_t ub =
          TokenBitmapOverlapBound(gate.probe_bits, gate.probe_tokens,
                                  cand.bits, cand.tokens, gate.words);
      if (static_cast<double>(ub) * probe_pair_max <
          PruneBound(stop_plan.threshold)) {
        ++stats.merge.bitmap_pruned;
        return true;
      }
      return false;
    };

    if (index.num_entities() > 0) {
      double floor;
      auto required_fn = [&](RecordId m) {
        return pred.ThresholdForNorms(probe.norm(),
                                      records.record(order[m]).norm());
      };
      FunctionRef<double(RecordId)> required;
      if (options.stopwords) {
        double reduced = ReducedThreshold(probe, stop_plan);
        if (reduced <= 0) {
          // Degenerate probe: its own stopwords could carry the whole
          // threshold, so every indexed record is a candidate.
          uint32_t limit = options.online ? pos : static_cast<uint32_t>(n);
          for (uint32_t m = 0; m < limit; ++m) {
            if (!options.online && m >= pos) break;
            if (emit_gated && emit_gate_prunes(m)) continue;
            verify_and_emit(order[m], probe_id);
          }
          if (options.online) index.Insert(pos, probe, skip);
          continue;
        }
        floor = reduced;
      } else {
        floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
        required = required_fn;
      }
      auto filter_fn = [&](RecordId m) {
        return pred.NormFilter(probe.norm(),
                               records.record(order[m]).norm());
      };
      FunctionRef<bool(RecordId)> filter;
      if (options.apply_filter && pred.has_norm_filter()) {
        filter = filter_fn;
      }
      ProbeOne(
          index, probe, floor, required, filter, merge_options, &stats.merge,
          &scratch,
          [&](const MergeCandidate& candidate) {
            if (!options.online && candidate.id >= pos) {
              // Two-pass mode indexes every record: skip self matches
              // and emit each unordered pair from its later endpoint
              // only.
              return;
            }
            if (emit_gated && emit_gate_prunes(candidate.id)) return;
            verify_and_emit(order[candidate.id], probe_id);
          },
          use_bitmaps ? &gate : nullptr);
    }

    if (options.online) index.Insert(pos, probe, skip);
  }

  stats.index_postings = index.total_postings();
  return stats;
}

}  // namespace ssjoin
