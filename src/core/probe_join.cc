#include "core/probe_join.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/probe_common.h"
#include "util/logging.h"

namespace ssjoin {

using probe_internal::BuildStopwordPlan;
using probe_internal::ReducedThreshold;
using probe_internal::StopwordPlan;
using probe_internal::StripStopwords;

Result<JoinStats> ProbeJoin(const RecordSet& records, const Predicate& pred,
                            const ProbeJoinOptions& options,
                            const PairSink& sink) {
  JoinStats stats;
  const size_t n = records.size();

  std::vector<RecordId> order;
  if (options.presort) {
    order = records.IdsByDecreasingNorm();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }

  StopwordPlan stop_plan;
  if (options.stopwords) {
    std::optional<double> constant = pred.ConstantThreshold();
    if (!constant.has_value()) {
      return Status::InvalidArgument(
          "Probe-stopWords requires a constant-threshold predicate; '" +
          pred.name() + "' has a pair-dependent threshold");
    }
    stop_plan = BuildStopwordPlan(records, *constant);
  }

  // The index is keyed by processing position so posting ids stay strictly
  // increasing under any processing order; `order` maps back to RecordIds.
  InvertedIndex index;
  std::vector<Record> stripped;  // stopword mode only
  if (options.stopwords) {
    stripped.reserve(n);
    for (RecordId id = 0; id < n; ++id) {
      stripped.push_back(StripStopwords(records.record(id), stop_plan));
    }
  }
  auto record_for_index = [&](RecordId id) -> const Record& {
    return options.stopwords ? stripped[id] : records.record(id);
  };

  if (!options.online) {
    for (uint32_t pos = 0; pos < n; ++pos) {
      index.Insert(pos, record_for_index(order[pos]));
    }
  }

  auto verify_and_emit = [&](RecordId a, RecordId b) {
    ++stats.candidates_verified;
    if (pred.Matches(records, a, b)) {
      ++stats.pairs;
      sink(std::min(a, b), std::max(a, b));
    }
  };

  MergeOptions merge_options;
  merge_options.split_lists = options.optimized_merge;
  merge_options.apply_filter = options.apply_filter;

  std::vector<const PostingList*> lists;
  std::vector<double> probe_scores;

  for (uint32_t pos = 0; pos < n; ++pos) {
    RecordId probe_id = order[pos];
    const Record& probe_full = records.record(probe_id);
    const Record& probe = record_for_index(probe_id);

    if (index.num_entities() > 0) {
      double floor;
      std::function<double(RecordId)> required;
      if (options.stopwords) {
        double reduced = ReducedThreshold(probe_full, stop_plan);
        if (reduced <= 0) {
          // Degenerate probe: its own stopwords could carry the whole
          // threshold, so every indexed record is a candidate.
          uint32_t limit = options.online ? pos : static_cast<uint32_t>(n);
          for (uint32_t m = 0; m < limit; ++m) {
            if (!options.online && m >= pos) break;
            verify_and_emit(order[m], probe_id);
          }
          if (options.online) index.Insert(pos, probe);
          continue;
        }
        floor = reduced;
      } else {
        floor = pred.ThresholdForNorms(probe_full.norm(), index.min_norm());
        required = [&](RecordId m) {
          return pred.ThresholdForNorms(probe_full.norm(),
                                        records.record(order[m]).norm());
        };
      }
      std::function<bool(RecordId)> filter;
      if (options.apply_filter && pred.has_norm_filter()) {
        filter = [&](RecordId m) {
          return pred.NormFilter(probe_full.norm(),
                                 records.record(order[m]).norm());
        };
      }
      CollectProbeLists(index, probe, &lists, &probe_scores);
      ListMerger merger(std::move(lists), std::move(probe_scores), floor,
                        required, filter, merge_options, &stats.merge);
      MergeCandidate candidate;
      while (merger.Next(&candidate)) {
        if (!options.online && candidate.id >= pos) {
          // Two-pass mode indexes every record: skip self matches and
          // emit each unordered pair from its later endpoint only.
          continue;
        }
        verify_and_emit(order[candidate.id], probe_id);
      }
      lists.clear();
      probe_scores.clear();
    }

    if (options.online) index.Insert(pos, probe);
  }

  stats.index_postings = index.total_postings();
  return stats;
}

}  // namespace ssjoin
