#ifndef SSJOIN_CORE_OVERLAP_COEFFICIENT_PREDICATE_H_
#define SSJOIN_CORE_OVERLAP_COEFFICIENT_PREDICATE_H_

#include <string>

#include "core/predicate.h"

namespace ssjoin {

/// Overlap (Szymkiewicz–Simpson) coefficient join: match iff
///
///   |r ∩ s| / min(|r|, |s|) >= f,
///
/// i.e. a fraction-f containment of the smaller set — the fuzzy relaxation
/// of the set-containment joins the paper cites as prior work ([21], [18]).
/// In the Section 5 framework: T(r, s) = f * min(|r|, |s|), non-decreasing
/// in both sizes. There is no useful size-ratio filter (a tiny set may be
/// contained in an arbitrarily large one).
///
/// Empty records are defined to match nothing (the coefficient is 0/0).
class OverlapCoefficientPredicate : public Predicate {
 public:
  /// Requires 0 < fraction <= 1.
  explicit OverlapCoefficientPredicate(double fraction);

  std::string name() const override { return "overlap-coefficient"; }
  void Prepare(RecordSet* records) const override;
  double ThresholdForNorms(double norm_r, double norm_s) const override;
  bool MatchesCross(const RecordSet& set_a, RecordId a,
                    const RecordSet& set_b, RecordId b) const override;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

}  // namespace ssjoin

#endif  // SSJOIN_CORE_OVERLAP_COEFFICIENT_PREDICATE_H_
