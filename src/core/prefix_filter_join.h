#ifndef SSJOIN_CORE_PREFIX_FILTER_JOIN_H_
#define SSJOIN_CORE_PREFIX_FILTER_JOIN_H_

#include "core/join_common.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Prefix-filter similarity join — the AllPairs/PPJoin idea that grew out
/// of this paper's line of work, implemented as an extension so the bench
/// suite can compare it against MergeOpt-based probing.
///
/// Principle: order tokens globally by increasing document frequency
/// (rare first) and sort each record's tokens in that order. For a record
/// s, let α(s) = Predicate::MinMatchOverlap(||s||) — the smallest overlap
/// any match of s can have — and define s's *prefix* as the shortest
/// leading token span whose remaining suffix cannot contribute α(s):
///
///   prefix(s) = min p such that  Σ_{i>p} score(w_i, s) · gmax(w_i) < α(s)
///
/// (gmax is the corpus-wide max score of the token). Any record matching
/// s must then share at least one *prefix* token with s, so indexing only
/// prefixes and probing with whole records finds every match; candidates
/// are verified exactly.
///
/// Works for any predicate with MinMatchOverlap > 0 (overlap, Jaccard,
/// Dice, cosine; Hamming degrades gracefully — tiny records index fully
/// and the short-record pool covers zero-overlap pairs). Weighted scores
/// are supported through the gmax bound.
struct PrefixFilterJoinOptions {
  /// Process records in decreasing norm order (affects speed only).
  bool presort = true;
  bool apply_filter = true;
};

/// Runs the prefix-filter self-join. `records` must already be
/// Prepare()d. Emits each matching pair once (smaller id first). Returns
/// InvalidArgument for predicates whose MinMatchOverlap is never
/// positive.
Result<JoinStats> PrefixFilterJoin(const RecordSet& records,
                                   const Predicate& pred,
                                   const PrefixFilterJoinOptions& options,
                                   const PairSink& sink);

}  // namespace ssjoin

#endif  // SSJOIN_CORE_PREFIX_FILTER_JOIN_H_
