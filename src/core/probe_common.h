#ifndef SSJOIN_CORE_PROBE_COMMON_H_
#define SSJOIN_CORE_PROBE_COMMON_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/merge_opt.h"
#include "core/predicate.h"
#include "data/corpus_stats.h"
#include "data/record_set.h"
#include "data/record_view.h"
#include "util/function_ref.h"

namespace ssjoin {
namespace probe_internal {

/// Shared plumbing of the Probe-Count family, used by the serial
/// ProbeJoin, the parallel probe driver, the streaming join and the
/// serving layer, so the probe paths cannot drift.

struct StopwordPlan {
  std::vector<bool> is_stop;       // per token
  std::vector<double> max_score;   // per token
  double threshold = 0;            // the predicate's constant T
};

/// Picks the maximal prefix of the most document-frequent tokens whose
/// total potential contribution stays below T (the paper's "top T-1
/// highest frequency words" generalized to weighted scores). Reads the
/// per-token maxima and the frequency order from the RecordSet's cached
/// TokenStats instead of rescanning the corpus per join call.
inline StopwordPlan BuildStopwordPlan(const RecordSet& records,
                                      double threshold) {
  const TokenStats& stats = records.token_stats();
  StopwordPlan plan;
  plan.threshold = threshold;
  plan.max_score = stats.max_token_scores;
  plan.is_stop.assign(records.vocabulary_size(), false);
  double sum = 0;
  for (TokenId t : stats.tokens_by_frequency) {
    double contribution = plan.max_score[t] * plan.max_score[t];
    if (sum + contribution >= threshold) break;
    sum += contribution;
    plan.is_stop[t] = true;
  }
  return plan;
}

/// Reduced threshold for probe r: T minus the potential carried by r's own
/// stopwords (Section 3.1).
///
/// Stopword handling never copies records: stop tokens are skipped at
/// index insertion (InvertedIndex::Insert's skip mask), and probing with
/// the FULL record is byte-identical to probing with a stripped copy
/// because every stop token's posting list is empty and CollectProbeLists
/// drops empty lists — same lists, same relative order, same merge.
inline double ReducedThreshold(RecordView r, const StopwordPlan& plan) {
  double reduction = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    TokenId t = r.token(i);
    if (plan.is_stop[t]) reduction += r.score(i) * plan.max_score[t];
  }
  return plan.threshold - reduction;
}

/// Reusable per-probe scratch for ProbeOne: posting-list collection
/// buffers and the merger keep their capacity across probes, so
/// steady-state probing performs no heap allocations. One instance per
/// thread; a probe loop default-constructs it once outside the loop.
struct ProbeScratch {
  std::vector<PostingListView> lists;
  std::vector<double> probe_scores;
  std::vector<RecordId> id_offsets;  // chained probes only (ProbeChain)
  ListMerger merger;
};

/// The single-record probe at the heart of every index-probe algorithm:
/// gathers the posting lists of `probe`'s tokens from `index` (flat
/// InvertedIndex or DynamicIndex — both CollectProbeLists overloads
/// apply), merges them under the emit bound max(floor, required(id)),
/// and streams each surviving candidate (indexed entity id + exact
/// merged overlap) to `emit` in increasing id order.
///
/// `required` and `filter` follow the ListMerger contracts (may be
/// null; non-owning, must outlive the call). `gate` (optional) arms the
/// bitmap prefilter for this probe — it never changes which candidates
/// reach `emit` (see BitmapGate), only how much merge work they cost.
/// The caller verifies candidates — ProbeOne prunes, it does not decide
/// matches.
template <typename IndexT>
inline void ProbeOne(const IndexT& index, RecordView probe, double floor,
                     FunctionRef<double(RecordId)> required,
                     FunctionRef<bool(RecordId)> filter,
                     const MergeOptions& options, MergeStats* stats,
                     ProbeScratch* scratch,
                     FunctionRef<void(const MergeCandidate&)> emit,
                     const BitmapGate* gate = nullptr) {
  CollectProbeLists(index, probe, &scratch->lists, &scratch->probe_scores);
  scratch->merger.Reset(scratch->lists, scratch->probe_scores, floor,
                        required, filter, options, stats, gate);
  MergeCandidate candidate;
  while (scratch->merger.Next(&candidate)) emit(candidate);
}

/// One link of a segment-chained probe: an inverted index over a
/// segment's local id space plus the offset that maps its local ids into
/// the chain-wide id space. Chains are short (the serving tier's merge
/// policy keeps them logarithmic in corpus size).
struct ProbePart {
  const InvertedIndex* index = nullptr;
  RecordId id_offset = 0;
};

/// ProbeOne generalized to a chain of per-segment indexes over DISJOINT
/// id ranges: each token contributes one posting list per segment that
/// holds it, all merged as one id space via the ListMerger id-offset
/// path. Candidates stream to `emit` in increasing chain-wide id order,
/// exactly as if the segments had been concatenated into one index —
/// a candidate's overlap accumulates only its own segment's lists, so
/// the merged overlap equals the unsegmented one up to floating-point
/// reassociation, which the PruneBound slack absorbs before exact
/// verification. `required`/`filter` see chain-wide ids.
inline void ProbeChain(const std::vector<ProbePart>& parts, RecordView probe,
                       double floor, FunctionRef<double(RecordId)> required,
                       FunctionRef<bool(RecordId)> filter,
                       const MergeOptions& options, MergeStats* stats,
                       ProbeScratch* scratch,
                       FunctionRef<void(const MergeCandidate&)> emit,
                       const BitmapGate* gate = nullptr) {
  scratch->lists.clear();
  scratch->probe_scores.clear();
  scratch->id_offsets.clear();
  for (size_t i = 0; i < probe.size(); ++i) {
    for (const ProbePart& part : parts) {
      if (probe.token(i) >= part.index->token_capacity()) continue;
      PostingListView list = part.index->list(probe.token(i));
      if (list.empty()) continue;
      scratch->lists.push_back(list);
      scratch->probe_scores.push_back(probe.score(i));
      scratch->id_offsets.push_back(part.id_offset);
    }
  }
  scratch->merger.Reset(scratch->lists, scratch->probe_scores,
                        &scratch->id_offsets, floor, required, filter,
                        options, stats, gate);
  MergeCandidate candidate;
  while (scratch->merger.Next(&candidate)) emit(candidate);
}

/// Membership test against a sorted tombstone list (the serving tier's
/// deleted-record sets, global ids). Kept next to ProbeOne because every
/// probe path that serves an LSM tier must apply it to candidates BEFORE
/// verification: a tombstoned record is not a candidate at all, exactly
/// as if compaction had already dropped its postings. The empty-list
/// fast path keeps delete-free probing at its original cost.
inline bool IsTombstoned(const std::vector<RecordId>& tombstones,
                         RecordId global_id) {
  return !tombstones.empty() &&
         std::binary_search(tombstones.begin(), tombstones.end(), global_id);
}

/// Deterministic k-way merge of per-shard probe accumulators. Each part
/// must already be ordered under `less`, and parts must be pairwise
/// disjoint under it — token-range shards partition the record space, so
/// no two shards ever emit the same record. The merged order is then
/// unique regardless of shard count or which thread probed which shard,
/// which is what keeps sharded lookup output byte-identical to the
/// single-shard service. Linear in total results times shard count
/// (shard counts are small; no heap needed).
template <typename T, typename Less>
inline void MergeSortedParts(const std::vector<std::vector<T>>& parts,
                             Less less, std::vector<T>* out) {
  out->clear();
  size_t total = 0;
  for (const std::vector<T>& p : parts) total += p.size();
  out->reserve(total);
  std::vector<size_t> heads(parts.size(), 0);
  while (out->size() < total) {
    size_t best = parts.size();
    for (size_t i = 0; i < parts.size(); ++i) {
      if (heads[i] >= parts[i].size()) continue;
      if (best == parts.size() ||
          less(parts[i][heads[i]], parts[best][heads[best]])) {
        best = i;
      }
    }
    out->push_back(parts[best][heads[best]++]);
  }
}

}  // namespace probe_internal
}  // namespace ssjoin

#endif  // SSJOIN_CORE_PROBE_COMMON_H_
