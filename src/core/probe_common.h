#ifndef SSJOIN_CORE_PROBE_COMMON_H_
#define SSJOIN_CORE_PROBE_COMMON_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/predicate.h"
#include "data/corpus_stats.h"
#include "data/record.h"
#include "data/record_set.h"

namespace ssjoin {
namespace probe_internal {

/// Shared plumbing of the Probe-Count family, used by both the serial
/// ProbeJoin and the parallel probe driver so the two paths cannot drift.

/// Per-token upper bound on what a single shared occurrence of the token
/// can contribute to any pair's overlap: (max_r score(t, r))^2.
inline std::vector<double> MaxTokenScores(const RecordSet& records) {
  std::vector<double> max_score(records.vocabulary_size(), 0.0);
  for (const Record& r : records.records()) {
    for (size_t i = 0; i < r.size(); ++i) {
      max_score[r.token(i)] = std::max(max_score[r.token(i)], r.score(i));
    }
  }
  return max_score;
}

struct StopwordPlan {
  std::vector<bool> is_stop;       // per token
  std::vector<double> max_score;   // per token
  double threshold = 0;            // the predicate's constant T
};

/// Picks the maximal prefix of the most document-frequent tokens whose
/// total potential contribution stays below T (the paper's "top T-1
/// highest frequency words" generalized to weighted scores).
inline StopwordPlan BuildStopwordPlan(const RecordSet& records,
                                      double threshold) {
  StopwordPlan plan;
  plan.threshold = threshold;
  plan.max_score = MaxTokenScores(records);
  plan.is_stop.assign(records.vocabulary_size(), false);
  std::vector<TokenId> by_frequency =
      TopFrequentTokens(records, records.vocabulary_size());
  double sum = 0;
  for (TokenId t : by_frequency) {
    double contribution = plan.max_score[t] * plan.max_score[t];
    if (sum + contribution >= threshold) break;
    sum += contribution;
    plan.is_stop[t] = true;
  }
  return plan;
}

/// The record with stopword tokens removed, keeping the original norm and
/// text_length so index statistics and thresholds stay correct.
inline Record StripStopwords(const Record& r, const StopwordPlan& plan) {
  std::vector<std::pair<TokenId, double>> kept;
  kept.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    if (!plan.is_stop[r.token(i)]) kept.emplace_back(r.token(i), r.score(i));
  }
  Record out = Record::FromWeightedTokens(std::move(kept));
  out.set_norm(r.norm());
  out.set_text_length(r.text_length());
  return out;
}

/// Reduced threshold for probe r: T minus the potential carried by r's own
/// stopwords (Section 3.1).
inline double ReducedThreshold(const Record& r, const StopwordPlan& plan) {
  double reduction = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    TokenId t = r.token(i);
    if (plan.is_stop[t]) reduction += r.score(i) * plan.max_score[t];
  }
  return plan.threshold - reduction;
}

}  // namespace probe_internal
}  // namespace ssjoin

#endif  // SSJOIN_CORE_PROBE_COMMON_H_
