#ifndef SSJOIN_INDEX_COMPRESSED_POSTINGS_H_
#define SSJOIN_INDEX_COMPRESSED_POSTINGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "index/posting_list.h"

namespace ssjoin {

/// Immutable delta+varint compressed posting list. Section 4 notes that
/// standard IR index compression "would contribute to pushing the limit
/// up to which we can hold the index in memory" and is orthogonal to the
/// partitioning strategy; this codec quantifies that headroom (see
/// bench_micro) and backs the byte-accurate memory accounting used when
/// sizing ClusterMem batches.
class CompressedPostingList {
 public:
  CompressedPostingList() = default;

  /// Compresses `list`. Scores are quantized to float32.
  static CompressedPostingList FromPostingList(PostingListView list);
  static CompressedPostingList FromPostingList(const PostingList& list) {
    return FromPostingList(list.view());
  }

  /// Decompresses into a PostingList (scores widened back to double).
  PostingList Decode() const;

  size_t num_postings() const { return num_postings_; }

  /// Compressed footprint in bytes.
  size_t byte_size() const { return ids_.size() + scores_.size() * 4; }

  /// Uncompressed footprint (id + double score per posting).
  size_t uncompressed_byte_size() const {
    return num_postings_ * (sizeof(RecordId) + sizeof(double));
  }

 private:
  std::string ids_;            // delta+varint coded record ids
  std::vector<float> scores_;  // parallel quantized scores
  size_t num_postings_ = 0;
};

/// Whole-index compression statistics, reported by bench_micro.
struct IndexCompressionStats {
  uint64_t total_postings = 0;
  uint64_t compressed_bytes = 0;
  uint64_t uncompressed_bytes = 0;
  double ratio() const {
    return uncompressed_bytes == 0
               ? 1.0
               : static_cast<double>(compressed_bytes) /
                     static_cast<double>(uncompressed_bytes);
  }
};

/// Compresses every list of `index` and accumulates footprint statistics.
IndexCompressionStats CompressIndex(const InvertedIndex& index);

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_COMPRESSED_POSTINGS_H_
