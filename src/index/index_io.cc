#include "index/index_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'J', 'I'};

}  // namespace

void PutFloat(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

bool GetFloat(const std::string& data, size_t* offset, float* v) {
  if (*offset + sizeof(uint32_t) > data.size()) return false;
  uint32_t bits;
  std::memcpy(&bits, data.data() + *offset, sizeof(bits));
  *offset += sizeof(bits);
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

bool GetDouble(const std::string& data, size_t* offset, double* v) {
  if (*offset + sizeof(uint64_t) > data.size()) return false;
  uint64_t bits;
  std::memcpy(&bits, data.data() + *offset, sizeof(bits));
  *offset += sizeof(bits);
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

void PutFixed32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetFixed32(const std::string& data, size_t* offset, uint32_t* v) {
  if (*offset + sizeof(uint32_t) > data.size()) return false;
  std::memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return true;
}

void PutFixed64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetFixed64(const std::string& data, size_t* offset, uint64_t* v) {
  if (*offset + sizeof(uint64_t) > data.size()) return false;
  std::memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return true;
}

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  // Table-driven IEEE 802.3 CRC-32 (reflected polynomial 0xEDB88320),
  // built once. No external dependency (zlib may be absent).
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status ErrnoIOError(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string message = what + ": " + path;
  if (err != 0) {
    message += ": ";
    message += std::strerror(err);
  }
  return Status::IOError(std::move(message));
}

Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoIOError("cannot open directory for fsync", dir);
  // Some filesystems reject fsync on a directory fd (EINVAL); the rename
  // is still atomic there, just not guaranteed durable across power loss.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    Status status = ErrnoIOError("cannot fsync directory", dir);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoIOError("cannot open for write", tmp);
  auto fail = [&](const std::string& what) {
    Status status = ErrnoIOError(what, tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("short write");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("cannot fsync");
  if (::close(fd) != 0) {
    Status status = ErrnoIOError("cannot close", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = ErrnoIOError("cannot rename into place", path);
    ::unlink(tmp.c_str());
    return status;
  }
  return SyncParentDirectory(path);
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoIOError("cannot open for read", path);
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoIOError("read failed", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

Status SaveIndex(const InvertedIndex& index, const std::string& path) {
  std::string buffer(kMagic, sizeof(kMagic));
  PutVarint64(&buffer, index.num_entities());
  // min_norm may be +inf for an empty index; encode the raw double bits.
  PutDouble(&buffer, index.min_norm());

  // The flat layout iterates tokens in increasing order, which is already
  // the canonical file order (byte-identical across runs).
  PutVarint64(&buffer, index.num_tokens());
  index.ForEachList([&buffer](TokenId token, PostingListView list) {
    PutVarint32(&buffer, token);
    PutVarint32(&buffer, static_cast<uint32_t>(list.size()));
    uint32_t prev = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      PutVarint32(&buffer, list[i].id - prev);
      prev = list[i].id;
    }
    for (size_t i = 0; i < list.size(); ++i) {
      PutFloat(&buffer, static_cast<float>(list[i].score));
    }
  });

  // tmp + fsync + rename: a crash or full disk mid-save must never
  // destroy the previous good index at `path`.
  return WriteFileAtomic(path, buffer);
}

Result<InvertedIndex> LoadIndex(const std::string& path) {
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad magic in index file: " + path);
  }
  size_t offset = sizeof(kMagic);
  uint64_t num_entities = 0;
  double min_norm = std::numeric_limits<double>::infinity();
  uint64_t num_lists = 0;
  if (!GetVarint64(data, &offset, &num_entities) ||
      !GetDouble(data, &offset, &min_norm) ||
      !GetVarint64(data, &offset, &num_lists)) {
    return Status::IOError("truncated index header: " + path);
  }

  // RecordIds are 32-bit; a larger entity count cannot have been written
  // by SaveIndex and would poison the id range checks below.
  if (num_entities > std::numeric_limits<uint32_t>::max()) {
    return Status::IOError("implausible entity count in index file: " + path);
  }
  // Token ids size the counts vector directly, so an adversarial value
  // must be rejected before it turns into a multi-gigabyte allocation.
  constexpr uint32_t kMaxTokenId = 1u << 30;

  // Pass 1: validate the full structure and collect per-token posting
  // counts so the flat index can carve its extents before any posting
  // lands (and before trusting the file enough to allocate for it).
  const size_t lists_offset = offset;
  std::vector<uint64_t> counts;
  bool have_prev_token = false;
  uint32_t prev_token = 0;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, &offset, &token) ||
        !GetVarint32(data, &offset, &count)) {
      return Status::IOError("truncated list header: " + path);
    }
    if (token > kMaxTokenId) {
      return Status::IOError("implausible token id in index file: " + path);
    }
    // SaveIndex emits tokens in strictly increasing order; anything else
    // is corruption (and would also mask duplicate lists).
    if (have_prev_token && token <= prev_token) {
      return Status::IOError("posting lists out of order in index file: " +
                             path);
    }
    prev_token = token;
    have_prev_token = true;
    if (count == 0) {
      return Status::IOError("empty posting list in index file: " + path);
    }
    if (count > num_entities) {
      return Status::IOError("posting count exceeds entity count: " + path);
    }
    if (token >= counts.size()) counts.resize(token + 1, 0);
    counts[token] = count;
    uint64_t id = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, &offset, &delta)) {
        return Status::IOError("truncated posting ids: " + path);
      }
      // Ids are strictly increasing within a list (delta 0 after the
      // first entry would break the galloping-search invariant).
      if (i > 0 && delta == 0) {
        return Status::IOError("non-monotone posting ids in index file: " +
                               path);
      }
      id += delta;
    }
    if (id >= num_entities) {
      return Status::IOError("posting id out of range in index file: " + path);
    }
    if (offset + count * sizeof(uint32_t) > data.size()) {
      return Status::IOError("truncated posting scores: " + path);
    }
    offset += count * sizeof(uint32_t);
  }
  if (offset != data.size()) {
    return Status::IOError("trailing bytes in index file: " + path);
  }

  // Pass 2: decode postings straight into the planned extents.
  InvertedIndex index;
  index.Plan(counts);
  offset = lists_offset;
  std::vector<uint32_t> ids;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, &offset, &token) ||
        !GetVarint32(data, &offset, &count)) {
      return Status::IOError("truncated list header: " + path);
    }
    ids.assign(count, 0);
    uint32_t prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, &offset, &delta)) {
        return Status::IOError("truncated posting ids: " + path);
      }
      prev += delta;
      ids[i] = prev;
    }
    for (uint32_t i = 0; i < count; ++i) {
      float score = 0;
      if (!GetFloat(data, &offset, &score)) {
        return Status::IOError("truncated posting scores: " + path);
      }
      if (!std::isfinite(score)) {
        return Status::IOError("non-finite posting score in index file: " +
                               path);
      }
      index.AppendPosting(token, ids[i], score);
    }
  }
  index.RestoreStats(num_entities, min_norm);
  return index;
}

}  // namespace ssjoin
