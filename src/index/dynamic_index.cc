#include "index/dynamic_index.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

void DynamicIndex::TrackEntity(RecordId id, double norm) {
  if (max_entity_id_ == std::numeric_limits<RecordId>::max() ||
      id > max_entity_id_) {
    max_entity_id_ = id;
  }
  num_entities_ = std::max<size_t>(num_entities_, max_entity_id_ + 1);
  min_norm_ = std::min(min_norm_, norm);
}

void DynamicIndex::Insert(RecordId id, RecordView record) {
  TrackEntity(id, record.norm());
  for (size_t i = 0; i < record.size(); ++i) {
    lists_[record.token(i)].Append(id, record.score(i));
    ++total_postings_;
  }
}

void DynamicIndex::InsertOrUpdateMax(RecordId id, RecordView record,
                                     double norm) {
  TrackEntity(id, norm);
  for (size_t i = 0; i < record.size(); ++i) {
    if (lists_[record.token(i)].InsertOrUpdateMax(id, record.score(i))) {
      ++total_postings_;
    }
  }
}

}  // namespace ssjoin
