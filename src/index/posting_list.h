#ifndef SSJOIN_INDEX_POSTING_LIST_H_
#define SSJOIN_INDEX_POSTING_LIST_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "data/record_view.h"

namespace ssjoin {

/// One entry of a posting list: a record (or cluster) id and the score of
/// the list's token in that record, i.e. the framework's score(w, s).
struct Posting {
  RecordId id;
  double score;
};

/// A non-owning, trivially-copyable view of a sorted-by-id posting run —
/// either one token's extent inside the flat InvertedIndex buffer or a
/// whole dynamic PostingList — together with the per-list statistics
/// MergeOptGen needs (length and max score, Equation 3's score(w, I)).
/// This is what the merge machinery consumes, so flat and dynamic indexes
/// share one probe path.
class PostingListView {
 public:
  constexpr PostingListView() = default;
  constexpr PostingListView(const Posting* data, size_t size,
                            double max_score)
      : data_(data), size_(size), max_score_(max_score) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Posting& operator[](size_t i) const { return data_[i]; }

  /// Max score over postings; 0 when empty.
  double max_score() const { return max_score_; }

  /// Doubling (galloping) binary search for `id` starting at position
  /// `start`: the search primitive of MergeOpt step 10. Returns the
  /// posting's position, or SIZE_MAX if absent. `probe_cost` (optional)
  /// is incremented by the number of comparisons, for instrumentation.
  size_t GallopFind(RecordId id, size_t start = 0,
                    uint64_t* probe_cost = nullptr) const;

  /// Doubling search for the first position at or after `start` whose
  /// posting id is >= `id`. Returns size() when no such posting exists.
  /// This is the primitive MergeOpt uses so the caller can both test
  /// membership and carry the position forward as the next search hint
  /// (candidates arrive in increasing id order).
  size_t GallopLowerBound(RecordId id, size_t start = 0,
                          uint64_t* probe_cost = nullptr) const;

  /// First position with posting id >= `id` (classic lower bound), used by
  /// merge frontiers.
  size_t LowerBound(RecordId id) const;

 private:
  const Posting* data_ = nullptr;
  size_t size_ = 0;
  double max_score_ = 0;
};

static_assert(std::is_trivially_copyable_v<PostingListView>);

/// An owning, dynamically growing posting list, used where membership is
/// not known up front (the cluster-level and member-level indexes of
/// Probe-Cluster / ClusterMem, streaming insertion). Batch algorithms use
/// the flat buffer inside InvertedIndex instead.
class PostingList {
 public:
  PostingList() = default;

  /// Appends a posting with id strictly greater than all existing ids
  /// (the common case: records are inserted in scan order).
  void Append(RecordId id, double score);

  /// Inserts in sorted position, or raises an existing posting's score to
  /// max(old, score). Used by the cluster-level index, where an old
  /// cluster can acquire a new token after younger clusters already
  /// appear in the list. O(size) worst case, O(1) when appending.
  /// Returns true if a new posting was inserted (vs. updated in place).
  bool InsertOrUpdateMax(RecordId id, double score);

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }
  const Posting& operator[](size_t i) const { return postings_[i]; }
  const std::vector<Posting>& postings() const { return postings_; }

  /// Max score over postings; 0 when empty.
  double max_score() const { return max_score_; }

  /// View over the current contents; valid until the next mutation.
  PostingListView view() const {
    return PostingListView(postings_.data(), postings_.size(), max_score_);
  }

  size_t GallopFind(RecordId id, size_t start = 0,
                    uint64_t* probe_cost = nullptr) const {
    return view().GallopFind(id, start, probe_cost);
  }
  size_t GallopLowerBound(RecordId id, size_t start = 0,
                          uint64_t* probe_cost = nullptr) const {
    return view().GallopLowerBound(id, start, probe_cost);
  }
  size_t LowerBound(RecordId id) const { return view().LowerBound(id); }

 private:
  std::vector<Posting> postings_;
  double max_score_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_POSTING_LIST_H_
