#ifndef SSJOIN_INDEX_POSTING_LIST_H_
#define SSJOIN_INDEX_POSTING_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/record.h"

namespace ssjoin {

/// One entry of a posting list: a record (or cluster) id and the score of
/// the list's token in that record, i.e. the framework's score(w, s).
struct Posting {
  RecordId id;
  double score;
};

/// A sorted-by-id posting list with the per-list statistics MergeOptGen
/// needs: length and max score (Equation 3's score(w, I), maintained
/// incrementally as postings arrive).
class PostingList {
 public:
  PostingList() = default;

  /// Appends a posting with id strictly greater than all existing ids
  /// (the common case: records are inserted in scan order).
  void Append(RecordId id, double score);

  /// Inserts in sorted position, or raises an existing posting's score to
  /// max(old, score). Used by the cluster-level index, where an old
  /// cluster can acquire a new token after younger clusters already
  /// appear in the list. O(size) worst case, O(1) when appending.
  /// Returns true if a new posting was inserted (vs. updated in place).
  bool InsertOrUpdateMax(RecordId id, double score);

  size_t size() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }
  const Posting& operator[](size_t i) const { return postings_[i]; }
  const std::vector<Posting>& postings() const { return postings_; }

  /// Max score over postings; 0 when empty.
  double max_score() const { return max_score_; }

  /// Doubling (galloping) binary search for `id` starting at position
  /// `start`: the search primitive of MergeOpt step 10. Returns the
  /// posting's position, or SIZE_MAX if absent. `probe_cost` (optional)
  /// is incremented by the number of comparisons, for instrumentation.
  size_t GallopFind(RecordId id, size_t start = 0,
                    uint64_t* probe_cost = nullptr) const;

  /// Doubling search for the first position at or after `start` whose
  /// posting id is >= `id`. Returns size() when no such posting exists.
  /// This is the primitive MergeOpt uses so the caller can both test
  /// membership and carry the position forward as the next search hint
  /// (candidates arrive in increasing id order).
  size_t GallopLowerBound(RecordId id, size_t start = 0,
                          uint64_t* probe_cost = nullptr) const;

  /// First position with posting id >= `id` (classic lower bound), used by
  /// merge frontiers.
  size_t LowerBound(RecordId id) const;

 private:
  std::vector<Posting> postings_;
  double max_score_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_POSTING_LIST_H_
