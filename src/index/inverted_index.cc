#include "index/inverted_index.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

void InvertedIndex::Plan(const std::vector<uint64_t>& counts) {
  SSJOIN_CHECK(!planned_) << "InvertedIndex::Plan called twice";
  planned_ = true;
  begin_.resize(counts.size() + 1);
  size_t total = 0;
  for (size_t t = 0; t < counts.size(); ++t) {
    begin_[t] = total;
    total += counts[t];
  }
  begin_[counts.size()] = total;
  postings_.resize(total);
  size_.assign(counts.size(), 0);
  max_score_.assign(counts.size(), 0.0);
}

void InvertedIndex::PlanFromRecordsSubset(
    const RecordSet& records, const std::vector<RecordId>& member_ids) {
  std::vector<uint64_t> counts(records.vocabulary_size(), 0);
  for (RecordId id : member_ids) {
    const RecordView r = records.record(id);
    for (size_t i = 0; i < r.size(); ++i) ++counts[r.token(i)];
  }
  Plan(counts);
}

InvertedIndex InvertedIndex::MakeView(ViewSpec spec) {
  SSJOIN_CHECK(spec.begin != nullptr && spec.size != nullptr &&
               spec.max_score != nullptr)
      << "view spec missing extent tables";
  SSJOIN_CHECK(spec.postings != nullptr || spec.begin[spec.vocabulary_size] == 0)
      << "view spec missing posting buffer";
  InvertedIndex index;
  index.view_postings_ = spec.postings;
  index.view_begin_ = spec.begin;
  index.view_size_ = spec.size;
  index.view_max_score_ = spec.max_score;
  index.view_vocabulary_size_ = spec.vocabulary_size;
  index.backing_ = std::move(spec.backing);
  index.num_nonempty_tokens_ = spec.num_nonempty_tokens;
  index.num_entities_ = spec.num_entities;
  if (spec.num_entities > 0) {
    index.max_entity_id_ = static_cast<RecordId>(spec.num_entities - 1);
  }
  index.min_norm_ = spec.min_norm;
  index.total_postings_ = spec.total_postings;
  index.planned_ = true;  // frozen: Plan would be a second plan
  return index;
}

void InvertedIndex::TrackEntity(RecordId id, double norm) {
  if (max_entity_id_ == std::numeric_limits<RecordId>::max() ||
      id > max_entity_id_) {
    max_entity_id_ = id;
  }
  num_entities_ = std::max<size_t>(num_entities_, max_entity_id_ + 1);
  min_norm_ = std::min(min_norm_, norm);
}

void InvertedIndex::AppendPosting(TokenId t, RecordId id, double score) {
  SSJOIN_CHECK(!is_view()) << "InvertedIndex::AppendPosting on a view index";
  SSJOIN_DCHECK(planned_ && t < size_.size());
  size_t pos = begin_[t] + size_[t];
  SSJOIN_DCHECK(pos < begin_[t + 1]) << "extent overflow for token " << t;
  SSJOIN_DCHECK(size_[t] == 0 || postings_[pos - 1].id < id);
  postings_[pos] = {id, score};
  if (size_[t] == 0) ++num_nonempty_tokens_;
  ++size_[t];
  max_score_[t] = std::max(max_score_[t], score);
  ++total_postings_;
}

void InvertedIndex::Insert(RecordId id, RecordView record,
                           const std::vector<bool>* skip_token) {
  TrackEntity(id, record.norm());
  for (size_t i = 0; i < record.size(); ++i) {
    TokenId t = record.token(i);
    if (skip_token != nullptr && (*skip_token)[t]) continue;
    AppendPosting(t, id, record.score(i));
  }
}

void InvertedIndex::RestoreStats(size_t num_entities, double min_norm) {
  num_entities_ = num_entities;
  if (num_entities > 0) {
    max_entity_id_ = static_cast<RecordId>(num_entities - 1);
  }
  min_norm_ = min_norm;
}

}  // namespace ssjoin
