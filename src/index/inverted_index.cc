#include "index/inverted_index.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

void InvertedIndex::TrackEntity(RecordId id, double norm) {
  if (max_entity_id_ == std::numeric_limits<RecordId>::max() ||
      id > max_entity_id_) {
    max_entity_id_ = id;
  }
  num_entities_ = std::max<size_t>(num_entities_, max_entity_id_ + 1);
  min_norm_ = std::min(min_norm_, norm);
}

void InvertedIndex::Insert(RecordId id, const Record& record) {
  TrackEntity(id, record.norm());
  for (size_t i = 0; i < record.size(); ++i) {
    lists_[record.token(i)].Append(id, record.score(i));
    ++total_postings_;
  }
}

void InvertedIndex::RestoreList(TokenId t, PostingList list) {
  auto it = lists_.find(t);
  if (it != lists_.end()) {
    total_postings_ -= it->second.size();
    it->second = std::move(list);
    total_postings_ += it->second.size();
    return;
  }
  total_postings_ += list.size();
  lists_.emplace(t, std::move(list));
}

void InvertedIndex::RestoreStats(size_t num_entities, double min_norm) {
  num_entities_ = num_entities;
  if (num_entities > 0) {
    max_entity_id_ = static_cast<RecordId>(num_entities - 1);
  }
  min_norm_ = min_norm;
}

void InvertedIndex::InsertOrUpdateMax(RecordId id, const Record& record,
                                      double norm) {
  TrackEntity(id, norm);
  for (size_t i = 0; i < record.size(); ++i) {
    if (lists_[record.token(i)].InsertOrUpdateMax(id, record.score(i))) {
      ++total_postings_;
    }
  }
}

}  // namespace ssjoin
