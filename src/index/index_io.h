#ifndef SSJOIN_INDEX_INDEX_IO_H_
#define SSJOIN_INDEX_INDEX_IO_H_

#include <string>

#include "index/inverted_index.h"
#include "util/status.h"

namespace ssjoin {

/// Index persistence: build an inverted index once, reuse it across
/// processes ("probe many" workloads — a reference set that incoming
/// records are matched against). Posting ids are delta+varint coded and
/// scores quantized to float32, the same layout CompressedPostingList
/// uses, so on-disk size tracks the Section 4 compression ratios.
///
/// Note: score quantization means a loaded index is bit-identical for
/// unit-score predicates and accurate to float precision for weighted
/// ones; candidate generation tolerates this through the standard prune
/// slack, and verification always recomputes on full-precision records.

/// Writes `index` to `path`, replacing any existing file.
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Reads an index previously written by SaveIndex.
Result<InvertedIndex> LoadIndex(const std::string& path);

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_INDEX_IO_H_
