#ifndef SSJOIN_INDEX_INDEX_IO_H_
#define SSJOIN_INDEX_INDEX_IO_H_

#include <cstdint>
#include <string>

#include "index/inverted_index.h"
#include "util/status.h"

namespace ssjoin {

/// Index persistence: build an inverted index once, reuse it across
/// processes ("probe many" workloads — a reference set that incoming
/// records are matched against). Posting ids are delta+varint coded and
/// scores quantized to float32, the same layout CompressedPostingList
/// uses, so on-disk size tracks the Section 4 compression ratios.
///
/// Note: score quantization means a loaded index is bit-identical for
/// unit-score predicates and accurate to float precision for weighted
/// ones; candidate generation tolerates this through the standard prune
/// slack, and verification always recomputes on full-precision records.

/// Writes `index` to `path`, replacing any existing file. The write is
/// atomic and durable: bytes land in `<path>.tmp`, are fsynced, and the
/// tmp file is renamed over `path` — a crash or full disk mid-save leaves
/// any previous index file untouched.
Status SaveIndex(const InvertedIndex& index, const std::string& path);

/// Reads an index previously written by SaveIndex.
Result<InvertedIndex> LoadIndex(const std::string& path);

// ---------------------------------------------------------------------
// Shared binary-framing helpers. index_io established the serialization
// idiom (varint ids, fixed-width IEEE floats); the serving tier's
// write-ahead log and checkpoint files (src/serve/wal, src/serve/
// checkpoint) reuse these exact encoders so every on-disk artifact in
// the system frames bytes the same way.

/// Appends the IEEE-754 bits of `v` (4 bytes, host endian).
void PutFloat(std::string* out, float v);
/// Decodes a float at data[*offset]; advances *offset. False if short.
bool GetFloat(const std::string& data, size_t* offset, float* v);

/// Appends the IEEE-754 bits of `v` (8 bytes, host endian).
void PutDouble(std::string* out, double v);
/// Decodes a double at data[*offset]; advances *offset. False if short.
bool GetDouble(const std::string& data, size_t* offset, double* v);

/// Appends `v` as 4 little-endian-ordered raw bytes (host endian).
void PutFixed32(std::string* out, uint32_t v);
/// Decodes a fixed32 at data[*offset]; advances *offset. False if short.
bool GetFixed32(const std::string& data, size_t* offset, uint32_t* v);

/// Appends `v` as 8 raw bytes (host endian). Used for the fixed-width
/// token-bitmap words of segment files.
void PutFixed64(std::string* out, uint64_t v);
/// Decodes a fixed64 at data[*offset]; advances *offset. False if short.
bool GetFixed64(const std::string& data, size_t* offset, uint64_t* v);

/// CRC-32 (IEEE 802.3 polynomial) of `n` bytes — the frame checksum of
/// the WAL and checkpoint formats. `seed` chains incremental updates
/// (pass a previous return value to continue a running checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// ---------------------------------------------------------------------
// Shared file-I/O helpers with crash-safety and errno context.

/// IOError carrying strerror(errno) context, so operators can tell
/// ENOSPC from EACCES: "<what>: <path>: <strerror>". Capture errno
/// immediately after the failing call.
Status ErrnoIOError(const std::string& what, const std::string& path);

/// Writes `bytes` to `path` all-or-nothing: the data goes to
/// `<path>.tmp`, is fsynced, atomically renamed over `path`, and the
/// parent directory is fsynced so the rename itself is durable. On any
/// failure the previous content of `path` is untouched and the tmp file
/// is removed.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Reads the whole of `path` into a string (errno-context errors).
Result<std::string> ReadFileToString(const std::string& path);

/// fsyncs the directory containing `path` (making a rename/create of
/// `path` durable). No-op-equivalent on filesystems that do not support
/// directory fsync.
Status SyncParentDirectory(const std::string& path);

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_INDEX_IO_H_
