#include "index/compressed_postings.h"

#include "util/logging.h"
#include "util/varint.h"

namespace ssjoin {

CompressedPostingList CompressedPostingList::FromPostingList(
    PostingListView list) {
  CompressedPostingList out;
  out.num_postings_ = list.size();
  out.scores_.reserve(list.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < list.size(); ++i) {
    const Posting& p = list[i];
    SSJOIN_DCHECK(i == 0 || p.id >= prev);
    PutVarint32(&out.ids_, p.id - prev);
    prev = p.id;
    out.scores_.push_back(static_cast<float>(p.score));
  }
  return out;
}

PostingList CompressedPostingList::Decode() const {
  PostingList out;
  size_t offset = 0;
  uint32_t id = 0;
  for (size_t i = 0; i < num_postings_; ++i) {
    uint32_t delta = 0;
    bool ok = GetVarint32(ids_, &offset, &delta);
    SSJOIN_CHECK(ok) << "corrupt compressed posting list";
    id += delta;
    // Append allows only strictly increasing ids; duplicate-id postings
    // cannot occur because FromPostingList consumed a sorted unique list.
    out.Append(id, scores_[i]);
  }
  return out;
}

IndexCompressionStats CompressIndex(const InvertedIndex& index) {
  IndexCompressionStats stats;
  index.ForEachList([&stats](TokenId /*t*/, PostingListView list) {
    CompressedPostingList compressed =
        CompressedPostingList::FromPostingList(list);
    stats.total_postings += compressed.num_postings();
    stats.compressed_bytes += compressed.byte_size();
    stats.uncompressed_bytes += compressed.uncompressed_byte_size();
  });
  return stats;
}

}  // namespace ssjoin
