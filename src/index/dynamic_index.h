#ifndef SSJOIN_INDEX_DYNAMIC_INDEX_H_
#define SSJOIN_INDEX_DYNAMIC_INDEX_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "data/record_view.h"
#include "index/posting_list.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// Token -> posting-list index for entity populations that are NOT known
/// up front, where the flat CSR InvertedIndex cannot pre-carve extents:
///
///   * cluster-level: InsertOrUpdateMax() keeps one posting per cluster
///     with score(w, C) = max over member records (Section 5.1.3), and an
///     old cluster can acquire new tokens at any time;
///   * member-level: Probe-Cluster / ClusterMem grow one small index per
///     cluster as members arrive;
///   * streaming: records are indexed as they stream in.
///
/// Storage is sparse (hash map of growable lists): the cluster workloads
/// keep many small indexes over a large shared token space, where dense
/// per-token arrays would cost O(vocabulary) memory per index.
class DynamicIndex {
 public:
  DynamicIndex() = default;

  DynamicIndex(const DynamicIndex&) = delete;
  DynamicIndex& operator=(const DynamicIndex&) = delete;
  DynamicIndex(DynamicIndex&&) = default;
  DynamicIndex& operator=(DynamicIndex&&) = default;

  /// Appends all postings of `record` under id `id`. Requires `id` to be
  /// strictly greater than any previously inserted id.
  void Insert(RecordId id, RecordView record);

  /// Cluster-mode insertion: merges `record`'s tokens into entity `id`'s
  /// postings, raising existing scores to the max. `norm` is the entity's
  /// current norm (||C|| = min member norm, supplied by the caller).
  void InsertOrUpdateMax(RecordId id, RecordView record, double norm);

  /// The posting list of token `t`, or nullptr if no record contains it.
  const PostingList* list(TokenId t) const {
    auto it = lists_.find(t);
    return it == lists_.end() ? nullptr : &it->second;
  }

  /// Invokes `fn(token, list)` for every non-empty list, in unspecified
  /// order.
  void ForEachList(
      const std::function<void(TokenId, const PostingList&)>& fn) const {
    for (const auto& [token, list] : lists_) fn(token, list);
  }

  /// Number of distinct tokens with a posting list.
  size_t num_tokens() const { return lists_.size(); }

  /// Number of Insert/InsertOrUpdateMax target entities seen (records or
  /// clusters).
  size_t num_entities() const { return num_entities_; }

  /// Minimum norm over all inserted records; +inf when empty. This is the
  /// minS of Section 5.1.1.
  double min_norm() const { return min_norm_; }

  /// Total postings currently stored (index size in word occurrences).
  uint64_t total_postings() const { return total_postings_; }

 private:
  void TrackEntity(RecordId id, double norm);

  std::unordered_map<TokenId, PostingList> lists_;
  size_t num_entities_ = 0;
  RecordId max_entity_id_ = std::numeric_limits<RecordId>::max();  // none yet
  double min_norm_ = std::numeric_limits<double>::infinity();
  uint64_t total_postings_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_DYNAMIC_INDEX_H_
