#ifndef SSJOIN_INDEX_INVERTED_INDEX_H_
#define SSJOIN_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "index/posting_list.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// Token -> posting-list inverted index, the central data structure of
/// every algorithm in the paper (Section 2.1). Supports both usage modes:
///
///   * record-level: Insert() appends each record's postings in scan
///     order (ids strictly increasing within each list);
///   * cluster-level: InsertOrUpdateMax() keeps one posting per cluster
///     with score(w, C) = max over member records (Section 5.1.3).
///
/// It also maintains the aggregate statistics the generalized MergeOpt
/// needs: the minimum record norm in the index (for T(r, I)) and the
/// total number of postings (the W of Section 4's memory model).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Appends all postings of `record` under id `id`. Requires `id` to be
  /// strictly greater than any previously inserted id.
  void Insert(RecordId id, const Record& record);

  /// Cluster-mode insertion: merges `record`'s tokens into entity `id`'s
  /// postings, raising existing scores to the max. `norm` is the entity's
  /// current norm (||C|| = min member norm, supplied by the caller).
  void InsertOrUpdateMax(RecordId id, const Record& record, double norm);

  /// The posting list of token `t`, or nullptr if no record contains it.
  /// Storage is sparse (hash map): Probe-Cluster keeps one small member
  /// index per cluster over a large shared token space, where dense
  /// per-token arrays would cost O(vocabulary) memory per cluster.
  const PostingList* list(TokenId t) const {
    auto it = lists_.find(t);
    return it == lists_.end() ? nullptr : &it->second;
  }

  /// Invokes `fn(token, list)` for every non-empty list, in unspecified
  /// order. Used by whole-index consumers (Pair-Count, compression).
  void ForEachList(
      const std::function<void(TokenId, const PostingList&)>& fn) const {
    for (const auto& [token, list] : lists_) fn(token, list);
  }

  /// Number of distinct tokens with a posting list.
  size_t num_tokens() const { return lists_.size(); }

  /// Number of Insert/InsertOrUpdateMax target entities seen (records or
  /// clusters).
  size_t num_entities() const { return num_entities_; }

  /// Minimum norm over all inserted records; +inf when empty. This is the
  /// minS of Section 5.1.1.
  double min_norm() const { return min_norm_; }

  /// Total postings currently stored (index size in word occurrences).
  uint64_t total_postings() const { return total_postings_; }

  /// Restores a deserialized list (used by index_io); replaces any
  /// existing list for `t` and accounts its postings.
  void RestoreList(TokenId t, PostingList list);

  /// Restores the aggregate statistics a serialized index carries.
  void RestoreStats(size_t num_entities, double min_norm);

 private:
  void TrackEntity(RecordId id, double norm);

  std::unordered_map<TokenId, PostingList> lists_;
  size_t num_entities_ = 0;
  RecordId max_entity_id_ = std::numeric_limits<RecordId>::max();  // none yet
  double min_norm_ = std::numeric_limits<double>::infinity();
  uint64_t total_postings_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_INVERTED_INDEX_H_
