#ifndef SSJOIN_INDEX_INVERTED_INDEX_H_
#define SSJOIN_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "data/record_set.h"
#include "data/record_view.h"
#include "index/posting_list.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// Token -> posting-list inverted index over a known record population,
/// the central data structure of every batch algorithm in the paper
/// (Section 2.1). Postings live in ONE contiguous buffer with per-token
/// extents (a CSR layout over tokens), so whole-index scans and probe
/// loops stream flat memory instead of chasing a hash map of vectors.
///
/// Usage protocol:
///   1. Plan() once with per-token posting counts (usually the corpus
///      document frequencies via PlanFromRecords) — this carves the
///      extents. Counts may overestimate (e.g. stopword-skipped inserts);
///      unfilled capacity is wasted space, never an error.
///   2. Insert() each record with strictly increasing entity id. Both
///      two-pass (index everything, then probe) and online (probe, then
///      insert) construction work, because every record is known up
///      front even when insertion is interleaved with probing.
///
/// It also maintains the aggregate statistics the generalized MergeOpt
/// needs: the minimum record norm in the index (for T(r, I)) and the
/// total number of postings (the W of Section 4's memory model).
///
/// For indexes whose membership is NOT known up front (cluster summaries
/// under InsertOrUpdateMax, lazily grown member indexes, streaming
/// insertion) use DynamicIndex instead.
///
/// Like RecordSet, two storage modes share this one type (see DESIGN.md
/// "Out-of-core segments"): OWNED (default, built via Plan/Insert) and
/// VIEW (MakeView), where the begin/size/max_score extent tables and the
/// flat posting buffer are BORROWED pointers into an immutable mapped
/// `.sseg` body. View indexes are frozen — Plan/Insert/AppendPosting are
/// illegal — and list()/ForEachList behave identically in both modes.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Carves the per-token extents: token t gets counts[t] posting slots.
  /// Must be called exactly once, before any insertion.
  void Plan(const std::vector<uint64_t>& counts);

  /// Plans from the document frequencies of `records` — exact when every
  /// record is inserted exactly once (any order), an upper bound when
  /// some tokens are skipped (stopword mode).
  void PlanFromRecords(const RecordSet& records) {
    Plan(records.doc_frequencies());
  }

  /// Plans extents for the subset `member_ids` of `records` — the shard
  /// carving of the serving layer, where each token-range shard indexes
  /// only the records routed to it under local ids. Extents span the full
  /// vocabulary of `records` (tokens absent from the subset get empty
  /// extents, which list() and probes already treat as "no postings"),
  /// and counts are exact when every member is inserted exactly once.
  void PlanFromRecordsSubset(const RecordSet& records,
                             const std::vector<RecordId>& member_ids);

  /// Appends all postings of `record` under id `id`. Requires `id` to be
  /// strictly greater than any previously inserted id. When `skip_token`
  /// is non-null, tokens with skip_token[t] set are not indexed (the
  /// stopword filter applied at insertion instead of record copies).
  void Insert(RecordId id, RecordView record,
              const std::vector<bool>* skip_token = nullptr);

  /// Appends one posting to token `t`'s extent (ids strictly increasing
  /// within the extent). Low-level primitive for Insert and restoration.
  void AppendPosting(TokenId t, RecordId id, double score);

  /// Borrowed state of a view-mode index; see MakeView.
  struct ViewSpec {
    const Posting* postings = nullptr;   // borrowed; begin[vocab] slots
    const uint64_t* begin = nullptr;     // borrowed; vocab + 1 extents
    const uint32_t* size = nullptr;      // borrowed; live count per token
    const double* max_score = nullptr;   // borrowed; per-token max score
    uint64_t vocabulary_size = 0;
    uint64_t num_nonempty_tokens = 0;
    uint64_t num_entities = 0;
    double min_norm = std::numeric_limits<double>::infinity();
    uint64_t total_postings = 0;
    std::shared_ptr<const void> backing;  // keeps borrowed memory alive
  };

  /// Builds a frozen view-mode index over extent tables and a posting
  /// buffer the caller borrowed (typically a mapped segment file, kept
  /// alive by `spec.backing`). Plan/Insert/AppendPosting are illegal on
  /// the result; list()/ForEachList work unchanged.
  static InvertedIndex MakeView(ViewSpec spec);

  /// Whether this index borrows its extents (MakeView) instead of owning
  /// them.
  bool is_view() const { return view_begin_ != nullptr; }

  /// The posting run of token `t`; empty view when no record contains it.
  PostingListView list(TokenId t) const {
    if (view_begin_ != nullptr) {
      if (t >= view_vocabulary_size_ || view_size_[t] == 0) {
        return PostingListView();
      }
      return PostingListView(view_postings_ + view_begin_[t], view_size_[t],
                             view_max_score_[t]);
    }
    if (t >= size_.size() || size_[t] == 0) return PostingListView();
    return PostingListView(postings_.data() + begin_[t], size_[t],
                           max_score_[t]);
  }

  /// Invokes `fn(token, list)` for every non-empty list, in increasing
  /// token order (the natural order of the flat layout). Used by
  /// whole-index consumers (Pair-Count, compression, serialization).
  template <typename Fn>
  void ForEachList(Fn&& fn) const {
    const size_t vocab = token_capacity();
    for (TokenId t = 0; t < vocab; ++t) {
      PostingListView view = list(t);
      if (!view.empty()) fn(t, view);
    }
  }

  /// Number of distinct tokens with a non-empty posting list.
  size_t num_tokens() const { return num_nonempty_tokens_; }

  /// Number of tokens with planned extents (the planning vocabulary).
  size_t token_capacity() const {
    return view_begin_ != nullptr
               ? static_cast<size_t>(view_vocabulary_size_)
               : size_.size();
  }

  /// Extent-table accessors for the segment writer (valid in both modes):
  /// begin is the planned-capacity offset of token `t`'s extent in the
  /// flat posting buffer, size the live posting count within it.
  uint64_t extent_begin(TokenId t) const {
    return view_begin_ != nullptr ? view_begin_[t]
                                  : static_cast<uint64_t>(begin_[t]);
  }
  uint32_t extent_size(TokenId t) const {
    return view_begin_ != nullptr ? view_size_[t] : size_[t];
  }
  double extent_max_score(TokenId t) const {
    return view_begin_ != nullptr ? view_max_score_[t] : max_score_[t];
  }
  /// The flat posting buffer (extent_begin(vocab) slots, unfilled slots
  /// zeroed in owned mode by Plan's value-initializing resize).
  const Posting* postings_buffer() const {
    return view_begin_ != nullptr ? view_postings_ : postings_.data();
  }
  /// Total planned posting capacity == extent_begin(token_capacity()).
  uint64_t postings_capacity() const {
    return view_begin_ != nullptr ? view_begin_[view_vocabulary_size_]
                                  : static_cast<uint64_t>(postings_.size());
  }

  /// Number of Insert target entities seen (records or positions).
  size_t num_entities() const { return num_entities_; }

  /// Minimum norm over all inserted records; +inf when empty. This is the
  /// minS of Section 5.1.1.
  double min_norm() const { return min_norm_; }

  /// Total postings currently stored (index size in word occurrences).
  uint64_t total_postings() const { return total_postings_; }

  /// Restores the aggregate statistics a serialized index carries.
  void RestoreStats(size_t num_entities, double min_norm);

 private:
  void TrackEntity(RecordId id, double norm);

  std::vector<Posting> postings_;   // one flat buffer, CSR over tokens
  std::vector<size_t> begin_;      // extent start per token (size vocab+1)
  std::vector<uint32_t> size_;     // live postings per token
  std::vector<double> max_score_;  // per-token max posting score

  // View mode (MakeView): borrowed extent tables, non-null iff is_view().
  // The vectors above stay empty; backing_ pins the borrowed memory.
  const Posting* view_postings_ = nullptr;
  const uint64_t* view_begin_ = nullptr;
  const uint32_t* view_size_ = nullptr;
  const double* view_max_score_ = nullptr;
  uint64_t view_vocabulary_size_ = 0;
  std::shared_ptr<const void> backing_;

  size_t num_nonempty_tokens_ = 0;
  size_t num_entities_ = 0;
  RecordId max_entity_id_ = std::numeric_limits<RecordId>::max();  // none yet
  double min_norm_ = std::numeric_limits<double>::infinity();
  uint64_t total_postings_ = 0;
  bool planned_ = false;
};

}  // namespace ssjoin

#endif  // SSJOIN_INDEX_INVERTED_INDEX_H_
