#include "index/posting_list.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

size_t PostingListView::GallopFind(RecordId id, size_t start,
                                   uint64_t* probe_cost) const {
  size_t pos = GallopLowerBound(id, start, probe_cost);
  if (pos < size_ && data_[pos].id == id) return pos;
  return SIZE_MAX;
}

size_t PostingListView::GallopLowerBound(RecordId id, size_t start,
                                         uint64_t* probe_cost) const {
  size_t n = size_;
  if (start >= n) return n;
  // Gallop: find a window [lo, hi) whose upper end reaches `id`.
  size_t lo = start;
  size_t step = 1;
  size_t hi = start;
  while (hi < n && data_[hi].id < id) {
    if (probe_cost != nullptr) ++*probe_cost;
    lo = hi + 1;
    hi = start + step;
    step *= 2;
  }
  hi = std::min(hi, n);
  // Binary search within [lo, hi).
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (probe_cost != nullptr) ++*probe_cost;
    if (data_[mid].id < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t PostingListView::LowerBound(RecordId id) const {
  const Posting* it = std::lower_bound(
      data_, data_ + size_, id,
      [](const Posting& p, RecordId target) { return p.id < target; });
  return static_cast<size_t>(it - data_);
}

void PostingList::Append(RecordId id, double score) {
  SSJOIN_DCHECK(postings_.empty() || postings_.back().id < id);
  postings_.push_back({id, score});
  max_score_ = std::max(max_score_, score);
}

bool PostingList::InsertOrUpdateMax(RecordId id, double score) {
  max_score_ = std::max(max_score_, score);
  if (postings_.empty() || postings_.back().id < id) {
    postings_.push_back({id, score});
    return true;
  }
  auto it = std::lower_bound(
      postings_.begin(), postings_.end(), id,
      [](const Posting& p, RecordId target) { return p.id < target; });
  if (it != postings_.end() && it->id == id) {
    it->score = std::max(it->score, score);
    return false;
  }
  postings_.insert(it, {id, score});
  return true;
}

}  // namespace ssjoin
