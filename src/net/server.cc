#include "net/server.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <unordered_map>
#include <utility>

namespace ssjoin::net {

/// One worker event-loop thread and the connections sharded onto it.
/// The acceptor hands fds over through Post(); everything else —
/// registration, request execution, idle reaping, teardown — happens on
/// the worker's own thread.
class SimilarityServer::Worker {
 public:
  Worker(const ServiceDispatcher* dispatcher, ServerCounters* counters,
         const ServerOptions* options)
      : dispatcher_(dispatcher), counters_(counters), options_(options) {}

  Status Start() {
    if (!loop_.status().ok()) return loop_.status();
    if (options_->idle_timeout_ms > 0) {
      // Sweep at a fraction of the timeout: a connection may overstay by
      // one sweep interval, never by a full timeout.
      uint64_t interval = options_->idle_timeout_ms / 4;
      if (interval == 0) interval = 1;
      loop_.SetTick(interval, [this] { ReapIdle(); });
    }
    thread_ = std::thread([this] {
      loop_.Run();
      CloseAll();
    });
    return Status::OK();
  }

  /// Thread-safe: adopt an accepted socket (called from the acceptor).
  void Adopt(int fd) {
    loop_.Post([this, fd] {
      auto connection = std::make_unique<Connection>(
          fd, &loop_, dispatcher_, counters_, options_->max_request_bytes);
      Connection* raw = connection.get();
      connections_[fd] = std::move(connection);
      raw->Register([this, fd](uint32_t events) { HandleEvent(fd, events); });
    });
  }

  /// Thread-safe: begin draining every connection (graceful shutdown).
  void StartDrain() {
    loop_.Post([this] {
      std::vector<int> fds;
      fds.reserve(connections_.size());
      for (const auto& [fd, connection] : connections_) fds.push_back(fd);
      for (int fd : fds) {
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        it->second->StartDrain();
        ReapIfClosed(fd);
      }
    });
  }

  void StopAndJoin() {
    loop_.Stop();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void HandleEvent(int fd, uint32_t events) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    it->second->OnEvent(events);
    ReapIfClosed(fd);
  }

  /// Destroys a connection that closed itself during dispatch. Runs
  /// after OnEvent returns, so a connection never frees itself mid-call.
  void ReapIfClosed(int fd) {
    auto it = connections_.find(fd);
    if (it != connections_.end() && it->second->closed()) {
      connections_.erase(it);
      counters_->active_connections.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void ReapIdle() {
    uint64_t now = MonotonicMillis();
    std::vector<int> idle;
    for (const auto& [fd, connection] : connections_) {
      if (now - connection->last_activity_ms() >= options_->idle_timeout_ms) {
        idle.push_back(fd);
      }
    }
    for (int fd : idle) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      it->second->CloseNow();
      counters_->idle_closes.fetch_add(1, std::memory_order_relaxed);
      ReapIfClosed(fd);
    }
  }

  /// Loop-exit cleanup (runs on the worker thread after Run returns).
  void CloseAll() {
    for (auto& [fd, connection] : connections_) {
      connection->CloseNow();
      counters_->active_connections.fetch_sub(1, std::memory_order_relaxed);
    }
    connections_.clear();
  }

  const ServiceDispatcher* dispatcher_;
  ServerCounters* counters_;
  const ServerOptions* options_;
  EventLoop loop_;
  std::thread thread_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  friend class SimilarityServer;
};

SimilarityServer::SimilarityServer(SimilarityService* service,
                                   ServiceDispatcher::TokenizeFn tokenize,
                                   ServiceDispatcher::HookFn before_insert,
                                   ServerOptions options)
    : service_(service),
      dispatcher_(service, std::move(tokenize), options.default_topk,
                  std::move(before_insert),
                  [this](std::string json) {
                    return AppendNetSection(std::move(json),
                                            counters_.Snapshot());
                  }),
      options_(std::move(options)) {}

SimilarityServer::~SimilarityServer() { Shutdown(); }

Status SimilarityServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  Status listening =
      listener_.Listen(options_.host, options_.port);
  if (!listening.ok()) return listening;

  int worker_count = options_.net_threads;
  if (worker_count <= 0) {
    unsigned hardware = std::thread::hardware_concurrency();
    worker_count = static_cast<int>(hardware == 0 ? 1
                                    : hardware > 4 ? 4
                                                   : hardware);
  }
  for (int w = 0; w < worker_count; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(&dispatcher_, &counters_, &options_));
    Status started = workers_.back()->Start();
    if (!started.ok()) {
      Shutdown();
      return started;
    }
  }

  acceptor_loop_ = std::make_unique<EventLoop>();
  if (!acceptor_loop_->status().ok()) {
    Status status = acceptor_loop_->status();
    Shutdown();
    return status;
  }
  acceptor_loop_->Add(listener_.fd(), EPOLLIN, [this](uint32_t) {
    listener_.AcceptAll([this](int fd) {
      counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
      workers_[next_worker_++ % workers_.size()]->Adopt(fd);
    });
  });
  acceptor_thread_ = std::thread([this] { acceptor_loop_->Run(); });
  started_ = true;
  return Status::OK();
}

void SimilarityServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // 1. Refuse new connections: stop the acceptor, close the listener.
  if (acceptor_loop_) {
    acceptor_loop_->Stop();
    if (acceptor_thread_.joinable()) acceptor_thread_.join();
  }
  listener_.Close();
  // 2. Drain: every connection stops reading, flushes its outbox and
  // closes. In-flight requests are safe by construction — execution is
  // synchronous on the worker loop, so the drain task cannot run mid-
  // request; it runs between requests and after their responses queued.
  for (std::unique_ptr<Worker>& worker : workers_) worker->StartDrain();
  uint64_t deadline = MonotonicMillis() + options_.drain_timeout_ms;
  while (counters_.active_connections.load(std::memory_order_relaxed) > 0 &&
         MonotonicMillis() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // 3. Stop the loops; each worker closes its stragglers on exit.
  for (std::unique_ptr<Worker>& worker : workers_) worker->StopAndJoin();
  workers_.clear();
}

}  // namespace ssjoin::net
