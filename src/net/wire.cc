#include "net/wire.h"

#include <algorithm>
#include <cstdio>

#include "serve/protocol.h"

namespace ssjoin::net {

namespace {
/// Upper bound on any single speculative payload reserve. A header may
/// legally claim a payload up to max_payload_bytes, but the buffer must
/// only ever be sized ahead of the bytes that actually arrived — a
/// hostile or buggy peer announcing "OK <huge>" and then stalling must
/// not pin that allocation.
constexpr size_t kPayloadReserveChunk = size_t{64} << 10;
}  // namespace

bool LineFramer::Feed(std::string_view data,
                      FunctionRef<void(std::string_view)> sink) {
  if (poisoned_) return false;
  size_t begin = 0;
  while (begin < data.size()) {
    size_t newline = data.find('\n', begin);
    if (newline == std::string_view::npos) {
      if (buffer_.size() + (data.size() - begin) > max_line_bytes_) {
        poisoned_ = true;
        buffer_.clear();
        return false;
      }
      buffer_.append(data.substr(begin));
      return true;
    }
    std::string_view tail = data.substr(begin, newline - begin);
    if (buffer_.size() + tail.size() > max_line_bytes_) {
      poisoned_ = true;
      buffer_.clear();
      return false;
    }
    std::string_view line;
    if (buffer_.empty()) {
      line = tail;  // whole line inside this chunk: no copy
    } else {
      buffer_.append(tail);
      line = buffer_;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    sink(line);
    buffer_.clear();
    begin = newline + 1;
  }
  return true;
}

std::string OkFrame(std::string_view payload) {
  char header[32];
  int n = std::snprintf(header, sizeof(header), "OK %zu\n", payload.size());
  std::string out(header, static_cast<size_t>(n));
  out.append(payload);
  return out;
}

std::string ErrFrame(std::string_view message) {
  std::string out = "ERR ";
  out.append(message);
  out.push_back('\n');
  return out;
}

bool ResponseReader::Feed(std::string_view data,
                          std::vector<WireResponse>* out) {
  size_t begin = 0;
  while (begin < data.size()) {
    if (in_payload_) {
      size_t take = data.size() - begin;
      if (take > payload_needed_) take = payload_needed_;
      if (current_.payload.size() + take > current_.payload.capacity()) {
        // Grow toward the announced length one capped chunk at a time so
        // capacity tracks delivered bytes, not the header's claim.
        current_.payload.reserve(
            current_.payload.size() +
            std::max(take, std::min(payload_needed_, kPayloadReserveChunk)));
      }
      current_.payload.append(data.substr(begin, take));
      payload_needed_ -= take;
      begin += take;
      if (payload_needed_ == 0) {
        out->push_back(std::move(current_));
        current_ = WireResponse{};
        in_payload_ = false;
      }
      continue;
    }
    size_t newline = data.find('\n', begin);
    if (newline == std::string_view::npos) {
      buffer_.append(data.substr(begin));
      // An unbounded "header" is as hostile as an unbounded payload.
      return buffer_.size() <= max_payload_bytes_;
    }
    buffer_.append(data.substr(begin, newline - begin));
    begin = newline + 1;
    std::string header;
    header.swap(buffer_);
    if (header.rfind("ERR ", 0) == 0) {
      out->push_back(WireResponse{false, header.substr(4)});
      continue;
    }
    if (header.rfind("OK ", 0) != 0) return false;
    uint64_t length = 0;
    if (!ParseUint64Text(std::string_view(header).substr(3), &length) ||
        length > max_payload_bytes_) {
      return false;
    }
    if (length == 0) {
      out->push_back(WireResponse{true, ""});
      continue;
    }
    current_.ok = true;
    current_.payload.clear();
    current_.payload.shrink_to_fit();
    current_.payload.reserve(static_cast<size_t>(
        std::min<uint64_t>(length, kPayloadReserveChunk)));
    payload_needed_ = static_cast<size_t>(length);
    in_payload_ = true;
  }
  return true;
}

}  // namespace ssjoin::net
