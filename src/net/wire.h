#ifndef SSJOIN_NET_WIRE_H_
#define SSJOIN_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/function_ref.h"

namespace ssjoin::net {

/// The wire format. Requests are newline-delimited command lines in the
/// shared serve/protocol grammar; one trailing '\r' is stripped per line
/// so CRLF clients (telnet, netcat -C) speak it unmodified. Responses
/// are length-delimited frames so a client can recover multi-line query
/// payloads without sniffing their shape:
///
///   "OK <payload-bytes>\n" <payload-bytes bytes>
///   "ERR <one-line message>\n"
///
/// An OK payload is the EXACT byte sequence the ssjoin_serve REPL would
/// have printed for the same command — match lines, stats JSON, insert/
/// delete/compact acknowledgements — which is what makes network answers
/// comparable bit-for-bit against a directly-driven SimilarityService.
/// Requests may be pipelined back-to-back; responses come back in
/// request order on each connection.

/// Incremental request-line splitter with a hostile-input size guard.
/// Bytes accumulate across Feed calls until a '\n' completes a line; a
/// line longer than `max_line_bytes` poisons the framer (Feed returns
/// false and the connection is expected to send one ERR and close — a
/// client streaming an unbounded line must not balloon worker memory).
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends bytes and invokes `sink` once per completed line, in order,
  /// without the '\n' (and without a final '\r', if any). Returns false
  /// — emitting nothing further — once the size guard trips.
  bool Feed(std::string_view data, FunctionRef<void(std::string_view)> sink);

  /// Bytes of an unterminated trailing line buffered so far.
  size_t pending_bytes() const { return buffer_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  bool poisoned_ = false;
};

/// Frames one successful response payload.
std::string OkFrame(std::string_view payload);
/// Frames one error (the message must be newline-free).
std::string ErrFrame(std::string_view message);

/// One decoded response frame.
struct WireResponse {
  bool ok = false;
  std::string payload;  // OK payload bytes, or the ERR message
};

/// Incremental client-side decoder for the response framing; used by the
/// load generator and the loopback tests. Feed bytes as they arrive;
/// completed responses append to out, in order. Returns false on a
/// malformed header (not "OK <n>" / "ERR ...", or an OK length above
/// `max_payload_bytes`), after which the stream is unrecoverable.
class ResponseReader {
 public:
  explicit ResponseReader(size_t max_payload_bytes = size_t{1} << 30)
      : max_payload_bytes_(max_payload_bytes) {}

  bool Feed(std::string_view data, std::vector<WireResponse>* out);

  /// True while no partial frame is buffered (a clean stream boundary).
  bool idle() const { return buffer_.empty() && !in_payload_; }

  /// Capacity of the in-flight payload buffer. Exposed so tests can
  /// prove that a header announcing a huge payload does not reserve the
  /// claimed length up front — capacity must track delivered bytes.
  size_t payload_capacity() const { return current_.payload.capacity(); }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  bool in_payload_ = false;   // header parsed, collecting payload bytes
  size_t payload_needed_ = 0;
  WireResponse current_;
};

}  // namespace ssjoin::net

#endif  // SSJOIN_NET_WIRE_H_
