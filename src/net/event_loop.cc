#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ssjoin::net {

uint64_t MonotonicMillis() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1000000;
}

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    status_ = Status::IOError(std::string("epoll_create1: ") +
                              std::strerror(errno));
    return;
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    status_ =
        Status::IOError(std::string("eventfd: ") + std::strerror(errno));
    return;
  }
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    status_ = Status::IOError(std::string("epoll_ctl(wake): ") +
                              std::strerror(errno));
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    callbacks_[fd] = std::move(callback);
  }
}

void EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::SetTick(uint64_t interval_ms, std::function<void()> callback) {
  tick_interval_ms_ = interval_ms;
  tick_ = std::move(callback);
  next_tick_ms_ = MonotonicMillis() + interval_ms;
}

void EventLoop::DrainWake() {
  uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::Run() {
  if (!status_.ok()) return;
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (true) {
    // Harvest posted tasks and the stop flag in one lock hold.
    std::vector<std::function<void()>> tasks;
    bool stop;
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      tasks.swap(posted_);
      stop = stop_;
    }
    for (std::function<void()>& task : tasks) task();
    if (stop) return;

    int timeout = -1;
    if (tick_) {
      uint64_t now = MonotonicMillis();
      if (now >= next_tick_ms_) {
        tick_();
        next_tick_ms_ = now + tick_interval_ms_;
      }
      timeout = static_cast<int>(next_tick_ms_ - MonotonicMillis());
      if (timeout < 0) timeout = 0;
    }
    int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable epoll failure; Stop-equivalent
    }
    for (int i = 0; i < ready; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWake();
        continue;
      }
      // A callback earlier in this round may have removed this fd (and
      // possibly closed it): the map is the source of truth.
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      // Copy the handle: the callback may Remove(fd) and invalidate it.
      IoCallback callback = it->second;
      callback(events[i].events);
    }
  }
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_ = true;
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace ssjoin::net
