#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ssjoin::net {

Listener::~Listener() { Close(); }

Status Listener::Listen(const std::string& host, uint16_t port,
                        int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::IOError("bind " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    Close();
    return status;
  }
  if (::listen(fd_, backlog) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    Close();
    return status;
  }
  struct sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    Close();
    return status;
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void Listener::AcceptAll(FunctionRef<void(int fd)> sink) {
  while (fd_ >= 0) {
    int conn = ::accept4(fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE etc.: stop accepting this round, retry next wake
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sink(conn);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ssjoin::net
