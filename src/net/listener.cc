#include "net/listener.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ssjoin::net {

Listener::~Listener() { Close(); }

Status Listener::Listen(const std::string& host, uint16_t port,
                        int backlog) {
  // Resolve through getaddrinfo so names ("localhost", a DNS host) work
  // as well as dotted quads; the rest of the front-end speaks IPv4.
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + host + ": " +
                                   ::gai_strerror(rc));
  }
  std::string tried;     // every address we attempted, for the error
  std::string last_err;  // errno text from the most recent failure
  for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family != AF_INET ||
        ai->ai_addrlen < sizeof(struct sockaddr_in)) {
      continue;
    }
    struct sockaddr_in addr = {};
    std::memcpy(&addr, ai->ai_addr, sizeof(addr));
    addr.sin_port = htons(port);
    char text[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text));
    if (!tried.empty()) tried += ", ";
    tried += text;
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      last_err = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      last_err = std::string("bind: ") + std::strerror(errno);
      Close();
      continue;
    }
    if (::listen(fd_, backlog) != 0) {
      last_err = std::string("listen: ") + std::strerror(errno);
      Close();
      continue;
    }
    struct sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) != 0) {
      last_err = std::string("getsockname: ") + std::strerror(errno);
      Close();
      continue;
    }
    port_ = ntohs(bound.sin_port);
    ::freeaddrinfo(results);
    return Status::OK();
  }
  ::freeaddrinfo(results);
  if (tried.empty()) {
    return Status::InvalidArgument("no IPv4 address for " + host);
  }
  return Status::IOError("listen on " + host + ":" + std::to_string(port) +
                         " failed (tried " + tried + "): " +
                         (last_err.empty() ? "unknown error" : last_err));
}

void Listener::AcceptAll(FunctionRef<void(int fd)> sink) {
  while (fd_ >= 0) {
    int conn = ::accept4(fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE etc.: stop accepting this round, retry next wake
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sink(conn);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ssjoin::net
