#include "net/connection.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace ssjoin::net {

NetStats ServerCounters::Snapshot() const {
  NetStats stats;
  stats.connections_accepted =
      connections_accepted.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections.load(std::memory_order_relaxed);
  stats.requests = requests.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
  stats.idle_closes = idle_closes.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written.load(std::memory_order_relaxed);
  return stats;
}

Connection::Connection(int fd, EventLoop* loop,
                       const ServiceDispatcher* dispatcher,
                       ServerCounters* counters, size_t max_request_bytes)
    : fd_(fd),
      loop_(loop),
      dispatcher_(dispatcher),
      counters_(counters),
      max_request_bytes_(max_request_bytes),
      framer_(max_request_bytes),
      last_activity_ms_(MonotonicMillis()) {}

Connection::~Connection() {
  if (!closed_) ::close(fd_);
}

void Connection::Register(EventLoop::IoCallback callback) {
  armed_events_ = EPOLLIN;
  loop_->Add(fd_, armed_events_, std::move(callback));
}

void Connection::CloseNow() {
  if (closed_) return;
  loop_->Remove(fd_);
  ::close(fd_);
  closed_ = true;
}

void Connection::StartDrain() {
  if (closed_) return;
  reading_ = false;
  close_after_flush_ = true;
  if (OutboxPending() == 0) {
    CloseNow();
    return;
  }
  Flush();
  if (!closed_) UpdateInterest();
}

void Connection::OnEvent(uint32_t events) {
  if (closed_) return;
  last_activity_ms_ = MonotonicMillis();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseNow();
    return;
  }
  if ((events & EPOLLIN) && reading_) ReadInput();
  if (closed_) return;
  Flush();
  if (closed_) return;
  UpdateInterest();
}

void Connection::ReadInput() {
  char buffer[65536];
  std::vector<Request> parsed;
  std::string framing_error;
  while (reading_) {
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      counters_->bytes_read.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
      bool ok = framer_.Feed(
          std::string_view(buffer, static_cast<size_t>(n)),
          [&parsed](std::string_view line) {
            parsed.push_back(ParseRequest(line));
          });
      if (!ok) {
        // One hostile client must not pin this worker: answer whatever
        // parsed cleanly, then one ERR, then close.
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        framing_error = "request line exceeds " +
                        std::to_string(max_request_bytes_) +
                        " bytes; closing connection";
        reading_ = false;
        close_after_flush_ = true;
      }
      // Bound the work (and outbox growth) of one dispatch round: with
      // a deep pipeline the backpressure check must get a chance to run.
      if (OutboxPending() + parsed.size() * 64 > kHighWatermark) break;
      continue;
    }
    if (n == 0) {
      // Peer half-close: answer everything received, then close.
      reading_ = false;
      close_after_flush_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseNow();
    return;
  }
  // Blank lines are no-ops with no response frame.
  std::erase_if(parsed, [](const Request& request) {
    return request.type == RequestType::kNone;
  });
  if (!parsed.empty()) {
    counters_->requests.fetch_add(parsed.size(), std::memory_order_relaxed);
    for (const Request& request : parsed) {
      if (request.type == RequestType::kMalformed) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::vector<Response> responses = dispatcher_->ExecuteBatch(parsed);
    for (const Response& response : responses) {
      outbox_ += response.ok ? OkFrame(response.payload)
                             : ErrFrame(response.payload);
    }
  }
  if (!framing_error.empty()) outbox_ += ErrFrame(framing_error);
}

void Connection::Flush() {
  while (OutboxPending() > 0) {
    ssize_t n = ::write(fd_, outbox_.data() + outbox_offset_,
                        outbox_.size() - outbox_offset_);
    if (n > 0) {
      counters_->bytes_written.fetch_add(static_cast<uint64_t>(n),
                                         std::memory_order_relaxed);
      outbox_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseNow();  // EPIPE / ECONNRESET and friends
    return;
  }
  outbox_.clear();
  outbox_offset_ = 0;
  if (close_after_flush_) CloseNow();
}

void Connection::UpdateInterest() {
  uint32_t want = 0;
  if (reading_ && OutboxPending() < kHighWatermark) want |= EPOLLIN;
  if (OutboxPending() > 0) want |= EPOLLOUT;
  if (want != armed_events_) {
    loop_->Modify(fd_, want);
    armed_events_ = want;
  }
}

}  // namespace ssjoin::net
