#ifndef SSJOIN_NET_LISTENER_H_
#define SSJOIN_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "util/function_ref.h"
#include "util/status.h"

namespace ssjoin::net {

/// A non-blocking IPv4 listening socket. Owns the fd; close on destroy.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. `port` 0 asks the kernel for an ephemeral port;
  /// port() reports the one actually bound either way.
  Status Listen(const std::string& host, uint16_t port, int backlog = 511);

  /// Accepts every pending connection (until EAGAIN), invoking `sink`
  /// with each new non-blocking, TCP_NODELAY socket fd. Per-connection
  /// accept errors (ECONNABORTED and friends) are skipped, not fatal.
  void AcceptAll(FunctionRef<void(int fd)> sink);

  /// Closes the listening socket (idempotent); pending SYNs get RST and
  /// new connections are refused — the first step of graceful shutdown.
  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace ssjoin::net

#endif  // SSJOIN_NET_LISTENER_H_
