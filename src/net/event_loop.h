#ifndef SSJOIN_NET_EVENT_LOOP_H_
#define SSJOIN_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ssjoin::net {

/// Monotonic wall-clock milliseconds (CLOCK_MONOTONIC); the timebase for
/// idle-connection accounting.
uint64_t MonotonicMillis();

/// A single-threaded epoll reactor. One EventLoop runs on one thread
/// (Run() is the thread's body); fd registrations and their callbacks
/// are owned by that thread. Exactly two operations are thread-safe and
/// form the only cross-thread surface: Post() (hand the loop a task to
/// run on its own thread — how the acceptor ships new sockets to a
/// worker) and Stop(). Both wake the loop through an eventfd.
class EventLoop {
 public:
  using IoCallback = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Non-OK when epoll/eventfd creation failed; Run() is then a no-op.
  const Status& status() const { return status_; }

  /// Registers `fd` for `events` (EPOLLIN and friends); `callback` runs
  /// on the loop thread with the ready event mask. Loop-thread only
  /// (or before Run starts).
  void Add(int fd, uint32_t events, IoCallback callback);
  /// Changes the armed event mask of a registered fd. Loop-thread only.
  void Modify(int fd, uint32_t events);
  /// Deregisters `fd` (does not close it). Safe to call from inside a
  /// callback — a ready event already harvested for a removed fd is
  /// dropped, not dispatched. Loop-thread only.
  void Remove(int fd);

  /// Arms a coarse periodic tick: `callback` runs on the loop thread at
  /// least every `interval_ms` (epoll_wait timeout granularity — this is
  /// an idle-sweep clock, not a precision timer). One tick per loop.
  void SetTick(uint64_t interval_ms, std::function<void()> callback);

  /// Dispatches events until Stop(). Returns immediately on a
  /// construction error.
  void Run();

  /// Thread-safe: runs `task` on the loop thread at the next iteration.
  /// Tasks posted after Stop() may never run.
  void Post(std::function<void()> task);

  /// Thread-safe, idempotent: makes Run() return after the current
  /// dispatch round.
  void Stop();

 private:
  void DrainWake();

  Status status_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, IoCallback> callbacks_;
  uint64_t tick_interval_ms_ = 0;
  std::function<void()> tick_;
  uint64_t next_tick_ms_ = 0;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_ = false;  // guarded by post_mutex_
};

}  // namespace ssjoin::net

#endif  // SSJOIN_NET_EVENT_LOOP_H_
