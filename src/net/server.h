#ifndef SSJOIN_NET_SERVER_H_
#define SSJOIN_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.h"
#include "net/listener.h"
#include "serve/protocol.h"
#include "serve/service_stats.h"
#include "util/status.h"

namespace ssjoin::net {

struct ServerOptions {
  /// IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (port() reports it).
  uint16_t port = 0;
  /// Worker event-loop threads; <= 0 picks min(hardware, 4). The
  /// acceptor runs on its own additional thread.
  int net_threads = 0;
  /// Close a connection silently after this many ms without traffic;
  /// 0 disables reaping.
  uint64_t idle_timeout_ms = 0;
  /// Longest accepted request line; longer gets one ERR then close.
  size_t max_request_bytes = size_t{1} << 20;
  /// Plain-text queries rank top-k instead of thresholding when > 0
  /// (the REPL's --topk, applied connection-wide).
  size_t default_topk = 0;
  /// Graceful-shutdown budget for flushing queued responses.
  uint64_t drain_timeout_ms = 2000;
};

/// The serving tier's network front door: an acceptor thread plus N
/// worker event-loop threads, accepted sockets sharded round-robin
/// across workers, every worker speaking the shared serve/protocol
/// grammar over the net/wire framing against one SimilarityService.
/// Queries execute on the service's lock-free snapshot read path, so
/// concurrent connections scale the way the snapshot design promises;
/// inserts/deletes/compactions serialize on the service's write lock
/// exactly as in-process callers do.
///
/// `stats` responses served by this front door carry an extra "net"
/// JSON section (ServerCounters snapshot).
class SimilarityServer {
 public:
  /// `service` must outlive the server. `tokenize` builds RecordSets for
  /// query/insert texts and `before_insert` runs between tokenization
  /// and Insert (the token-dictionary sidecar sync); both are called
  /// concurrently from every worker thread and must synchronize
  /// internally (the drivers wrap them in one tokenizer mutex).
  SimilarityServer(SimilarityService* service,
                   ServiceDispatcher::TokenizeFn tokenize,
                   ServiceDispatcher::HookFn before_insert,
                   ServerOptions options);
  ~SimilarityServer();

  SimilarityServer(const SimilarityServer&) = delete;
  SimilarityServer& operator=(const SimilarityServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads.
  Status Start();

  /// The bound port (after Start).
  uint16_t port() const { return listener_.port(); }

  /// Graceful shutdown: close the listener (new connections refused),
  /// drain queued responses for up to drain_timeout_ms, close every
  /// connection, stop and join all threads. Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Snapshot of the front-end counters.
  NetStats net_stats() const { return counters_.Snapshot(); }

 private:
  class Worker;

  SimilarityService* service_;
  ServiceDispatcher dispatcher_;
  ServerOptions options_;
  ServerCounters counters_;

  Listener listener_;
  std::unique_ptr<EventLoop> acceptor_loop_;
  std::thread acceptor_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace ssjoin::net

#endif  // SSJOIN_NET_SERVER_H_
