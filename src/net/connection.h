#ifndef SSJOIN_NET_CONNECTION_H_
#define SSJOIN_NET_CONNECTION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "net/event_loop.h"
#include "net/wire.h"
#include "serve/protocol.h"
#include "serve/service_stats.h"

namespace ssjoin::net {

/// Shared front-end counters, written by the acceptor and every worker
/// thread, snapshotted into a NetStats for the stats JSON. Relaxed
/// ordering: these are monitoring counters, not synchronization.
struct ServerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> active_connections{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  NetStats Snapshot() const;
};

/// One accepted client socket, owned by exactly one worker event loop —
/// every method runs on that loop's thread, so a connection needs no
/// locking of its own. Reads request lines through a LineFramer, parses
/// them with the shared serve/protocol grammar, executes them through
/// the worker-shared ServiceDispatcher (consecutive queries ride the
/// BatchQuery fan-out), and writes length-delimited response frames back
/// in request order.
///
/// Flow control: responses queue in an outbox flushed opportunistically
/// and via EPOLLOUT; while the outbox holds more than kHighWatermark
/// unsent bytes the connection stops reading (EPOLLIN disarmed), so a
/// client that pipelines faster than it drains responses is throttled by
/// TCP instead of ballooning worker memory. A request line longer than
/// `max_request_bytes` is answered with one ERR frame after any
/// already-parsed requests, then the connection closes.
class Connection {
 public:
  Connection(int fd, EventLoop* loop, const ServiceDispatcher* dispatcher,
             ServerCounters* counters, size_t max_request_bytes);
  /// Closes the socket if still open. Never touches the loop — callers
  /// deregister via CloseNow() first (destruction happens outside event
  /// dispatch, in the owning worker).
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers the socket with the loop. `callback` must route events
  /// back to OnEvent (the worker owns the fd→connection map).
  void Register(EventLoop::IoCallback callback);

  /// Handles one epoll readiness mask.
  void OnEvent(uint32_t events);

  /// Graceful-shutdown entry: stop reading, flush what is queued, close
  /// when the outbox empties (immediately when it already is).
  void StartDrain();

  /// Deregisters from the loop and closes the socket. Idempotent.
  void CloseNow();

  bool closed() const { return closed_; }
  /// Monotonic ms of the last read/write/accept activity (idle reaping).
  uint64_t last_activity_ms() const { return last_activity_ms_; }

 private:
  static constexpr size_t kHighWatermark = size_t{1} << 20;  // 1 MiB

  void ReadInput();
  void Flush();
  void UpdateInterest();
  size_t OutboxPending() const { return outbox_.size() - outbox_offset_; }

  int fd_;
  EventLoop* loop_;
  const ServiceDispatcher* dispatcher_;
  ServerCounters* counters_;
  size_t max_request_bytes_;
  LineFramer framer_;

  std::string outbox_;
  size_t outbox_offset_ = 0;
  uint32_t armed_events_ = 0;
  bool reading_ = true;           // false after EOF, framing error, drain
  bool close_after_flush_ = false;
  bool closed_ = false;
  uint64_t last_activity_ms_;
};

}  // namespace ssjoin::net

#endif  // SSJOIN_NET_CONNECTION_H_
