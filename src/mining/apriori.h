#ifndef SSJOIN_MINING_APRIORI_H_
#define SSJOIN_MINING_APRIORI_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/record_set.h"

namespace ssjoin {

/// Options for the Word-Groups itemset miner (Section 2.3).
struct AprioriOptions {
  /// The T of the T-overlap join: itemsets stop growing and are emitted as
  /// confirmed once their total item weight reaches this.
  double min_weight = 1;

  /// The paper's M: itemsets whose support (record-list length) drops
  /// below this are emitted early as candidate groups and pruned from
  /// further growth ("output small groups early"). Must be >= 2.
  uint32_t early_output_support = 5;

  /// Enables the MinHash group-compaction step run after each level.
  bool minhash_compaction = true;
  int minhash_k = 16;
  /// The p of Section 2.3: groups agreeing on >= p fraction of MinHash
  /// components are merged.
  double compaction_threshold = 0.7;
  uint64_t seed = 7;

  /// Safety valve against exponential blowup on adversarial inputs: when
  /// non-zero, mining stops after this level, emitting every still-open
  /// itemset as a candidate group (exactness is preserved because open
  /// groups are verified downstream).
  size_t max_level = 0;

  /// Memory valve: when candidate generation accumulates more than this
  /// many open itemsets in one level, mining stops immediately and every
  /// open itemset (current and next level) is emitted as a candidate
  /// group. Exactness is preserved for the same reason as max_level: an
  /// itemset's record list covers every pair any of its descendants could
  /// certify. 0 disables the valve.
  size_t max_open_itemsets = 500000;

  /// Time valve with the same flush-open semantics: stop growing itemsets
  /// once this much wall-clock time has elapsed inside Mine (the paper's
  /// Word-Groups runs took hours on the 3-gram corpora; the join stays
  /// exact, degrading toward verify-all-candidates). 0 disables it.
  double deadline_seconds = 0;

  /// Optional Section 3.1 threshold optimization: token_in_large_set[t] is
  /// true for tokens in the global large-list set L (cumulative weight
  /// < min_weight). Itemsets contained entirely in L are never generated.
  /// Empty disables the optimization.
  std::vector<bool> token_in_large_set;
};

/// A group of records emitted by the miner. Every pair of records inside a
/// confirmed group shares the group's defining itemset, whose weight is
/// >= min_weight, so the pair satisfies the T-overlap predicate outright.
/// Pairs inside an unconfirmed (candidate) group must be verified.
struct MinedGroup {
  std::vector<RecordId> rids;  // sorted
  double weight = 0;           // total weight of the defining itemset
  bool confirmed = false;
};

/// Level-wise Apriori miner specialized for Word-Groups: items are tokens,
/// transactions are records, minimum support is 2, and itemset growth is
/// capped by min_weight. Completeness invariant: every itemset that is
/// pruned from growth for any reason is first emitted as a group, so every
/// matching record pair appears together in at least one emitted group.
class AprioriMiner {
 public:
  /// `token_weights[t]` is the weight of token t (the word match score);
  /// tokens beyond the vector get weight 1.
  AprioriMiner(const RecordSet& records, std::vector<double> token_weights,
               AprioriOptions options);

  /// Runs the mining; calls `emit` once per emitted group. Also returns
  /// the number of levels processed (for instrumentation).
  size_t Mine(const std::function<void(const MinedGroup&)>& emit);

 private:
  struct Itemset {
    std::vector<TokenId> items;  // sorted by OrderKey
    std::vector<RecordId> tids;  // sorted record list
    double weight = 0;
    /// All items are in the large-list set L. Such itemsets can never
    /// certify a match and are never emitted, but L *singletons* must stay
    /// available as join partners: the growth chain of a viable common
    /// word set {c1 (non-L), c2, ...} extends {c1} with {c2} even when c2
    /// is in L. Larger all-L itemsets are never generated.
    bool l_only = false;
  };

  double TokenWeight(TokenId t) const;
  bool InLargeSet(TokenId t) const;
  /// Items are globally ordered with non-L tokens first so that every
  /// prefix of a viable common-word set contains a non-L token (see
  /// header comment in apriori.cc for the completeness argument).
  uint64_t OrderKey(TokenId t) const;

  std::vector<Itemset> BuildLevel1() const;
  /// Emits and/or keeps `itemset` according to weight/support; returns
  /// true if it should be kept for extension.
  bool Classify(Itemset&& itemset, std::vector<Itemset>* keep,
                const std::function<void(const MinedGroup&)>& emit) const;
  void CompactLevel(std::vector<Itemset>* level,
                    const std::function<void(const MinedGroup&)>& emit) const;

  const RecordSet& records_;
  std::vector<double> token_weights_;
  AprioriOptions options_;
};

}  // namespace ssjoin

#endif  // SSJOIN_MINING_APRIORI_H_
