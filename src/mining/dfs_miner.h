#ifndef SSJOIN_MINING_DFS_MINER_H_
#define SSJOIN_MINING_DFS_MINER_H_

#include <functional>
#include <vector>

#include "data/record_set.h"
#include "mining/apriori.h"

namespace ssjoin {

/// Depth-first vertical itemset miner for Word-Groups — the memory-lean
/// alternative to the level-wise AprioriMiner, standing in for the
/// "FP-growth based implementation [that] took much less memory" the paper
/// mentions in Section 2.4. Instead of materializing whole candidate
/// levels, it keeps only one root-to-leaf chain of record lists
/// (Eclat-style tidlist intersection), so peak memory is
/// O(depth * average list length) rather than O(level width).
///
/// Emission semantics, pruning rules (weight cap, early output below the
/// support threshold, large-list-set skipping) and the completeness
/// invariant are identical to AprioriMiner: every itemset pruned from
/// growth is emitted first, so every matching pair is covered by some
/// emitted group. Options are shared with AprioriMiner; the MinHash
/// compaction knobs are ignored (there is no level to compact — the
/// early-output rule plays that role).
class DfsMiner {
 public:
  DfsMiner(const RecordSet& records, std::vector<double> token_weights,
           AprioriOptions options);

  /// Runs the mining; calls `emit` once per emitted group. Returns the
  /// maximum depth reached.
  size_t Mine(const std::function<void(const MinedGroup&)>& emit);

 private:
  struct Column {
    TokenId token;
    std::vector<RecordId> tids;
    bool in_large_set = false;
  };

  double TokenWeight(TokenId t) const;
  bool InLargeSet(TokenId t) const;

  /// Extends the itemset whose last column index is `col`, with current
  /// record list `tids` and accumulated weight `weight`. Returns false
  /// when a valve fired and mining must unwind.
  bool Grow(size_t col, const std::vector<RecordId>& tids, double weight,
            size_t depth,
            const std::function<void(const MinedGroup&)>& emit);

  const RecordSet& records_;
  std::vector<double> token_weights_;
  AprioriOptions options_;
  std::vector<Column> columns_;  // singleton record lists, non-L first
  size_t max_depth_seen_ = 0;
  double start_time_ = 0;  // set by Mine
  uint64_t steps_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_MINING_DFS_MINER_H_
