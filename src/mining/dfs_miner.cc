#include "mining/dfs_miner.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/timer.h"

namespace ssjoin {

namespace {

/// Shared valve-check cadence: wall-clock reads are amortized over steps.
constexpr uint64_t kDeadlineProbeMask = 1023;

Timer& MinerTimer() {
  static Timer timer;
  return timer;
}

}  // namespace

DfsMiner::DfsMiner(const RecordSet& records,
                   std::vector<double> token_weights, AprioriOptions options)
    : records_(records),
      token_weights_(std::move(token_weights)),
      options_(std::move(options)) {
  SSJOIN_CHECK(options_.early_output_support >= 2);
  SSJOIN_CHECK(options_.min_weight > 0);
}

double DfsMiner::TokenWeight(TokenId t) const {
  return t < token_weights_.size() ? token_weights_[t] : 1.0;
}

bool DfsMiner::InLargeSet(TokenId t) const {
  return t < options_.token_in_large_set.size() &&
         options_.token_in_large_set[t];
}

size_t DfsMiner::Mine(const std::function<void(const MinedGroup&)>& emit) {
  // Build the vertical database (token -> record list, support >= 2),
  // ordered with non-L tokens first so every viable prefix chain starts
  // outside L (same completeness argument as AprioriMiner).
  std::unordered_map<TokenId, std::vector<RecordId>> tidlists;
  for (RecordId id = 0; id < records_.size(); ++id) {
    for (TokenId t : records_.record(id).tokens()) {
      tidlists[t].push_back(id);
    }
  }
  columns_.clear();
  for (auto& [token, tids] : tidlists) {
    if (tids.size() < 2) continue;
    columns_.push_back({token, std::move(tids), InLargeSet(token)});
  }
  // Non-L first (completeness), then by increasing support: rare tokens
  // early makes intersections shrink fast and the early-output rule fire
  // sooner. Any fixed order is valid; this one is just fastest.
  std::sort(columns_.begin(), columns_.end(),
            [](const Column& a, const Column& b) {
              if (a.in_large_set != b.in_large_set) return !a.in_large_set;
              if (a.tids.size() != b.tids.size()) {
                return a.tids.size() < b.tids.size();
              }
              return a.token < b.token;
            });

  start_time_ = MinerTimer().ElapsedSeconds();
  steps_ = 0;
  max_depth_seen_ = columns_.empty() ? 0 : 1;

  double cap =
      options_.min_weight - 1e-7 * std::max(1.0, options_.min_weight);
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& root = columns_[i];
    if (root.in_large_set) break;  // L columns are extensions only
    double weight = TokenWeight(root.token);
    if (weight >= cap) {
      emit({root.tids, weight, /*confirmed=*/true});
      continue;
    }
    if (root.tids.size() < options_.early_output_support) {
      emit({root.tids, weight, /*confirmed=*/false});
      continue;
    }
    if (!Grow(i, root.tids, weight, /*depth=*/1, emit)) {
      // A valve fired inside this chain. The chain nodes (including this
      // root) emitted themselves on unwind; the untouched roots must be
      // emitted too, since their descendants will never be explored.
      for (size_t j = i + 1; j < columns_.size(); ++j) {
        if (columns_[j].in_large_set) break;
        emit({columns_[j].tids, TokenWeight(columns_[j].token),
              /*confirmed=*/false});
      }
      break;
    }
  }
  return max_depth_seen_;
}

bool DfsMiner::Grow(size_t col, const std::vector<RecordId>& tids,
                    double weight, size_t depth,
                    const std::function<void(const MinedGroup&)>& emit) {
  max_depth_seen_ = std::max(max_depth_seen_, depth);
  double cap =
      options_.min_weight - 1e-7 * std::max(1.0, options_.min_weight);
  for (size_t j = col + 1; j < columns_.size(); ++j) {
    bool over_deadline =
        options_.deadline_seconds > 0 &&
        (++steps_ & kDeadlineProbeMask) == 0 &&
        MinerTimer().ElapsedSeconds() - start_time_ >
            options_.deadline_seconds;
    if (over_deadline) {
      // Cover everything this subtree (and unexplored siblings) could
      // certify, then unwind; ancestors emit themselves the same way.
      emit({tids, weight, /*confirmed=*/false});
      return false;
    }
    const Column& extension = columns_[j];
    std::vector<RecordId> extended;
    std::set_intersection(tids.begin(), tids.end(), extension.tids.begin(),
                          extension.tids.end(), std::back_inserter(extended));
    if (extended.size() < 2) continue;
    double extended_weight = weight + TokenWeight(extension.token);
    if (extended_weight >= cap) {
      emit({std::move(extended), extended_weight, /*confirmed=*/true});
      continue;
    }
    if (extended.size() < options_.early_output_support) {
      emit({std::move(extended), extended_weight, /*confirmed=*/false});
      continue;
    }
    if (options_.max_level != 0 && depth + 1 >= options_.max_level) {
      emit({std::move(extended), extended_weight, /*confirmed=*/false});
      continue;
    }
    if (!Grow(j, extended, extended_weight, depth + 1, emit)) {
      emit({tids, weight, /*confirmed=*/false});
      return false;
    }
  }
  return true;
}

}  // namespace ssjoin
