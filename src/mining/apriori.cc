#include "mining/apriori.h"

// Completeness argument (why the miner finds every matching pair even with
// aggressive pruning): let records r, s share common-word set C with
// weight(C) >= T. Every subset of C has support >= 2 (both r and s contain
// it), and r, s appear in the record list of every subset of C. Consider
// the growth chain of prefixes of C under the global item order. At each
// level the prefix is either (a) emitted (confirmed if its weight reached
// T, or as a candidate when pruned for small support / compaction /
// max_level), in which case the pair {r, s} is inside the emitted group and
// downstream verification finds it; or (b) kept, and the chain continues.
// The chain cannot stall: candidate generation joins two kept (k-1)-sets,
// and if the sibling prefix needed for the join was pruned it was emitted
// first, covering the pair. The L-optimization never drops a viable prefix
// because items are ordered with non-L tokens first and C must contain a
// non-L token (weight(L) < T <= weight(C)). Finally the full prefix C has
// weight >= T and is emitted as confirmed.

#include <algorithm>
#include <unordered_map>

#include "minhash/minhash.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ssjoin {

AprioriMiner::AprioriMiner(const RecordSet& records,
                           std::vector<double> token_weights,
                           AprioriOptions options)
    : records_(records),
      token_weights_(std::move(token_weights)),
      options_(std::move(options)) {
  SSJOIN_CHECK(options_.early_output_support >= 2);
  SSJOIN_CHECK(options_.min_weight > 0);
}

double AprioriMiner::TokenWeight(TokenId t) const {
  return t < token_weights_.size() ? token_weights_[t] : 1.0;
}

bool AprioriMiner::InLargeSet(TokenId t) const {
  return t < options_.token_in_large_set.size() &&
         options_.token_in_large_set[t];
}

uint64_t AprioriMiner::OrderKey(TokenId t) const {
  // Non-L tokens sort strictly before L tokens; ties by token id.
  return (static_cast<uint64_t>(InLargeSet(t) ? 1 : 0) << 32) | t;
}

std::vector<AprioriMiner::Itemset> AprioriMiner::BuildLevel1() const {
  // Gather the record list of each token in one pass over the data.
  std::unordered_map<TokenId, std::vector<RecordId>> tidlists;
  for (RecordId id = 0; id < records_.size(); ++id) {
    for (TokenId t : records_.record(id).tokens()) {
      tidlists[t].push_back(id);
    }
  }
  std::vector<Itemset> level;
  level.reserve(tidlists.size());
  for (auto& [token, tids] : tidlists) {
    if (tids.size() < 2) continue;  // minimum support 2
    Itemset itemset;
    itemset.items = {token};
    itemset.tids = std::move(tids);  // already sorted (scan order)
    itemset.weight = TokenWeight(token);
    // L singletons are kept purely as join partners (see Itemset::l_only).
    itemset.l_only = InLargeSet(token);
    level.push_back(std::move(itemset));
  }
  std::sort(level.begin(), level.end(),
            [this](const Itemset& a, const Itemset& b) {
              return OrderKey(a.items[0]) < OrderKey(b.items[0]);
            });
  return level;
}

bool AprioriMiner::Classify(
    Itemset&& itemset, std::vector<Itemset>* keep,
    const std::function<void(const MinedGroup&)>& emit) const {
  if (itemset.tids.size() < 2) return false;  // below minimum support
  // Relative slack so float rounding on borderline weights errs toward
  // emitting (downstream verification keeps the join exact).
  double cap =
      options_.min_weight - 1e-7 * std::max(1.0, options_.min_weight);
  if (itemset.weight >= cap) {
    // Reached the weight cap: all contained pairs are genuine matches.
    emit({std::move(itemset.tids), itemset.weight, /*confirmed=*/true});
    return false;
  }
  if (itemset.tids.size() < options_.early_output_support) {
    // Small group: output early and stop growing it (candidate pairs).
    emit({std::move(itemset.tids), itemset.weight, /*confirmed=*/false});
    return false;
  }
  keep->push_back(std::move(itemset));
  return true;
}

void AprioriMiner::CompactLevel(
    std::vector<Itemset>* level,
    const std::function<void(const MinedGroup&)>& emit) const {
  if (!options_.minhash_compaction || level->size() < 2) return;
  MinHasher hasher(options_.minhash_k, options_.seed);

  // Bucket by the first signature component; estimate resemblance within a
  // bucket and greedily merge chains of similar groups.
  std::vector<std::vector<uint64_t>> signatures(level->size());
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < level->size(); ++i) {
    if ((*level)[i].l_only) continue;  // join partners only; never merged
    signatures[i] = hasher.Signature((*level)[i].tids);
    buckets[signatures[i][0]].push_back(i);
  }

  std::vector<bool> dead(level->size(), false);
  for (const auto& [component, members] : buckets) {
    if (members.size() < 2) continue;
    size_t head = members[0];
    for (size_t j = 1; j < members.size(); ++j) {
      size_t other = members[j];
      if (dead[other] || dead[head]) continue;
      double sim = MinHasher::EstimateResemblance(signatures[head],
                                                  signatures[other]);
      if (sim < options_.compaction_threshold) continue;
      // Merge `other` into `head`: emit the union as a candidate group so
      // every pair coverable by `other`'s descendants stays covered, then
      // prune `other` from growth.
      std::vector<RecordId> merged;
      std::set_union((*level)[head].tids.begin(), (*level)[head].tids.end(),
                     (*level)[other].tids.begin(), (*level)[other].tids.end(),
                     std::back_inserter(merged));
      emit({std::move(merged),
            std::min((*level)[head].weight, (*level)[other].weight),
            /*confirmed=*/false});
      dead[other] = true;
    }
  }
  size_t write = 0;
  for (size_t i = 0; i < level->size(); ++i) {
    if (!dead[i]) {
      if (write != i) (*level)[write] = std::move((*level)[i]);
      ++write;
    }
  }
  level->resize(write);
}

size_t AprioriMiner::Mine(
    const std::function<void(const MinedGroup&)>& emit) {
  std::vector<Itemset> raw_level1 = BuildLevel1();
  std::vector<Itemset> level;
  level.reserve(raw_level1.size());
  for (Itemset& itemset : raw_level1) {
    if (itemset.l_only) {
      level.push_back(std::move(itemset));  // join partner; never emitted
    } else {
      Classify(std::move(itemset), &level, emit);
    }
  }
  CompactLevel(&level, emit);

  // Emits every non-partner open itemset in `open` as a candidate group.
  auto flush_open = [&emit](std::vector<Itemset>* open) {
    for (Itemset& itemset : *open) {
      if (itemset.l_only) continue;
      emit({std::move(itemset.tids), itemset.weight, /*confirmed=*/false});
    }
    open->clear();
  };

  Timer timer;
  uint64_t deadline_probe = 0;
  size_t level_number = 1;
  while (level.size() >= 2) {
    if (options_.max_level != 0 && level_number >= options_.max_level) {
      // Emit every open itemset as a candidate so exactness survives the
      // early stop (all-L itemsets cannot carry matches and are skipped).
      flush_open(&level);
      break;
    }
    ++level_number;
    std::vector<Itemset> next;
    // F_{k-1} x F_{k-1} join: extend itemsets sharing the first k-2 items.
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        const Itemset& a = level[i];
        const Itemset& b = level[j];
        if (!std::equal(a.items.begin(), a.items.end() - 1,
                        b.items.begin(), b.items.end() - 1)) {
          // Level-1 lists are sorted by OrderKey, and the candidate
          // construction below preserves that order, so once prefixes
          // diverge no later j can match.
          break;
        }
        TokenId extra_a = a.items.back();
        TokenId extra_b = b.items.back();
        if (a.l_only && b.l_only) continue;  // all-L: never viable
        Itemset candidate;
        candidate.items = a.items;
        if (OrderKey(extra_a) < OrderKey(extra_b)) {
          candidate.items.push_back(extra_b);
        } else {
          candidate.items.back() = extra_b;
          candidate.items.push_back(extra_a);
        }
        // weight(prefix + extra_a + extra_b) regardless of item order.
        candidate.weight = a.weight + TokenWeight(extra_b);
        std::set_intersection(a.tids.begin(), a.tids.end(), b.tids.begin(),
                              b.tids.end(),
                              std::back_inserter(candidate.tids));
        Classify(std::move(candidate), &next, emit);
        bool over_memory = options_.max_open_itemsets != 0 &&
                           next.size() > options_.max_open_itemsets;
        bool over_deadline = options_.deadline_seconds > 0 &&
                             (++deadline_probe & 1023) == 0 &&
                             timer.ElapsedSeconds() >
                                 options_.deadline_seconds;
        if (over_memory || over_deadline) {
          // Memory/time valve: abandon level-wise growth; everything
          // still open covers its descendants' pairs (see flush_open).
          flush_open(&next);
          flush_open(&level);
          return level_number;
        }
      }
    }
    CompactLevel(&next, emit);
    level = std::move(next);
  }
  return level_number;
}

}  // namespace ssjoin
