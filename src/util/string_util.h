#ifndef SSJOIN_UTIL_STRING_UTIL_H_
#define SSJOIN_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ssjoin {

/// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims = " \t\n\r");

/// ASCII lower-casing (the synthetic corpora are ASCII by construction).
std::string AsciiToLower(std::string_view text);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// printf-style float formatting helper for benchmark tables.
std::string FormatDouble(double value, int precision);

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_STRING_UTIL_H_
