#ifndef SSJOIN_UTIL_RNG_H_
#define SSJOIN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace ssjoin {

/// Deterministic PCG32 random number generator (O'Neill's pcg32_oneseq).
/// Used everywhere instead of std::mt19937 so that synthetic datasets,
/// MinHash permutations and test sweeps are reproducible across platforms
/// and standard-library versions.
class Rng {
 public:
  /// Seeds the generator; the same seed always produces the same stream.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  void Reseed(uint64_t seed);

  /// Uniform 32-bit value.
  uint32_t NextU32();

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform value in [0, bound). Requires bound > 0. Uses unbiased
  /// rejection sampling.
  uint32_t UniformU32(uint32_t bound);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed value in [0, n) with exponent `s` (s > 0). Rank 0 is
  /// the most frequent. Uses a precomputed CDF supplied by ZipfTable.
  /// (Use ZipfTable for repeated sampling; this header only declares it.)

 private:
  uint64_t state_;
};

/// Precomputed CDF for Zipf(n, s) sampling: P(rank = k) proportional to
/// 1 / (k + 1)^s. Sampling is O(log n) via binary search on the CDF.
class ZipfTable {
 public:
  /// Requires n > 0 and s >= 0 (s = 0 degenerates to uniform).
  ZipfTable(uint32_t n, double s);

  /// Draws a rank in [0, n).
  uint32_t Sample(Rng& rng) const;

  uint32_t size() const { return static_cast<uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_RNG_H_
