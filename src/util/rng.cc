#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ssjoin {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr uint64_t kPcgIncrement = 1442695040888963407ULL;
}  // namespace

void Rng::Reseed(uint64_t seed) {
  state_ = 0;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + kPcgIncrement;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18U) ^ old) >> 27U);
  uint32_t rot = static_cast<uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::UniformU32(uint32_t bound) {
  SSJOIN_DCHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (0U - bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  SSJOIN_DCHECK(lo <= hi);
  uint32_t span = static_cast<uint32_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int>(NextU32());  // full int range
  return lo + static_cast<int>(UniformU32(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

ZipfTable::ZipfTable(uint32_t n, double s) {
  SSJOIN_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint32_t ZipfTable::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace ssjoin
