#ifndef SSJOIN_UTIL_FUNCTION_REF_H_
#define SSJOIN_UTIL_FUNCTION_REF_H_

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace ssjoin {

/// Non-owning reference to a callable, the hot-loop alternative to
/// std::function: trivially copyable, never allocates, and costs one
/// indirect call. The referenced callable must outlive every invocation
/// (bind named locals, not temporaries, when the ref escapes the full
/// expression).
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;
  constexpr FunctionRef(std::nullptr_t) {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT: implicit like std::function
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return invoke_ != nullptr; }
  bool operator==(std::nullptr_t) const { return invoke_ == nullptr; }
  bool operator!=(std::nullptr_t) const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_FUNCTION_REF_H_
