#include "util/varint.h"

#include "util/logging.h"

namespace ssjoin {

void PutVarint32(std::string* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint32(const std::string& data, size_t* offset, uint32_t* value) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*offset >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[*offset]);
    ++*offset;
    uint32_t payload = byte & 0x7F;
    // The 5th byte has 4 value bits left (32 - 28); anything above would
    // shift past the width and silently wrap. Reject instead.
    if (shift == 28 && (payload >> 4) != 0) return false;
    // A zero continuation byte means the value was already complete: an
    // overlong (non-canonical) encoding PutVarint32 never produces.
    if (shift > 0 && byte == 0) return false;
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // more than 5 bytes: malformed
}

bool GetVarint64(const std::string& data, size_t* offset, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*offset >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[*offset]);
    ++*offset;
    uint64_t payload = byte & 0x7F;
    // The 10th byte has a single value bit left (64 - 63).
    if (shift == 63 && (payload >> 1) != 0) return false;
    if (shift > 0 && byte == 0) return false;
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // more than 10 bytes: malformed
}

size_t Varint32Size(uint32_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

std::string EncodeDeltaList(const std::vector<uint32_t>& ids) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(ids.size()));
  uint32_t prev = 0;
  for (uint32_t id : ids) {
    SSJOIN_DCHECK(id >= prev);
    PutVarint32(&out, id - prev);
    prev = id;
  }
  return out;
}

bool DecodeDeltaList(const std::string& encoded, std::vector<uint32_t>* ids) {
  ids->clear();
  size_t offset = 0;
  uint32_t count = 0;
  if (!GetVarint32(encoded, &offset, &count)) return false;
  // Every delta takes at least one byte; a count beyond the remaining
  // bytes is corrupt — reject before reserve() turns it into a huge
  // allocation.
  if (count > encoded.size() - offset) return false;
  ids->reserve(count);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(encoded, &offset, &delta)) return false;
    prev += delta;
    ids->push_back(prev);
  }
  return offset == encoded.size();
}

}  // namespace ssjoin
