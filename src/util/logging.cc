#include "util/logging.h"

#include <atomic>
#include <cstdlib>

namespace ssjoin {
namespace internal_logging {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

std::atomic<int>& MinLevelStorage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("SSJOIN_LOG_LEVEL")) {
      int v = std::atoi(env);
      if (v >= 0 && v <= 4) return v;
    }
    return static_cast<int>(LogLevel::kInfo);
  }();
  return level;
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(MinLevelStorage().load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace ssjoin
