#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/logging.h"

namespace ssjoin {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int worker = 1; worker < num_threads_; ++worker) {
    workers_.emplace_back([this, worker] {
      uint64_t seen_generation = 0;
      for (;;) {
        const RangeFn* fn;
        size_t total, chunk;
        {
          std::unique_lock<std::mutex> lock(mutex_);
          work_cv_.wait(lock, [this, seen_generation] {
            return stop_ || generation_ != seen_generation;
          });
          if (stop_) return;
          seen_generation = generation_;
          fn = job_fn_;
          total = job_total_;
          chunk = job_chunk_;
        }
        RunChunks(*fn, total, chunk, worker);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (--remaining_ == 0) done_cv_.notify_one();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(const RangeFn& fn, size_t total, size_t chunk,
                           int worker) {
  for (;;) {
    size_t begin = next_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= total) return;
    fn(begin, std::min(begin + chunk, total), worker);
  }
}

void ThreadPool::ParallelFor(size_t total, size_t chunk, const RangeFn& fn) {
  if (total == 0) return;
  if (chunk == 0) chunk = 1;

  // Exceptions thrown by fn must not unwind through the worker loop
  // (std::thread would std::terminate): every invocation goes through a
  // guard that captures the first exception for rethrow on the caller.
  // Later chunks observe the failure flag and drain without running fn.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const RangeFn guarded = [&](size_t begin, size_t end, int worker) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      fn(begin, end, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error == nullptr) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  if (workers_.empty() || total <= chunk) {
    guarded(0, total, 0);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SSJOIN_CHECK(remaining_ == 0);  // ParallelFor is not reentrant
      job_fn_ = &guarded;
      job_total_ = total;
      job_chunk_ = chunk;
      next_.store(0, std::memory_order_relaxed);
      remaining_ = static_cast<int>(workers_.size());
      ++generation_;
    }
    work_cv_.notify_all();
    RunChunks(guarded, total, chunk, /*worker=*/0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_fn_ = nullptr;
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

int ThreadPool::DefaultNumThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace ssjoin
