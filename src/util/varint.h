#ifndef SSJOIN_UTIL_VARINT_H_
#define SSJOIN_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ssjoin {

/// LEB128-style variable-length integer coding, used to delta-compress
/// posting lists (Section 4 of the paper relies on standard IR index
/// compression; this is the codec behind CompressedPostings).

/// Appends `value` to `out` using 1-5 bytes.
void PutVarint32(std::string* out, uint32_t value);

/// Appends `value` to `out` using 1-10 bytes.
void PutVarint64(std::string* out, uint64_t value);

/// Decodes a varint32 starting at data[*offset]; advances *offset.
/// Returns false on truncated or malformed input.
bool GetVarint32(const std::string& data, size_t* offset, uint32_t* value);

/// Decodes a varint64 starting at data[*offset]; advances *offset.
bool GetVarint64(const std::string& data, size_t* offset, uint64_t* value);

/// Number of bytes PutVarint32 would append for `value`.
size_t Varint32Size(uint32_t value);

/// Delta-encodes a strictly/weakly increasing sequence of ids.
/// Requires ids to be non-decreasing.
std::string EncodeDeltaList(const std::vector<uint32_t>& ids);

/// Inverse of EncodeDeltaList. Returns false on malformed input.
bool DecodeDeltaList(const std::string& encoded, std::vector<uint32_t>* ids);

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_VARINT_H_
