#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ssjoin {

namespace {

Status MapError(const std::string& what, const std::string& path) {
  return Status::IOError(what + ": " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return MapError("cannot open for mapping", path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    Status status = MapError("cannot stat for mapping", path);
    ::close(fd);
    return status;
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* data =
        ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      Status status = MapError("cannot mmap", path);
      ::close(fd);
      return status;
    }
    mapped.data_ = data;
  }
  // The fd is not needed once the mapping exists; the kernel keeps the
  // file pinned through the mapping itself.
  ::close(fd);
  return mapped;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::Advise(Advice advice) const {
  if (data_ == nullptr) return;
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      native = MADV_NORMAL;
      break;
    case Advice::kWillNeed:
      native = MADV_WILLNEED;
      break;
    case Advice::kRandom:
      native = MADV_RANDOM;
      break;
    case Advice::kDontNeed:
      native = MADV_DONTNEED;
      break;
  }
  ::madvise(data_, size_, native);
}

}  // namespace ssjoin
