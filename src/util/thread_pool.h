#ifndef SSJOIN_UTIL_THREAD_POOL_H_
#define SSJOIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssjoin {

/// A small fixed-size worker pool built for the one pattern the join
/// algorithms need: blocking data-parallel loops over an index range.
/// Work distribution is chunk-stealing — workers repeatedly claim the
/// next unclaimed chunk from a shared atomic cursor, so skewed per-item
/// cost (hot records with long posting lists) balances automatically.
///
/// The calling thread participates as worker 0, so a pool of size N uses
/// N-1 background threads and ParallelFor saturates N cores.
class ThreadPool {
 public:
  /// fn(begin, end, worker): process items [begin, end). `worker` is a
  /// stable id in [0, num_threads) — use it to index per-worker state.
  using RangeFn = std::function<void(size_t begin, size_t end, int worker)>;

  /// Spawns num_threads - 1 background workers (clamped to >= 1; a pool
  /// of size 1 runs everything inline on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn over [0, total) in chunks of `chunk` items and blocks until
  /// every item has been processed. Chunks are claimed dynamically; two
  /// invocations may assign items to different workers, so callers that
  /// need determinism must merge per-worker results order-independently.
  /// Writes made by fn happen-before ParallelFor's return.
  /// Not reentrant: do not call ParallelFor from inside fn.
  ///
  /// If fn throws, the first exception (in completion order) is captured
  /// and rethrown on the calling thread after every worker has drained —
  /// it never crosses the noexcept worker-thread boundary. Chunks
  /// claimed after a failure are skipped, so items may go unprocessed;
  /// the pool itself stays usable for subsequent ParallelFor calls.
  void ParallelFor(size_t total, size_t chunk, const RangeFn& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultNumThreads();

 private:
  void RunChunks(const RangeFn& fn, size_t total, size_t chunk, int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // ParallelFor waits for the drain
  uint64_t generation_ = 0;           // bumped once per ParallelFor
  int remaining_ = 0;                 // workers still draining this job
  bool stop_ = false;

  // Current job; valid while remaining_ > 0. Chunk claims go through
  // next_ so workers never contend on mutex_ while there is work.
  const RangeFn* job_fn_ = nullptr;
  size_t job_total_ = 0;
  size_t job_chunk_ = 0;
  std::atomic<size_t> next_{0};
};

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_THREAD_POOL_H_
