#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace ssjoin {

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ssjoin
