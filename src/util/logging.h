#ifndef SSJOIN_UTIL_LOGGING_H_
#define SSJOIN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ssjoin {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Minimum level that is emitted; defaults to kInfo. Settable via
/// SetMinLogLevel or the SSJOIN_LOG_LEVEL environment variable
/// (0=debug .. 4=fatal), read once at first use.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Stream-style log sink. Emits on destruction; aborts after emitting a
/// kFatal message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below the minimum.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace ssjoin

#define SSJOIN_LOG_AT(level)                                                 \
  (::ssjoin::internal_logging::MinLogLevel() > (level))                      \
      ? (void)0                                                              \
      : (void)(::ssjoin::internal_logging::LogMessage((level), __FILE__,     \
                                                      __LINE__)             \
                   .stream())

#define SSJOIN_LOG_DEBUG                                                    \
  ::ssjoin::internal_logging::LogMessage(                                   \
      ::ssjoin::internal_logging::LogLevel::kDebug, __FILE__, __LINE__)     \
      .stream()
#define SSJOIN_LOG_INFO                                                     \
  ::ssjoin::internal_logging::LogMessage(                                   \
      ::ssjoin::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)      \
      .stream()
#define SSJOIN_LOG_WARNING                                                  \
  ::ssjoin::internal_logging::LogMessage(                                   \
      ::ssjoin::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)   \
      .stream()
#define SSJOIN_LOG_ERROR                                                    \
  ::ssjoin::internal_logging::LogMessage(                                   \
      ::ssjoin::internal_logging::LogLevel::kError, __FILE__, __LINE__)     \
      .stream()
#define SSJOIN_LOG_FATAL                                                    \
  ::ssjoin::internal_logging::LogMessage(                                   \
      ::ssjoin::internal_logging::LogLevel::kFatal, __FILE__, __LINE__)     \
      .stream()

/// Always-on invariant check; aborts with a message on failure.
#define SSJOIN_CHECK(cond)                                       \
  while (!(cond)) SSJOIN_LOG_FATAL << "Check failed: " #cond " "

/// Debug-only invariant check.
#ifdef NDEBUG
#define SSJOIN_DCHECK(cond) \
  while (false && !(cond)) ::ssjoin::internal_logging::NullStream()
#else
#define SSJOIN_DCHECK(cond) SSJOIN_CHECK(cond)
#endif

#endif  // SSJOIN_UTIL_LOGGING_H_
