#ifndef SSJOIN_UTIL_STATUS_H_
#define SSJOIN_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ssjoin {

/// Error taxonomy for fallible operations (I/O, configuration).
/// Pure in-memory algorithms assert invariants instead of returning errors.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Lightweight status object in the style of absl::Status / rocksdb::Status.
/// The library never throws; every fallible public entry point returns a
/// Status or a Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error: the moral equivalent of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::IOError(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Checked in debug builds.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define SSJOIN_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::ssjoin::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_STATUS_H_
