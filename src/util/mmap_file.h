#ifndef SSJOIN_UTIL_MMAP_FILE_H_
#define SSJOIN_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace ssjoin {

/// A whole file mapped read-only into the address space (RAII). The
/// serving tier's out-of-core base uses one of these per `.sseg`
/// segment: views into the mapping back RecordSet/InvertedIndex arenas
/// directly, so segment bodies page in on demand instead of being
/// materialized at Open. The mapping is private and read-only — the
/// kernel reclaims clean pages under memory pressure for free, and
/// Advise() lets the residency-budget policy steer which segments stay
/// warm. Instances are shared by shared_ptr from every snapshot that
/// aliases the segment, so the mapping outlives any probe that reads it.
class MappedFile {
 public:
  enum class Advice {
    kNormal,    // default kernel readahead
    kWillNeed,  // prefetch: the segment is inside the resident budget
    kRandom,    // disable readahead: cold segment, probe access is random
    kDontNeed,  // drop resident pages now (they reload on next fault)
  };

  /// Maps `path` read-only. Fails with an errno-context IOError when the
  /// file cannot be opened, stat'ed or mapped. An empty file maps to a
  /// null view with size 0 (valid, never dereferenced).
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

  /// Applies an madvise hint over the whole mapping. Advisory only:
  /// failures are ignored (the mapping stays correct either way), so
  /// const — residency policy never changes the bytes.
  void Advise(Advice advice) const;

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_MMAP_FILE_H_
