#ifndef SSJOIN_UTIL_TIMER_H_
#define SSJOIN_UTIL_TIMER_H_

#include <chrono>

namespace ssjoin {

/// Simple monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ssjoin

#endif  // SSJOIN_UTIL_TIMER_H_
