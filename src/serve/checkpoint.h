#ifndef SSJOIN_SERVE_CHECKPOINT_H_
#define SSJOIN_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/record_set.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace ssjoin {

/// Checkpoint save/load of SimilarityService's durable state: the raw
/// corpus (every record ever inserted, with texts), the deleted bitmap,
/// the prepared base arena, and every base shard's member/global id
/// tables, CSR index extents and pending tombstones, under one versioned,
/// CRC32-checksummed file written tmp-then-rename — a checkpoint on disk
/// is always whole. See DESIGN.md "Durability & recovery".
///
/// Unlike SaveIndex (which quantizes posting scores to float32 — fine for
/// batch candidate generation, where verification recomputes on full
/// records), checkpointed shard indexes keep full double scores: the
/// recovery contract is BYTE-identical query answers, and probe pruning
/// reads posting scores directly.

/// Paths of the two durable artifacts inside a service data directory.
std::string CheckpointFilePath(const std::string& data_dir);
std::string WalFilePath(const std::string& data_dir);

/// mkdir -p for `data_dir` (each missing component, 0755).
Status EnsureDataDir(const std::string& data_dir);

/// Whether `data_dir` holds a checkpoint file.
bool CheckpointExists(const std::string& data_dir);

/// Borrowed view of the service state a checkpoint covers — Save never
/// copies the corpus or indexes. `shards` and `tombstones` are parallel,
/// one entry per token-range shard (tombstone lists are empty at
/// compaction-point checkpoints, but the format carries them so the
/// on-disk state is self-contained).
struct CheckpointState {
  uint64_t epoch = 0;
  /// Last WAL seq this checkpoint covers: replay skips frames at or below
  /// it, so a crash between checkpoint rename and WAL reset never
  /// double-applies an operation.
  uint64_t wal_seq = 0;
  /// Predicate fingerprint (Predicate::name()); Open refuses to restore
  /// under a different predicate, whose scores/thresholds would silently
  /// disagree with the serialized prepared arena.
  std::string predicate;
  std::vector<TokenId> shard_bounds;
  const RecordSet* corpus = nullptr;
  const std::vector<bool>* deleted = nullptr;
  const RecordSet* base_records = nullptr;
  std::vector<const ShardedBaseTier*> shards;
  std::vector<const std::vector<RecordId>*> tombstones;
};

/// Owned counterpart produced by LoadCheckpoint.
struct ServiceCheckpoint {
  uint64_t epoch = 0;
  uint64_t wal_seq = 0;
  std::string predicate;
  std::vector<TokenId> shard_bounds;
  RecordSet corpus;
  std::vector<bool> deleted;
  RecordSet base_records;
  std::vector<std::shared_ptr<ShardedBaseTier>> shards;
  std::vector<std::vector<RecordId>> tombstones;

  size_t num_shards() const { return shards.size(); }
};

/// Writes the checkpoint file for `state` into `data_dir`, atomically
/// replacing any previous checkpoint (tmp + fsync + rename + directory
/// fsync). On failure the previous checkpoint, if any, is untouched.
Status SaveCheckpoint(const std::string& data_dir,
                      const CheckpointState& state);

/// Reads and verifies (magic, version, trailing CRC32, structural
/// bounds) the checkpoint in `data_dir`.
Result<ServiceCheckpoint> LoadCheckpoint(const std::string& data_dir);

// ---------------------------------------------------------------------
// Encoding primitives, exposed for the round-trip property tests.

/// Appends `records` — tokens (delta varints), full double scores, norm,
/// text length, text, per record — to `out`. Statistics are NOT encoded:
/// decoding re-Adds each record, which rebuilds doc/term frequencies
/// identically (Add counts each distinct token once, exactly as the
/// original insertion did).
void EncodeRecordSet(const RecordSet& records, std::string* out);
/// Decodes at data[*offset]; advances *offset past the record set.
Result<RecordSet> DecodeRecordSet(const std::string& data, size_t* offset);

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_CHECKPOINT_H_
