#ifndef SSJOIN_SERVE_CHECKPOINT_H_
#define SSJOIN_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/record_set.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace ssjoin {

/// Incremental, segment-granular checkpoints of SimilarityService's
/// durable state. A checkpoint is a MANIFEST (checkpoint.ssc) plus one
/// immutable segment file (segment-<id>.sseg) per chain segment:
///
///   * Segment files hold a segment's prepared record arena (full double
///     scores, texts), its global-id table and every shard part's id
///     tables and CSR index. A segment is written ONCE, when a checkpoint
///     first covers it, and never rewritten — steady-state checkpoints
///     write one new (delta-sized) segment file plus the small manifest,
///     which is what makes checkpointing O(delta) alongside compaction.
///   * The manifest holds everything that still changes: epoch, WAL
///     fence, shard bounds, the deleted bitmap, per-segment dead masks
///     and live counts, pending tombstones, and the ordered list of
///     segment file ids it depends on. For corpus-statistics predicates
///     (TF-IDF cosine) it also carries the raw corpus — the documented
///     full-rebuild exception, whose chain is always one segment anyway.
///
/// Both file kinds are CRC32-trailered and written tmp-then-rename, so
/// each is individually whole; the manifest rename is the commit point
/// (it only ever references segment files that were durably renamed
/// before it). Segment files left behind by a crash between segment
/// write and manifest rename — or orphaned by a merge — are garbage-
/// collected: LoadCheckpoint unlinks every segment file the manifest
/// does not reference. See DESIGN.md "Durability & recovery".
///
/// Segment files are v3: every arena the probe path streams (record
/// offsets, token/score CSR arenas, text blob, per-shard posting extents
/// and the token-bitmap block) is written 64-byte-aligned and byte-
/// layout-identical to its in-memory form, so Open can either
/// materialize a segment (decode + revalidate everything, the
/// `resident_budget_bytes == 0` path) or `mmap` the body read-only and
/// serve straight from the page cache (MapSegmentFile; see DESIGN.md
/// "Out-of-core segments").
///
/// Unlike SaveIndex (which quantizes posting scores to float32 — fine
/// for batch candidate generation, where verification recomputes on full
/// records), checkpointed shard indexes keep full double scores: the
/// recovery contract is BYTE-identical query answers, and probe pruning
/// reads posting scores directly.

/// Paths of the durable artifacts inside a service data directory.
std::string CheckpointFilePath(const std::string& data_dir);
std::string WalFilePath(const std::string& data_dir);
std::string SegmentFilePath(const std::string& data_dir, uint64_t segment_id);

/// Segment file ids present in `data_dir` (whether or not the manifest
/// references them). Exposed for the orphan-GC tests.
std::set<uint64_t> ListSegmentFiles(const std::string& data_dir);

/// mkdir -p for `data_dir` (each missing component, 0755).
Status EnsureDataDir(const std::string& data_dir);

/// Whether `data_dir` holds a checkpoint manifest.
bool CheckpointExists(const std::string& data_dir);

/// Borrowed view of the service state a checkpoint covers — Save never
/// copies the corpus or indexes. `segments` is the chain in order;
/// `tombstones` has one entry per token-range shard (empty at
/// compaction-point checkpoints, but the format carries them so the
/// on-disk state is self-contained).
struct CheckpointState {
  uint64_t epoch = 0;
  /// Last WAL seq this checkpoint covers: replay skips frames at or below
  /// it, so a crash between checkpoint rename and WAL reset never
  /// double-applies an operation.
  uint64_t wal_seq = 0;
  /// Predicate fingerprint (Predicate::name()); Open refuses to restore
  /// under a different predicate, whose scores/thresholds would silently
  /// disagree with the serialized prepared arenas.
  std::string predicate;
  std::vector<TokenId> shard_bounds;
  /// Total record ids ever assigned (the next insert's id).
  uint64_t next_id = 0;
  /// Next segment file id to assign; persisting it keeps ids unique
  /// across restarts so recovered and crashed-over files never collide.
  uint64_t next_segment_id = 0;
  /// Per-global-id deleted bitmap, size next_id.
  const std::vector<bool>* deleted = nullptr;
  /// Raw (unprepared) corpus; REQUIRED for corpus-statistics predicates
  /// (their full rebuild re-Prepares from raw), null for the rest —
  /// prepared segment records carry everything else recovery needs.
  const RecordSet* raw_corpus = nullptr;
  struct SegmentRef {
    const CorpusSegment* segment = nullptr;
    /// Per-shard dead masks (sorted part-local ids); null entries = none.
    std::vector<const std::vector<RecordId>*> dead;
    uint64_t live = 0;
  };
  std::vector<SegmentRef> segments;
  std::vector<const std::vector<RecordId>*> tombstones;  // per shard
};

/// Segment-file garbage-collection outcome (both Save and Load GC
/// unreferenced segment files); failures feed ServiceStats so a disk
/// that silently accretes garbage is visible to operators.
struct GcStats {
  uint64_t unlinked_segments = 0;
  uint64_t unlink_failures = 0;
};

/// How LoadCheckpoint materializes segment bodies.
struct CheckpointLoadOptions {
  /// 0 (default): decode every segment into heap memory, fully verified
  /// — the historical behavior. >0: mmap segment bodies read-only and
  /// serve from views (unless the checkpoint carries a raw corpus, whose
  /// full-rebuild path needs owned sets); the budget value itself only
  /// steers residency advice, applied by the service after load.
  uint64_t resident_budget_bytes = 0;
};

/// Owned counterpart produced by LoadCheckpoint.
struct ServiceCheckpoint {
  uint64_t epoch = 0;
  uint64_t wal_seq = 0;
  std::string predicate;
  std::vector<TokenId> shard_bounds;
  uint64_t next_id = 0;
  uint64_t next_segment_id = 0;
  std::vector<bool> deleted;
  bool has_raw_corpus = false;
  RecordSet raw_corpus;  // meaningful only when has_raw_corpus
  struct Segment {
    std::shared_ptr<const CorpusSegment> segment;
    std::vector<std::vector<RecordId>> dead;  // per shard; may be empty lists
    uint64_t live = 0;
  };
  std::vector<Segment> segments;
  std::vector<std::vector<RecordId>> tombstones;  // per shard
  /// Orphan-GC outcome of this load.
  GcStats gc;

  size_t num_shards() const { return tombstones.size(); }
};

/// Writes the checkpoint for `state` into `data_dir`: first every chain
/// segment file not yet on disk (tracked via `persisted_segments`, which
/// is updated ONLY when the whole checkpoint commits), then the manifest,
/// atomically replacing any previous one (tmp + fsync + rename +
/// directory fsync). After a successful commit, segment files the new
/// manifest no longer references (merged-away segments) are unlinked;
/// a failure at any point leaves the previous checkpoint fully
/// restorable — at worst unreferenced segment files linger until the
/// next GC pass.
Status SaveCheckpoint(const std::string& data_dir, const CheckpointState& state,
                      std::set<uint64_t>* persisted_segments,
                      GcStats* gc_stats = nullptr);

/// Reads and verifies (magic, version, trailing CRC32, structural
/// bounds) the manifest and every segment file it references, then
/// garbage-collects unreferenced segment files. With a non-zero
/// resident budget, segment bodies are mapped instead of decoded (see
/// CheckpointLoadOptions).
Result<ServiceCheckpoint> LoadCheckpoint(
    const std::string& data_dir, const CheckpointLoadOptions& options = {});

/// Writes segment-<id>.sseg (v3, atomic tmp+rename). Exposed so the
/// service can persist a freshly merged segment at compaction time and
/// map it straight back (the O(delta)-RSS compaction path); SaveCheckpoint
/// skips segments already recorded in `persisted_segments`.
Status WriteSegmentFile(const std::string& data_dir,
                        const CorpusSegment& segment);

/// Maps segment-<id>.sseg read-only and builds a view-mode CorpusSegment
/// over it: arenas and posting extents point into the mapping; the
/// tables candidate gating reads (record offsets, norms, text lengths,
/// token bitmaps, id tables) are small heap copies, validated against
/// the CRC-protected header. Truncated or foreign files surface as a
/// Status — the mapping is never dereferenced past its validated size.
Result<std::shared_ptr<const CorpusSegment>> MapSegmentFile(
    const std::string& data_dir, uint64_t segment_id, uint64_t num_shards);

// ---------------------------------------------------------------------
// Encoding primitives, exposed for the round-trip property tests.

/// Appends `records` — tokens (delta varints), full double scores, norm,
/// text length, text, per record — to `out`. Statistics are NOT encoded:
/// decoding re-Adds each record, which rebuilds doc/term frequencies
/// identically (Add counts each distinct token once, exactly as the
/// original insertion did).
void EncodeRecordSet(const RecordSet& records, std::string* out);
/// Decodes at data[*offset]; advances *offset past the record set.
Result<RecordSet> DecodeRecordSet(const std::string& data, size_t* offset);

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_CHECKPOINT_H_
