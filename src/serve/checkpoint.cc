#include "serve/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "index/index_io.h"
#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kCheckpointMagic[4] = {'S', 'S', 'C', 'P'};
constexpr uint32_t kCheckpointVersion = 2;  // v2: segment-chain manifest
constexpr char kCheckpointFile[] = "checkpoint.ssc";
constexpr char kWalFile[] = "wal.log";

constexpr char kSegmentMagic[4] = {'S', 'S', 'S', 'G'};
// v3: the out-of-core layout. A CRC-protected fixed header carries every
// count; all sections after it (record offsets, token/score CSR arenas,
// text table + blob, global ids, per-shard id tables + posting extents,
// and the token-bitmap block, in that order) are 64-byte-aligned and
// byte-layout-identical to their in-memory form, so Open can mmap the
// body and serve from views instead of decoding. The bitmap block sits
// LAST so the whole-file integrity property of v2 (arena and bitmaps
// must agree end to end) survives unchanged on the materialized path.
// v1 (no bitmap block) and v2 (varint-packed body) files are rejected
// with a clear "unsupported segment version" error.
constexpr uint32_t kSegmentVersion = 3;
constexpr char kSegmentPrefix[] = "segment-";
constexpr char kSegmentSuffix[] = ".sseg";

Status Corrupt(const std::string& what, const std::string& path) {
  return Status::IOError("corrupt checkpoint (" + what + "): " + path);
}

bool StrictlyIncreasing(const std::vector<RecordId>& ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] <= ids[i - 1]) return false;
  }
  return true;
}

/// varint64 count + delta varints. Requires non-decreasing ids (every id
/// table in a checkpoint — members, globals, shorts, tombstones — is).
void PutIdList(std::string* out, const std::vector<RecordId>& ids) {
  PutVarint64(out, ids.size());
  RecordId prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    PutVarint32(out, ids[i] - prev);
    prev = ids[i];
  }
}

bool GetIdList(const std::string& data, size_t* offset,
               std::vector<RecordId>* ids) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  if (count > data.size()) return false;  // >= 1 byte per encoded id
  ids->clear();
  ids->reserve(count);
  RecordId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, offset, &delta)) return false;
    prev += delta;
    ids->push_back(prev);
  }
  return true;
}

void PutBitVector(std::string* out, const std::vector<bool>& bits) {
  PutVarint64(out, bits.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(byte));
}

bool GetBitVector(const std::string& data, size_t* offset,
                  std::vector<bool>* bits) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  const size_t bytes = static_cast<size_t>((count + 7) / 8);
  if (*offset + bytes > data.size()) return false;
  bits->assign(count, false);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t byte =
        static_cast<uint8_t>(data[*offset + i / 8]);
    (*bits)[i] = (byte >> (i % 8)) & 1u;
  }
  *offset += bytes;
  return true;
}

}  // namespace

std::string CheckpointFilePath(const std::string& data_dir) {
  return data_dir + "/" + kCheckpointFile;
}

std::string WalFilePath(const std::string& data_dir) {
  return data_dir + "/" + kWalFile;
}

std::string SegmentFilePath(const std::string& data_dir,
                            uint64_t segment_id) {
  return data_dir + "/" + kSegmentPrefix + std::to_string(segment_id) +
         kSegmentSuffix;
}

std::set<uint64_t> ListSegmentFiles(const std::string& data_dir) {
  std::set<uint64_t> ids;
  DIR* dir = ::opendir(data_dir.c_str());
  if (dir == nullptr) return ids;
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    uint64_t id = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    // Round-trip through the canonical name so padded or overflowed
    // spellings ("segment-007.sseg") are never claimed by GC or load.
    if (numeric && SegmentFilePath(data_dir, id) == data_dir + "/" + name) {
      ids.insert(id);
    }
  }
  ::closedir(dir);
  return ids;
}

Status EnsureDataDir(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty");
  }
  // mkdir -p: create each missing component in turn.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = data_dir.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? data_dir : data_dir.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoIOError("cannot create data directory", prefix);
    }
  }
  return Status::OK();
}

bool CheckpointExists(const std::string& data_dir) {
  return ::access(CheckpointFilePath(data_dir).c_str(), F_OK) == 0;
}

void EncodeRecordSet(const RecordSet& records, std::string* out) {
  PutVarint64(out, records.size());
  for (RecordId id = 0; id < records.size(); ++id) {
    const RecordView record = records.record(id);
    PutVarint32(out, static_cast<uint32_t>(record.size()));
    TokenId prev = 0;
    for (size_t i = 0; i < record.size(); ++i) {
      PutVarint32(out, record.token(i) - prev);
      prev = record.token(i);
    }
    for (size_t i = 0; i < record.size(); ++i) {
      PutDouble(out, record.score(i));
    }
    PutDouble(out, record.norm());
    PutVarint32(out, record.text_length());
    const std::string& text = records.text(id);
    PutVarint64(out, text.size());
    out->append(text);
  }
}

Result<RecordSet> DecodeRecordSet(const std::string& data, size_t* offset) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) {
    return Status::IOError("truncated record-set count");
  }
  if (count > data.size()) {
    return Status::IOError("implausible record-set count");
  }
  RecordSet records;
  std::vector<TokenId> tokens;
  std::vector<double> scores;
  for (uint64_t r = 0; r < count; ++r) {
    uint32_t num_tokens = 0;
    if (!GetVarint32(data, offset, &num_tokens) ||
        num_tokens > data.size()) {
      return Status::IOError("truncated record header");
    }
    tokens.assign(num_tokens, 0);
    scores.assign(num_tokens, 0);
    TokenId prev = 0;
    for (uint32_t i = 0; i < num_tokens; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, offset, &delta)) {
        return Status::IOError("truncated record tokens");
      }
      if (i > 0 && delta == 0) {
        return Status::IOError("non-monotone record tokens");
      }
      prev = i == 0 ? delta : prev + delta;
      tokens[i] = prev;
    }
    for (uint32_t i = 0; i < num_tokens; ++i) {
      if (!GetDouble(data, offset, &scores[i])) {
        return Status::IOError("truncated record scores");
      }
    }
    double norm = 0;
    uint32_t text_length = 0;
    uint64_t text_size = 0;
    if (!GetDouble(data, offset, &norm) ||
        !GetVarint32(data, offset, &text_length) ||
        !GetVarint64(data, offset, &text_size)) {
      return Status::IOError("truncated record trailer");
    }
    if (*offset + text_size > data.size()) {
      return Status::IOError("truncated record text");
    }
    std::string text(data, *offset, text_size);
    *offset += text_size;
    // Add() recounts doc/term frequencies exactly as the live insertion
    // did, so the decoded set's statistics match the encoded one's.
    records.Add(RecordView(tokens.data(), scores.data(), num_tokens, norm,
                           text_length),
                std::move(text));
  }
  return records;
}

namespace {

// ---------------------------------------------------------------------
// v3 segment files. One deterministic layout walk (ComputeSegmentLayout)
// is shared by the writer, the materialized loader and the mapped opener,
// so the three can never disagree about where a section lives. All
// multi-byte fields are host-endian raw bytes, exactly as the in-memory
// structures hold them — that equivalence is what makes mmap'ing the
// body equivalent to decoding it.

constexpr uint64_t kSegmentAlign = 64;
// magic(4) + version(4) + segment_id, num_records, num_shards, vocab,
// total_occurrences, text_blob_bytes, file_size (7 x fixed64).
constexpr uint64_t kSegmentFixedHeaderBytes = 64;
// members, shorts, postings_cap, total_postings, num_nonempty (fixed64
// each) + min_norm (double).
constexpr uint64_t kSegmentShardEntryBytes = 48;

uint64_t AlignUp(uint64_t pos) {
  return (pos + (kSegmentAlign - 1)) & ~(kSegmentAlign - 1);
}

struct ShardLayout {
  // Counts, from the CRC-protected header entry.
  uint64_t members = 0;
  uint64_t shorts = 0;
  uint64_t postings_cap = 0;
  uint64_t total_postings = 0;
  uint64_t num_nonempty = 0;
  double min_norm = std::numeric_limits<double>::infinity();
  // Section offsets, derived by ComputeSegmentLayout.
  uint64_t member_ids_off = 0;
  uint64_t short_ids_off = 0;
  uint64_t begin_off = 0;
  uint64_t size_off = 0;
  uint64_t max_score_off = 0;
  uint64_t postings_off = 0;
};

struct SegmentLayout {
  uint64_t segment_id = 0;
  uint64_t num_records = 0;
  uint64_t vocab = 0;
  uint64_t total_occurrences = 0;
  uint64_t text_blob_bytes = 0;
  uint64_t header_bytes = 0;
  uint64_t file_size = 0;  // includes the trailing CRC
  uint64_t offsets_off = 0;
  uint64_t tokens_off = 0;
  uint64_t scores_off = 0;
  uint64_t norms_off = 0;
  uint64_t text_lengths_off = 0;
  uint64_t text_offsets_off = 0;
  uint64_t text_blob_off = 0;
  uint64_t global_ids_off = 0;
  uint64_t bitmaps_off = 0;
  std::vector<ShardLayout> shards;
};

/// Fills every section offset from the counts already present in
/// `layout`. Section order: record offsets, tokens, scores, norms, text
/// lengths, text offsets, text blob, global ids, then per shard (member
/// ids, short ids, extent begin/size/max_score, postings), then the
/// bitmap block LAST, then the trailing CRC. Every section starts
/// 64-byte-aligned (gaps are zero padding).
void ComputeSegmentLayout(SegmentLayout* layout) {
  layout->header_bytes = kSegmentFixedHeaderBytes +
                         kSegmentShardEntryBytes * layout->shards.size() +
                         sizeof(uint32_t);  // header CRC
  uint64_t pos = AlignUp(layout->header_bytes);
  auto section = [&pos](uint64_t bytes) {
    uint64_t off = pos;
    pos = AlignUp(pos + bytes);
    return off;
  };
  const uint64_t n = layout->num_records;
  layout->offsets_off = section((n + 1) * sizeof(uint64_t));
  layout->tokens_off = section(layout->total_occurrences * sizeof(TokenId));
  layout->scores_off = section(layout->total_occurrences * sizeof(double));
  layout->norms_off = section(n * sizeof(double));
  layout->text_lengths_off = section(n * sizeof(uint32_t));
  layout->text_offsets_off = section((n + 1) * sizeof(uint64_t));
  layout->text_blob_off = section(layout->text_blob_bytes);
  layout->global_ids_off = section(n * sizeof(RecordId));
  for (ShardLayout& shard : layout->shards) {
    shard.member_ids_off = section(shard.members * sizeof(RecordId));
    shard.short_ids_off = section(shard.shorts * sizeof(RecordId));
    shard.begin_off = section((layout->vocab + 1) * sizeof(uint64_t));
    shard.size_off = section(layout->vocab * sizeof(uint32_t));
    shard.max_score_off = section(layout->vocab * sizeof(double));
    shard.postings_off = section(shard.postings_cap * sizeof(Posting));
  }
  layout->bitmaps_off = section(n * sizeof(TokenBitmapEntry));
  layout->file_size = pos + sizeof(uint32_t);  // trailing CRC
}

uint32_t LoadU32(const char* base, uint64_t off) {
  uint32_t v = 0;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* base, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}

double LoadF64(const char* base, uint64_t off) {
  double v = 0;
  std::memcpy(&v, base + off, sizeof(v));
  return v;
}

/// Parses and verifies the v3 header of the byte range [data, data +
/// size) — the common front half of the materialized and mapped paths.
/// The version gate runs BEFORE the header checksum: a v1/v2 file has
/// payload bytes where v3's header fields live, and its error must read
/// "old format", not "corrupt". Every count is bounded against the real
/// file size before the layout walk, so the walk cannot overflow and
/// the derived section offsets are safe to dereference once
/// `layout.file_size == size` holds (truncation therefore surfaces here
/// as a Status, never as a fault on a mapped read).
Result<SegmentLayout> ParseSegmentHeader(const char* data, uint64_t size,
                                         uint64_t expected_id,
                                         uint64_t num_shards,
                                         const std::string& path) {
  if (size < sizeof(kSegmentMagic) + sizeof(uint32_t) ||
      std::memcmp(data, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Corrupt("bad segment magic", path);
  }
  const uint32_t version = LoadU32(data, sizeof(kSegmentMagic));
  if (version != kSegmentVersion) {
    return Status::IOError("unsupported segment version: " + path);
  }
  if (size < kSegmentFixedHeaderBytes) {
    return Corrupt("segment header truncated", path);
  }
  SegmentLayout layout;
  layout.segment_id = LoadU64(data, 8);
  layout.num_records = LoadU64(data, 16);
  const uint64_t file_shards = LoadU64(data, 24);
  layout.vocab = LoadU64(data, 32);
  layout.total_occurrences = LoadU64(data, 40);
  layout.text_blob_bytes = LoadU64(data, 48);
  const uint64_t recorded_size = LoadU64(data, 56);
  const uint64_t header_bytes = kSegmentFixedHeaderBytes +
                                kSegmentShardEntryBytes * num_shards +
                                sizeof(uint32_t);
  if (size < header_bytes) {
    return Corrupt("segment header truncated", path);
  }
  if (LoadU32(data, header_bytes - sizeof(uint32_t)) !=
      Crc32(data, header_bytes - sizeof(uint32_t))) {
    return Corrupt("segment header checksum mismatch", path);
  }
  // From here every header field is trustworthy (to CRC strength).
  if (file_shards != num_shards) {
    return Corrupt("segment shard count disagrees with manifest", path);
  }
  if (layout.segment_id != expected_id) {
    return Corrupt("segment id disagrees with its file name", path);
  }
  if (recorded_size != size) {
    return Corrupt("segment size disagrees with header", path);
  }
  // Bound every count by the file size (each element is >= 1 byte) and
  // cap the size itself so the aligned layout walk cannot overflow.
  if (size > (uint64_t{1} << 48)) {
    return Corrupt("implausible segment size", path);
  }
  if (layout.num_records > size || layout.vocab > size ||
      layout.total_occurrences > size || layout.text_blob_bytes > size) {
    return Corrupt("implausible segment counts", path);
  }
  layout.shards.resize(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    ShardLayout& shard = layout.shards[s];
    const uint64_t off =
        kSegmentFixedHeaderBytes + kSegmentShardEntryBytes * s;
    shard.members = LoadU64(data, off);
    shard.shorts = LoadU64(data, off + 8);
    shard.postings_cap = LoadU64(data, off + 16);
    shard.total_postings = LoadU64(data, off + 24);
    shard.num_nonempty = LoadU64(data, off + 32);
    shard.min_norm = LoadF64(data, off + 40);
    if (shard.members > layout.num_records || shard.shorts > shard.members ||
        shard.postings_cap > size ||
        shard.total_postings > shard.postings_cap ||
        shard.num_nonempty > layout.vocab) {
      return Corrupt("bad segment shard entry", path);
    }
  }
  ComputeSegmentLayout(&layout);
  if (layout.file_size != size) {
    return Corrupt("segment size disagrees with layout", path);
  }
  return layout;
}

/// Copies `count` elements of a mapped section into a fresh vector (the
/// heap-resident tables of the mapped path).
template <typename T>
std::vector<T> CopySection(const char* base, uint64_t off, uint64_t count) {
  std::vector<T> out(static_cast<size_t>(count));
  if (count > 0) {
    std::memcpy(out.data(), base + off, count * sizeof(T));
  }
  return out;
}

}  // namespace

/// One immutable v3 segment file: the segment's prepared arena,
/// global-id table and every shard part's id tables and CSR extents,
/// laid out by ComputeSegmentLayout, header-CRC'd and whole-file-CRC'd.
/// Dead masks and live counts are NOT here — they change after the
/// segment is written and live in the manifest.
Status WriteSegmentFile(const std::string& data_dir,
                        const CorpusSegment& segment) {
  const RecordSet& records = *segment.records;
  const uint64_t n = records.size();
  SegmentLayout layout;
  layout.segment_id = segment.id;
  layout.num_records = n;
  layout.total_occurrences = records.total_token_occurrences();
  // Extent tables for every shard span one shared vocabulary (tokens a
  // shard never saw get empty extents). A service-built segment plans
  // each shard over the record set's full vocabulary already; the max
  // keeps the writer total for any input.
  uint64_t vocab = records.vocabulary_size();
  for (const SegmentShardPart& part : segment.shards) {
    vocab = std::max<uint64_t>(vocab, part.index.token_capacity());
  }
  layout.vocab = vocab;
  uint64_t blob_bytes = 0;
  for (RecordId id = 0; id < n; ++id) {
    blob_bytes += records.text_view(id).size();
  }
  layout.text_blob_bytes = blob_bytes;
  layout.shards.resize(segment.shards.size());
  for (size_t s = 0; s < segment.shards.size(); ++s) {
    const SegmentShardPart& part = segment.shards[s];
    ShardLayout& shard = layout.shards[s];
    shard.members = part.member_ids.size();
    shard.shorts = part.short_ids.size();
    shard.postings_cap = part.index.postings_capacity();
    shard.total_postings = part.index.total_postings();
    shard.num_nonempty = part.index.num_tokens();
    shard.min_norm = part.index.min_norm();
  }
  ComputeSegmentLayout(&layout);

  std::string buffer(static_cast<size_t>(layout.file_size), '\0');
  auto put_bytes = [&buffer](uint64_t off, const void* src, size_t bytes) {
    if (bytes > 0) std::memcpy(&buffer[static_cast<size_t>(off)], src, bytes);
  };
  auto put_u32 = [&put_bytes](uint64_t off, uint32_t v) {
    put_bytes(off, &v, sizeof(v));
  };
  auto put_u64 = [&put_bytes](uint64_t off, uint64_t v) {
    put_bytes(off, &v, sizeof(v));
  };
  auto put_f64 = [&put_bytes](uint64_t off, double v) {
    put_bytes(off, &v, sizeof(v));
  };

  std::string head(kSegmentMagic, sizeof(kSegmentMagic));
  PutFixed32(&head, kSegmentVersion);
  PutFixed64(&head, layout.segment_id);
  PutFixed64(&head, layout.num_records);
  PutFixed64(&head, layout.shards.size());
  PutFixed64(&head, layout.vocab);
  PutFixed64(&head, layout.total_occurrences);
  PutFixed64(&head, layout.text_blob_bytes);
  PutFixed64(&head, layout.file_size);
  for (const ShardLayout& shard : layout.shards) {
    PutFixed64(&head, shard.members);
    PutFixed64(&head, shard.shorts);
    PutFixed64(&head, shard.postings_cap);
    PutFixed64(&head, shard.total_postings);
    PutFixed64(&head, shard.num_nonempty);
    PutDouble(&head, shard.min_norm);
  }
  PutFixed32(&head, Crc32(head.data(), head.size()));
  SSJOIN_DCHECK(head.size() == layout.header_bytes);
  put_bytes(0, head.data(), head.size());

  uint64_t token_run = 0;
  uint64_t text_run = 0;
  put_u64(layout.offsets_off, 0);
  put_u64(layout.text_offsets_off, 0);
  for (RecordId id = 0; id < n; ++id) {
    const RecordView record = records.record(id);
    put_bytes(layout.tokens_off + token_run * sizeof(TokenId),
              record.tokens().data(), record.size() * sizeof(TokenId));
    put_bytes(layout.scores_off + token_run * sizeof(double),
              record.scores().data(), record.size() * sizeof(double));
    token_run += record.size();
    put_u64(layout.offsets_off + (id + 1) * sizeof(uint64_t), token_run);
    put_f64(layout.norms_off + id * sizeof(double), record.norm());
    put_u32(layout.text_lengths_off + id * sizeof(uint32_t),
            record.text_length());
    const std::string_view text = records.text_view(id);
    put_bytes(layout.text_blob_off + text_run, text.data(), text.size());
    text_run += text.size();
    put_u64(layout.text_offsets_off + (id + 1) * sizeof(uint64_t), text_run);
    // Bitmap entries go out word by word (bits, token count, zero pads)
    // so the file bytes are deterministic whatever the compiler did with
    // in-memory padding.
    const TokenBitmapEntry& entry = records.token_bitmap_entry(id);
    const uint64_t bm = layout.bitmaps_off + id * sizeof(TokenBitmapEntry);
    for (size_t w = 0; w < kTokenBitmapWords; ++w) {
      put_u64(bm + w * sizeof(uint64_t), entry.bits[w]);
    }
    put_u64(bm + kTokenBitmapWords * sizeof(uint64_t), entry.tokens);
  }
  put_bytes(layout.global_ids_off, segment.global_ids.data(),
            segment.global_ids.size() * sizeof(RecordId));

  for (size_t s = 0; s < segment.shards.size(); ++s) {
    const SegmentShardPart& part = segment.shards[s];
    const ShardLayout& shard = layout.shards[s];
    put_bytes(shard.member_ids_off, part.member_ids.data(),
              part.member_ids.size() * sizeof(RecordId));
    put_bytes(shard.short_ids_off, part.short_ids.data(),
              part.short_ids.size() * sizeof(RecordId));
    const uint64_t cap_tokens = part.index.token_capacity();
    for (uint64_t t = 0; t <= layout.vocab; ++t) {
      put_u64(shard.begin_off + t * sizeof(uint64_t),
              t <= cap_tokens
                  ? part.index.extent_begin(static_cast<TokenId>(t))
                  : shard.postings_cap);
    }
    for (uint64_t t = 0; t < layout.vocab; ++t) {
      const bool in_cap = t < cap_tokens;
      put_u32(shard.size_off + t * sizeof(uint32_t),
              in_cap ? part.index.extent_size(static_cast<TokenId>(t)) : 0);
      put_f64(shard.max_score_off + t * sizeof(double),
              in_cap ? part.index.extent_max_score(static_cast<TokenId>(t))
                     : 0.0);
    }
    // Posting slots are copied field by field: the struct carries 4
    // padding bytes whose in-memory value is unspecified, and the file
    // bytes must be deterministic. Unfilled capacity slots stay zero.
    const Posting* postings = part.index.postings_buffer();
    for (uint64_t t = 0; t < cap_tokens; ++t) {
      const uint64_t extent = part.index.extent_begin(static_cast<TokenId>(t));
      const uint32_t live = part.index.extent_size(static_cast<TokenId>(t));
      for (uint32_t i = 0; i < live; ++i) {
        const Posting& p = postings[extent + i];
        const uint64_t slot =
            shard.postings_off + (extent + i) * sizeof(Posting);
        put_u32(slot, p.id);
        put_f64(slot + sizeof(uint64_t), p.score);
      }
    }
  }

  put_u32(layout.file_size - sizeof(uint32_t),
          Crc32(buffer.data(), layout.file_size - sizeof(uint32_t)));
  return WriteFileAtomic(SegmentFilePath(data_dir, segment.id), buffer);
}

namespace {

/// The materialized (resident_budget_bytes == 0) loader: verifies the
/// whole-file CRC, re-Adds every record (rebuilding frequency tables and
/// bitmaps exactly as live insertion did), cross-checks the stored
/// bitmap block word for word against the rebuilt arena, and rebuilds
/// every shard index through Plan/AppendPosting with full structural
/// validation against the stored extent tables. Everything a mapped open
/// trusts, this path proves.
Result<std::shared_ptr<const CorpusSegment>> LoadSegmentFile(
    const std::string& data_dir, uint64_t expected_id, uint64_t num_shards) {
  const std::string path = SegmentFilePath(data_dir, expected_id);
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  const char* base = data.data();
  Result<SegmentLayout> parsed =
      ParseSegmentHeader(base, data.size(), expected_id, num_shards, path);
  if (!parsed.ok()) return parsed.status();
  const SegmentLayout layout = std::move(parsed).value();
  if (LoadU32(base, layout.file_size - sizeof(uint32_t)) !=
      Crc32(base, layout.file_size - sizeof(uint32_t))) {
    return Corrupt("segment checksum mismatch", path);
  }
  const uint64_t n = layout.num_records;

  auto segment = std::make_shared<CorpusSegment>();
  segment->id = layout.segment_id;

  auto owned = std::make_shared<RecordSet>();
  if (LoadU64(base, layout.offsets_off) != 0 ||
      LoadU64(base, layout.text_offsets_off) != 0) {
    return Corrupt("bad segment record offsets", path);
  }
  uint64_t prev_end = 0;
  uint64_t prev_text = 0;
  for (RecordId id = 0; id < n; ++id) {
    const uint64_t end =
        LoadU64(base, layout.offsets_off + (id + 1) * sizeof(uint64_t));
    if (end < prev_end || end > layout.total_occurrences) {
      return Corrupt("bad segment record offsets", path);
    }
    const uint32_t count = static_cast<uint32_t>(end - prev_end);
    const TokenId* tokens =
        reinterpret_cast<const TokenId*>(base + layout.tokens_off) + prev_end;
    const double* scores =
        reinterpret_cast<const double*>(base + layout.scores_off) + prev_end;
    for (uint32_t i = 0; i < count; ++i) {
      if (i > 0 && tokens[i] <= tokens[i - 1]) {
        return Corrupt("non-monotone record tokens [segment arena]", path);
      }
      if (tokens[i] >= layout.vocab) {
        return Corrupt("segment token out of range", path);
      }
    }
    const double norm = LoadF64(base, layout.norms_off + id * sizeof(double));
    const uint32_t text_length =
        LoadU32(base, layout.text_lengths_off + id * sizeof(uint32_t));
    const uint64_t text_end =
        LoadU64(base, layout.text_offsets_off + (id + 1) * sizeof(uint64_t));
    if (text_end < prev_text || text_end > layout.text_blob_bytes) {
      return Corrupt("bad segment text offsets", path);
    }
    std::string text(base + layout.text_blob_off + prev_text,
                     static_cast<size_t>(text_end - prev_text));
    owned->Add(RecordView(tokens, scores, count, norm, text_length),
               std::move(text));
    prev_end = end;
    prev_text = text_end;
  }
  if (prev_end != layout.total_occurrences ||
      prev_text != layout.text_blob_bytes) {
    return Corrupt("segment arena size disagrees with header", path);
  }
  segment->records = owned;

  // Bitmap block: re-Adding rebuilt every bitmap from the arena; the
  // stored block (bits, token count, zero pads — the full cache-line
  // entry) must agree word for word or the arena and the block disagree
  // about the token sets.
  constexpr size_t kEntryWords = sizeof(TokenBitmapEntry) / sizeof(uint64_t);
  for (RecordId id = 0; id < n; ++id) {
    const uint64_t* rebuilt = owned->token_bitmap(id);
    const uint64_t bm = layout.bitmaps_off + id * sizeof(TokenBitmapEntry);
    for (size_t w = 0; w < kEntryWords; ++w) {
      uint64_t expect;
      if (w < kTokenBitmapWords) {
        expect = rebuilt[w];
      } else if (w == kTokenBitmapWords) {
        expect = owned->record_size(id);
      } else {
        expect = 0;
      }
      if (LoadU64(base, bm + w * sizeof(uint64_t)) != expect) {
        return Corrupt("segment bitmap disagrees with arena", path);
      }
    }
  }

  segment->global_ids =
      CopySection<RecordId>(base, layout.global_ids_off, n);
  if (!StrictlyIncreasing(segment->global_ids)) {
    return Corrupt("bad segment global ids", path);
  }

  segment->shards.resize(num_shards);
  size_t members_total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const ShardLayout& sh = layout.shards[s];
    SegmentShardPart& part = segment->shards[s];
    part.member_ids =
        CopySection<RecordId>(base, sh.member_ids_off, sh.members);
    part.short_ids = CopySection<RecordId>(base, sh.short_ids_off, sh.shorts);
    if (!StrictlyIncreasing(part.member_ids) ||
        (!part.member_ids.empty() && part.member_ids.back() >= n)) {
      return Corrupt("segment member out of range", path);
    }
    if (!StrictlyIncreasing(part.short_ids) ||
        (!part.short_ids.empty() &&
         part.short_ids.back() >= part.member_ids.size())) {
      return Corrupt("segment short id out of range", path);
    }
    const uint64_t* begin =
        reinterpret_cast<const uint64_t*>(base + sh.begin_off);
    const uint32_t* live =
        reinterpret_cast<const uint32_t*>(base + sh.size_off);
    const double* max_score =
        reinterpret_cast<const double*>(base + sh.max_score_off);
    if (begin[0] != 0 || begin[layout.vocab] != sh.postings_cap) {
      return Corrupt("bad segment extent table", path);
    }
    std::vector<uint64_t> counts(static_cast<size_t>(layout.vocab), 0);
    uint64_t total = 0;
    uint64_t nonempty = 0;
    for (uint64_t t = 0; t < layout.vocab; ++t) {
      if (begin[t + 1] < begin[t] || live[t] > begin[t + 1] - begin[t] ||
          live[t] > sh.members) {
        return Corrupt("bad segment extent table", path);
      }
      counts[t] = live[t];
      total += live[t];
      if (live[t] > 0) ++nonempty;
    }
    if (total != sh.total_postings || nonempty != sh.num_nonempty) {
      return Corrupt("segment extent table disagrees with header", path);
    }
    InvertedIndex index;
    index.Plan(counts);
    const Posting* postings =
        reinterpret_cast<const Posting*>(base + sh.postings_off);
    for (uint64_t t = 0; t < layout.vocab; ++t) {
      double seen_max = 0.0;
      for (uint32_t i = 0; i < live[t]; ++i) {
        const Posting& p = postings[begin[t] + i];
        if ((i > 0 && p.id <= postings[begin[t] + i - 1].id) ||
            p.id >= sh.members || !std::isfinite(p.score)) {
          return Corrupt("bad segment shard index", path);
        }
        index.AppendPosting(static_cast<TokenId>(t), p.id, p.score);
        seen_max = std::max(seen_max, p.score);
      }
      if (max_score[t] != (live[t] > 0 ? seen_max : 0.0)) {
        return Corrupt("segment extent table disagrees with header", path);
      }
    }
    index.RestoreStats(sh.members, sh.min_norm);
    part.index = std::move(index);
    part.global_ids.reserve(part.member_ids.size());
    for (RecordId local : part.member_ids) {
      part.global_ids.push_back(segment->global_ids[local]);
    }
    members_total += sh.members;
  }
  // Shard parts must partition the segment's records (each member id is
  // in range and strictly increasing per shard; equal total forces the
  // partition).
  if (members_total != n) {
    return Corrupt("segment shard parts do not partition records", path);
  }
  segment->approx_bytes = ComputeSegmentApproxBytes(*segment);
  return std::shared_ptr<const CorpusSegment>(std::move(segment));
}

/// Unlinks every segment file in `data_dir` not in `referenced` and
/// makes the removals durable. A failed unlink silently accretes
/// garbage forever if nobody notices — count it (the counters land in
/// ServiceStats) and log it; a crash right after an un-fsynced unlink
/// can resurrect the file, so one directory fsync follows any removal.
GcStats CollectSegmentGarbage(const std::string& data_dir,
                              const std::set<uint64_t>& referenced) {
  GcStats gc;
  for (uint64_t id : ListSegmentFiles(data_dir)) {
    if (referenced.count(id) != 0) continue;
    const std::string path = SegmentFilePath(data_dir, id);
    if (::unlink(path.c_str()) == 0) {
      ++gc.unlinked_segments;
    } else if (errno != ENOENT) {
      ++gc.unlink_failures;
      SSJOIN_LOG_WARNING << "segment GC cannot unlink " << path << ": "
                         << std::strerror(errno);
    }
  }
  if (gc.unlinked_segments > 0) {
    Status synced = SyncParentDirectory(CheckpointFilePath(data_dir));
    if (!synced.ok()) {
      ++gc.unlink_failures;
      SSJOIN_LOG_WARNING << "segment GC cannot fsync data directory: "
                         << synced.message();
    }
  }
  return gc;
}

}  // namespace

Result<std::shared_ptr<const CorpusSegment>> MapSegmentFile(
    const std::string& data_dir, uint64_t segment_id, uint64_t num_shards) {
  const std::string path = SegmentFilePath(data_dir, segment_id);
  Result<MappedFile> opened = MappedFile::Open(path);
  if (!opened.ok()) return opened.status();
  auto mapping =
      std::make_shared<const MappedFile>(std::move(opened).value());
  const char* base = mapping->data();
  Result<SegmentLayout> parsed = ParseSegmentHeader(
      base, mapping->size(), segment_id, num_shards, path);
  if (!parsed.ok()) return parsed.status();
  const SegmentLayout layout = std::move(parsed).value();
  // No whole-file CRC pass here: verifying it would fault in every page,
  // which is exactly what mapping exists to avoid. The header CRC covers
  // every count the layout derives from; the tables copied to the heap
  // below are validated structurally; segment files are written once
  // (tmp + fsync + rename) and never modified afterwards. The
  // materialized path still proves the whole file — point
  // `--resident-budget=0` at a directory to audit it end to end.
  const uint64_t n = layout.num_records;

  // Heap-resident copies: everything candidate gating, norm filters and
  // chain resolution touch per candidate, so the gating path never
  // faults a cold page. The CSR arenas, text table/blob and posting
  // extents stay in the mapping and page in on demand.
  RecordSet::ViewSpec spec;
  spec.offsets.resize(static_cast<size_t>(n) + 1);
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i <= n; ++i) {
    const uint64_t end =
        LoadU64(base, layout.offsets_off + i * sizeof(uint64_t));
    if ((i == 0 && end != 0) || end < prev_end ||
        end > layout.total_occurrences) {
      return Corrupt("bad segment record offsets", path);
    }
    spec.offsets[i] = static_cast<size_t>(end);
    prev_end = end;
  }
  if (prev_end != layout.total_occurrences) {
    return Corrupt("segment arena size disagrees with header", path);
  }
  uint64_t prev_text = 0;
  for (uint64_t i = 0; i <= n; ++i) {
    const uint64_t end =
        LoadU64(base, layout.text_offsets_off + i * sizeof(uint64_t));
    if ((i == 0 && end != 0) || end < prev_text ||
        end > layout.text_blob_bytes) {
      return Corrupt("bad segment text offsets", path);
    }
    prev_text = end;
  }
  if (prev_text != layout.text_blob_bytes) {
    return Corrupt("segment arena size disagrees with header", path);
  }
  spec.norms = CopySection<double>(base, layout.norms_off, n);
  spec.text_lengths = CopySection<uint32_t>(base, layout.text_lengths_off, n);
  spec.bitmaps =
      CopySection<TokenBitmapEntry>(base, layout.bitmaps_off, n);
  for (uint64_t id = 0; id < n; ++id) {
    // Cheap consistency tie between the bitmap block and the offsets
    // table (the full bits-vs-arena check is the materialized path's).
    if (spec.bitmaps[id].tokens !=
        spec.offsets[id + 1] - spec.offsets[id]) {
      return Corrupt("segment bitmap disagrees with arena", path);
    }
  }
  spec.tokens = reinterpret_cast<const TokenId*>(base + layout.tokens_off);
  spec.scores = reinterpret_cast<const double*>(base + layout.scores_off);
  spec.text_offsets =
      reinterpret_cast<const uint64_t*>(base + layout.text_offsets_off);
  spec.text_blob = base + layout.text_blob_off;
  spec.vocabulary_size = layout.vocab;
  spec.total_occurrences = layout.total_occurrences;
  spec.backing = mapping;

  auto segment = std::make_shared<CorpusSegment>();
  segment->id = segment_id;
  segment->records =
      std::make_shared<RecordSet>(RecordSet::MakeView(std::move(spec)));
  segment->global_ids = CopySection<RecordId>(base, layout.global_ids_off, n);
  if (!StrictlyIncreasing(segment->global_ids)) {
    return Corrupt("bad segment global ids", path);
  }
  segment->shards.resize(num_shards);
  size_t members_total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const ShardLayout& sh = layout.shards[s];
    SegmentShardPart& part = segment->shards[s];
    part.member_ids =
        CopySection<RecordId>(base, sh.member_ids_off, sh.members);
    part.short_ids = CopySection<RecordId>(base, sh.short_ids_off, sh.shorts);
    if (!StrictlyIncreasing(part.member_ids) ||
        (!part.member_ids.empty() && part.member_ids.back() >= n)) {
      return Corrupt("segment member out of range", path);
    }
    if (!StrictlyIncreasing(part.short_ids) ||
        (!part.short_ids.empty() &&
         part.short_ids.back() >= part.member_ids.size())) {
      return Corrupt("segment short id out of range", path);
    }
    const uint64_t* begin =
        reinterpret_cast<const uint64_t*>(base + sh.begin_off);
    if (begin[0] != 0 || begin[layout.vocab] != sh.postings_cap) {
      return Corrupt("bad segment extent table", path);
    }
    InvertedIndex::ViewSpec ispec;
    ispec.postings = reinterpret_cast<const Posting*>(base + sh.postings_off);
    ispec.begin = begin;
    ispec.size = reinterpret_cast<const uint32_t*>(base + sh.size_off);
    ispec.max_score = reinterpret_cast<const double*>(base + sh.max_score_off);
    ispec.vocabulary_size = layout.vocab;
    ispec.num_nonempty_tokens = sh.num_nonempty;
    ispec.num_entities = sh.members;
    ispec.min_norm = sh.min_norm;
    ispec.total_postings = sh.total_postings;
    ispec.backing = mapping;
    part.index = InvertedIndex::MakeView(std::move(ispec));
    part.global_ids.reserve(part.member_ids.size());
    for (RecordId local : part.member_ids) {
      part.global_ids.push_back(segment->global_ids[local]);
    }
    members_total += sh.members;
  }
  if (members_total != n) {
    return Corrupt("segment shard parts do not partition records", path);
  }
  segment->mapping = mapping;
  segment->mapped_bytes = mapping->size();
  segment->approx_bytes = ComputeSegmentApproxBytes(*segment);
  return std::shared_ptr<const CorpusSegment>(std::move(segment));
}

Status SaveCheckpoint(const std::string& data_dir, const CheckpointState& state,
                      std::set<uint64_t>* persisted_segments,
                      GcStats* gc_stats) {
  if (state.deleted == nullptr || state.segments.empty() ||
      state.tombstones.empty() || persisted_segments == nullptr) {
    return Status::InvalidArgument("incomplete checkpoint state");
  }
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    if (ref.segment == nullptr ||
        ref.dead.size() != state.tombstones.size()) {
      return Status::InvalidArgument("incomplete checkpoint state");
    }
  }

  // Phase 1: make every referenced segment durable. Already-persisted
  // segments are immutable — their files are correct by construction and
  // are never rewritten, which is what keeps a steady-state checkpoint
  // O(delta): only the newly folded (delta-sized) segment hits the disk.
  std::set<uint64_t> referenced;
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    referenced.insert(ref.segment->id);
    if (persisted_segments->count(ref.segment->id) != 0) continue;
    Status written = WriteSegmentFile(data_dir, *ref.segment);
    if (!written.ok()) return written;
  }

  // Phase 2: the manifest — the commit point. It only references files
  // renamed durably above, so a crash on either side of this rename
  // leaves a whole checkpoint (the old one, or the new one).
  std::string buffer(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutFixed32(&buffer, kCheckpointVersion);
  PutVarint64(&buffer, state.epoch);
  PutVarint64(&buffer, state.wal_seq);
  PutVarint64(&buffer, state.predicate.size());
  buffer += state.predicate;
  PutVarint64(&buffer, state.tombstones.size());
  PutIdList(&buffer, state.shard_bounds);
  PutVarint64(&buffer, state.next_id);
  PutVarint64(&buffer, state.next_segment_id);
  PutBitVector(&buffer, *state.deleted);
  buffer.push_back(state.raw_corpus != nullptr ? 1 : 0);
  if (state.raw_corpus != nullptr) {
    EncodeRecordSet(*state.raw_corpus, &buffer);
  }
  PutVarint64(&buffer, state.segments.size());
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    PutVarint64(&buffer, ref.segment->id);
    PutVarint64(&buffer, ref.live);
    for (const std::vector<RecordId>* dead : ref.dead) {
      static const std::vector<RecordId> kEmpty;
      PutIdList(&buffer, dead != nullptr ? *dead : kEmpty);
    }
  }
  for (const std::vector<RecordId>* tombstones : state.tombstones) {
    PutIdList(&buffer, *tombstones);
  }
  // Whole-file trailing checksum: a manifest either verifies end to end
  // or is rejected — there is no partially-trusted checkpoint.
  PutFixed32(&buffer, Crc32(buffer.data(), buffer.size()));
  Status committed = WriteFileAtomic(CheckpointFilePath(data_dir), buffer);
  if (!committed.ok()) return committed;

  // Phase 3: the new manifest is durable; segment files it no longer
  // references (merged-away chains) are garbage. Failures are counted
  // and surfaced (LoadCheckpoint still GCs leftovers on the next Open,
  // but a persistently failing unlink must not stay invisible).
  *persisted_segments = referenced;
  const GcStats gc = CollectSegmentGarbage(data_dir, referenced);
  if (gc_stats != nullptr) *gc_stats = gc;
  return Status::OK();
}

Result<ServiceCheckpoint> LoadCheckpoint(const std::string& data_dir,
                                         const CheckpointLoadOptions& options) {
  const std::string path = CheckpointFilePath(data_dir);
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.size() < sizeof(kCheckpointMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return Corrupt("bad magic", path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  size_t crc_offset = body_size;
  uint32_t stored_crc = 0;
  GetFixed32(data, &crc_offset, &stored_crc);
  if (Crc32(data.data(), body_size) != stored_crc) {
    return Corrupt("checksum mismatch", path);
  }

  size_t offset = sizeof(kCheckpointMagic);
  uint32_t version = 0;
  GetFixed32(data, &offset, &version);
  if (version != kCheckpointVersion) {
    return Status::IOError("unsupported checkpoint version: " + path);
  }

  // The payload (between header and trailing CRC) decodes as a plain
  // string slice; every Get* below is bounded by body_size via `body`.
  const std::string body = data.substr(0, body_size);
  ServiceCheckpoint cp;
  uint64_t pred_size = 0;
  uint64_t num_shards = 0;
  if (!GetVarint64(body, &offset, &cp.epoch) ||
      !GetVarint64(body, &offset, &cp.wal_seq) ||
      !GetVarint64(body, &offset, &pred_size) ||
      pred_size > body.size() - offset) {
    return Corrupt("truncated header", path);
  }
  cp.predicate.assign(body, offset, pred_size);
  offset += pred_size;
  if (!GetVarint64(body, &offset, &num_shards) || num_shards == 0 ||
      num_shards > body.size()) {
    return Corrupt("bad shard count", path);
  }
  if (!GetIdList(body, &offset, &cp.shard_bounds) ||
      cp.shard_bounds.size() + 1 != num_shards) {
    return Corrupt("bad shard bounds", path);
  }
  if (!GetVarint64(body, &offset, &cp.next_id) ||
      !GetVarint64(body, &offset, &cp.next_segment_id)) {
    return Corrupt("truncated id counters", path);
  }
  if (!GetBitVector(body, &offset, &cp.deleted) ||
      cp.deleted.size() != cp.next_id) {
    return Corrupt("bad deleted bitmap", path);
  }
  if (offset >= body.size()) {
    return Corrupt("truncated raw-corpus flag", path);
  }
  const uint8_t has_raw = static_cast<uint8_t>(body[offset++]);
  if (has_raw > 1) {
    return Corrupt("bad raw-corpus flag", path);
  }
  cp.has_raw_corpus = has_raw == 1;
  if (cp.has_raw_corpus) {
    Result<RecordSet> corpus = DecodeRecordSet(body, &offset);
    if (!corpus.ok()) {
      return Corrupt(corpus.status().message() + " [raw corpus]", path);
    }
    cp.raw_corpus = std::move(corpus).value();
    if (cp.raw_corpus.size() != cp.next_id) {
      return Corrupt("raw corpus disagrees with id counter", path);
    }
  }

  uint64_t num_segments = 0;
  if (!GetVarint64(body, &offset, &num_segments) || num_segments == 0 ||
      num_segments > body.size()) {
    return Corrupt("bad segment count", path);
  }
  cp.segments.resize(num_segments);
  std::vector<uint64_t> segment_ids(num_segments, 0);
  for (size_t i = 0; i < num_segments; ++i) {
    ServiceCheckpoint::Segment& entry = cp.segments[i];
    if (!GetVarint64(body, &offset, &segment_ids[i]) ||
        segment_ids[i] >= cp.next_segment_id ||
        !GetVarint64(body, &offset, &entry.live)) {
      return Corrupt("bad segment reference", path);
    }
    entry.dead.resize(num_shards);
    for (std::vector<RecordId>& dead : entry.dead) {
      if (!GetIdList(body, &offset, &dead) || !StrictlyIncreasing(dead)) {
        return Corrupt("bad segment dead mask", path);
      }
    }
  }
  cp.tombstones.resize(num_shards);
  for (std::vector<RecordId>& tombstones : cp.tombstones) {
    if (!GetIdList(body, &offset, &tombstones)) {
      return Corrupt("truncated tombstones", path);
    }
    if (!tombstones.empty() && tombstones.back() >= cp.next_id) {
      return Corrupt("tombstone out of range", path);
    }
  }
  if (offset != body.size()) {
    return Corrupt("trailing bytes", path);
  }

  // The manifest is whole; now load every referenced segment file and
  // cross-validate masks, live counts and the chain's global-id order.
  // With a resident budget, segment bodies are mapped instead of decoded
  // — except when the checkpoint carries a raw corpus (TF-IDF cosine),
  // whose full-rebuild path re-Prepares owned record sets anyway.
  const bool map_segments =
      options.resident_budget_bytes > 0 && !cp.has_raw_corpus;
  std::set<uint64_t> referenced;
  RecordId prev_last_gid = 0;
  bool any_gid = false;
  for (size_t i = 0; i < num_segments; ++i) {
    ServiceCheckpoint::Segment& entry = cp.segments[i];
    const uint64_t segment_id = segment_ids[i];
    referenced.insert(segment_id);
    Result<std::shared_ptr<const CorpusSegment>> loaded =
        map_segments ? MapSegmentFile(data_dir, segment_id, num_shards)
                     : LoadSegmentFile(data_dir, segment_id, num_shards);
    if (!loaded.ok()) return loaded.status();
    entry.segment = std::move(loaded).value();
    const CorpusSegment& segment = *entry.segment;
    if (!segment.global_ids.empty()) {
      if (segment.global_ids.back() >= cp.next_id ||
          (any_gid && segment.global_ids.front() <= prev_last_gid)) {
        return Corrupt("segment chain global ids out of order", path);
      }
      prev_last_gid = segment.global_ids.back();
      any_gid = true;
    }
    size_t dead_total = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<RecordId>& dead = entry.dead[s];
      if (!dead.empty() &&
          dead.back() >= segment.shards[s].member_ids.size()) {
        return Corrupt("segment dead mask out of range", path);
      }
      dead_total += dead.size();
    }
    if (entry.live + dead_total != segment.records->size()) {
      return Corrupt("segment live count disagrees with dead masks", path);
    }
  }

  // GC: a crash between segment write and manifest rename, or a merge
  // followed by a crash before Phase-3 cleanup, leaves segment files no
  // manifest references. They are dead weight — delete them so the data
  // directory never accretes garbage across restarts.
  cp.gc = CollectSegmentGarbage(data_dir, referenced);
  return cp;
}

}  // namespace ssjoin
