#include "serve/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "index/index_io.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kCheckpointMagic[4] = {'S', 'S', 'C', 'P'};
constexpr uint32_t kCheckpointVersion = 2;  // v2: segment-chain manifest
constexpr char kCheckpointFile[] = "checkpoint.ssc";
constexpr char kWalFile[] = "wal.log";

constexpr char kSegmentMagic[4] = {'S', 'S', 'S', 'G'};
// v2: trailing per-record token-bitmap block (kTokenBitmapWords fixed64
// words per record). Bitmaps are deterministically rebuilt by decoding
// anyway, so the stored copy is an end-to-end integrity check on the
// arena rather than extra state; v1 files (no block) are rejected with a
// clear "unsupported segment version" error.
constexpr uint32_t kSegmentVersion = 2;
constexpr char kSegmentPrefix[] = "segment-";
constexpr char kSegmentSuffix[] = ".sseg";

Status Corrupt(const std::string& what, const std::string& path) {
  return Status::IOError("corrupt checkpoint (" + what + "): " + path);
}

bool StrictlyIncreasing(const std::vector<RecordId>& ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] <= ids[i - 1]) return false;
  }
  return true;
}

/// varint64 count + delta varints. Requires non-decreasing ids (every id
/// table in a checkpoint — members, globals, shorts, tombstones — is).
void PutIdList(std::string* out, const std::vector<RecordId>& ids) {
  PutVarint64(out, ids.size());
  RecordId prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    PutVarint32(out, ids[i] - prev);
    prev = ids[i];
  }
}

bool GetIdList(const std::string& data, size_t* offset,
               std::vector<RecordId>* ids) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  if (count > data.size()) return false;  // >= 1 byte per encoded id
  ids->clear();
  ids->reserve(count);
  RecordId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, offset, &delta)) return false;
    prev += delta;
    ids->push_back(prev);
  }
  return true;
}

/// Same index layout as SaveIndex but with full double posting scores:
/// restored probes must prune on byte-identical score values.
void PutIndex(std::string* out, const InvertedIndex& index) {
  PutVarint64(out, index.num_entities());
  PutDouble(out, index.min_norm());
  PutVarint64(out, index.num_tokens());
  index.ForEachList([out](TokenId token, PostingListView list) {
    PutVarint32(out, token);
    PutVarint32(out, static_cast<uint32_t>(list.size()));
    RecordId prev = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      PutVarint32(out, list[i].id - prev);
      prev = list[i].id;
    }
    for (size_t i = 0; i < list.size(); ++i) {
      PutDouble(out, list[i].score);
    }
  });
}

bool GetIndex(const std::string& data, size_t* offset, InvertedIndex* out) {
  uint64_t num_entities = 0;
  double min_norm = std::numeric_limits<double>::infinity();
  uint64_t num_lists = 0;
  if (!GetVarint64(data, offset, &num_entities) ||
      !GetDouble(data, offset, &min_norm) ||
      !GetVarint64(data, offset, &num_lists)) {
    return false;
  }
  if (num_entities > std::numeric_limits<RecordId>::max()) return false;
  if (num_lists > data.size()) return false;

  // Two passes, like LoadIndex: collect counts to carve extents, then
  // decode postings straight into them.
  const size_t lists_offset = *offset;
  std::vector<uint64_t> counts;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, offset, &token) ||
        !GetVarint32(data, offset, &count)) {
      return false;
    }
    if (token > (1u << 30) || count == 0 || count > num_entities) return false;
    if (token >= counts.size()) counts.resize(token + 1, 0);
    if (counts[token] != 0) return false;  // duplicate list
    counts[token] = count;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, offset, &delta)) return false;
    }
    const size_t score_bytes = static_cast<size_t>(count) * sizeof(double);
    if (*offset + score_bytes > data.size()) return false;
    *offset += score_bytes;
  }

  InvertedIndex index;
  index.Plan(counts);
  size_t pos = lists_offset;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, &pos, &token) ||
        !GetVarint32(data, &pos, &count)) {
      return false;
    }
    std::vector<RecordId> ids(count);
    RecordId prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, &pos, &delta)) return false;
      if (i > 0 && delta == 0) return false;
      prev += delta;
      if (prev >= num_entities) return false;
      ids[i] = prev;
    }
    for (uint32_t i = 0; i < count; ++i) {
      double score = 0;
      if (!GetDouble(data, &pos, &score)) return false;
      if (!std::isfinite(score)) return false;
      index.AppendPosting(token, ids[i], score);
    }
  }
  index.RestoreStats(num_entities, min_norm);
  *out = std::move(index);
  return true;
}

void PutBitVector(std::string* out, const std::vector<bool>& bits) {
  PutVarint64(out, bits.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(byte));
}

bool GetBitVector(const std::string& data, size_t* offset,
                  std::vector<bool>* bits) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  const size_t bytes = static_cast<size_t>((count + 7) / 8);
  if (*offset + bytes > data.size()) return false;
  bits->assign(count, false);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t byte =
        static_cast<uint8_t>(data[*offset + i / 8]);
    (*bits)[i] = (byte >> (i % 8)) & 1u;
  }
  *offset += bytes;
  return true;
}

}  // namespace

std::string CheckpointFilePath(const std::string& data_dir) {
  return data_dir + "/" + kCheckpointFile;
}

std::string WalFilePath(const std::string& data_dir) {
  return data_dir + "/" + kWalFile;
}

std::string SegmentFilePath(const std::string& data_dir,
                            uint64_t segment_id) {
  return data_dir + "/" + kSegmentPrefix + std::to_string(segment_id) +
         kSegmentSuffix;
}

std::set<uint64_t> ListSegmentFiles(const std::string& data_dir) {
  std::set<uint64_t> ids;
  DIR* dir = ::opendir(data_dir.c_str());
  if (dir == nullptr) return ids;
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    uint64_t id = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    // Round-trip through the canonical name so padded or overflowed
    // spellings ("segment-007.sseg") are never claimed by GC or load.
    if (numeric && SegmentFilePath(data_dir, id) == data_dir + "/" + name) {
      ids.insert(id);
    }
  }
  ::closedir(dir);
  return ids;
}

Status EnsureDataDir(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty");
  }
  // mkdir -p: create each missing component in turn.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = data_dir.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? data_dir : data_dir.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoIOError("cannot create data directory", prefix);
    }
  }
  return Status::OK();
}

bool CheckpointExists(const std::string& data_dir) {
  return ::access(CheckpointFilePath(data_dir).c_str(), F_OK) == 0;
}

void EncodeRecordSet(const RecordSet& records, std::string* out) {
  PutVarint64(out, records.size());
  for (RecordId id = 0; id < records.size(); ++id) {
    const RecordView record = records.record(id);
    PutVarint32(out, static_cast<uint32_t>(record.size()));
    TokenId prev = 0;
    for (size_t i = 0; i < record.size(); ++i) {
      PutVarint32(out, record.token(i) - prev);
      prev = record.token(i);
    }
    for (size_t i = 0; i < record.size(); ++i) {
      PutDouble(out, record.score(i));
    }
    PutDouble(out, record.norm());
    PutVarint32(out, record.text_length());
    const std::string& text = records.text(id);
    PutVarint64(out, text.size());
    out->append(text);
  }
}

Result<RecordSet> DecodeRecordSet(const std::string& data, size_t* offset) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) {
    return Status::IOError("truncated record-set count");
  }
  if (count > data.size()) {
    return Status::IOError("implausible record-set count");
  }
  RecordSet records;
  std::vector<TokenId> tokens;
  std::vector<double> scores;
  for (uint64_t r = 0; r < count; ++r) {
    uint32_t num_tokens = 0;
    if (!GetVarint32(data, offset, &num_tokens) ||
        num_tokens > data.size()) {
      return Status::IOError("truncated record header");
    }
    tokens.assign(num_tokens, 0);
    scores.assign(num_tokens, 0);
    TokenId prev = 0;
    for (uint32_t i = 0; i < num_tokens; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, offset, &delta)) {
        return Status::IOError("truncated record tokens");
      }
      if (i > 0 && delta == 0) {
        return Status::IOError("non-monotone record tokens");
      }
      prev = i == 0 ? delta : prev + delta;
      tokens[i] = prev;
    }
    for (uint32_t i = 0; i < num_tokens; ++i) {
      if (!GetDouble(data, offset, &scores[i])) {
        return Status::IOError("truncated record scores");
      }
    }
    double norm = 0;
    uint32_t text_length = 0;
    uint64_t text_size = 0;
    if (!GetDouble(data, offset, &norm) ||
        !GetVarint32(data, offset, &text_length) ||
        !GetVarint64(data, offset, &text_size)) {
      return Status::IOError("truncated record trailer");
    }
    if (*offset + text_size > data.size()) {
      return Status::IOError("truncated record text");
    }
    std::string text(data, *offset, text_size);
    *offset += text_size;
    // Add() recounts doc/term frequencies exactly as the live insertion
    // did, so the decoded set's statistics match the encoded one's.
    records.Add(RecordView(tokens.data(), scores.data(), num_tokens, norm,
                           text_length),
                std::move(text));
  }
  return records;
}

namespace {

/// One immutable segment file: the segment's prepared arena, global-id
/// table and every shard part's id tables and index, CRC32-trailered.
/// Dead masks and live counts are NOT here — they change after the
/// segment is written and live in the manifest.
Status WriteSegmentFile(const std::string& data_dir,
                        const CorpusSegment& segment) {
  std::string buffer(kSegmentMagic, sizeof(kSegmentMagic));
  PutFixed32(&buffer, kSegmentVersion);
  PutVarint64(&buffer, segment.id);
  EncodeRecordSet(*segment.records, &buffer);
  PutIdList(&buffer, segment.global_ids);
  PutVarint64(&buffer, segment.shards.size());
  for (const SegmentShardPart& part : segment.shards) {
    PutIdList(&buffer, part.member_ids);
    PutIdList(&buffer, part.short_ids);
    PutIndex(&buffer, part.index);
  }
  // v2 bitmap block: every record's token parity bitmap, in record order.
  for (RecordId id = 0; id < segment.records->size(); ++id) {
    const uint64_t* bitmap = segment.records->token_bitmap(id);
    for (size_t w = 0; w < kTokenBitmapWords; ++w) {
      PutFixed64(&buffer, bitmap[w]);
    }
  }
  PutFixed32(&buffer, Crc32(buffer.data(), buffer.size()));
  return WriteFileAtomic(SegmentFilePath(data_dir, segment.id), buffer);
}

Result<std::shared_ptr<const CorpusSegment>> LoadSegmentFile(
    const std::string& data_dir, uint64_t expected_id, uint64_t num_shards) {
  const std::string path = SegmentFilePath(data_dir, expected_id);
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.size() < sizeof(kSegmentMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Corrupt("bad segment magic", path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  size_t crc_offset = body_size;
  uint32_t stored_crc = 0;
  GetFixed32(data, &crc_offset, &stored_crc);
  if (Crc32(data.data(), body_size) != stored_crc) {
    return Corrupt("segment checksum mismatch", path);
  }
  size_t offset = sizeof(kSegmentMagic);
  uint32_t version = 0;
  GetFixed32(data, &offset, &version);
  if (version != kSegmentVersion) {
    return Status::IOError("unsupported segment version: " + path);
  }
  const std::string body = data.substr(0, body_size);

  auto segment = std::make_shared<CorpusSegment>();
  uint64_t file_id = 0;
  if (!GetVarint64(body, &offset, &file_id) || file_id != expected_id) {
    return Corrupt("segment id disagrees with its file name", path);
  }
  segment->id = file_id;
  Result<RecordSet> records = DecodeRecordSet(body, &offset);
  if (!records.ok()) {
    return Corrupt(records.status().message() + " [segment arena]", path);
  }
  auto owned = std::make_shared<RecordSet>(std::move(records).value());
  segment->records = owned;
  if (!GetIdList(body, &offset, &segment->global_ids) ||
      segment->global_ids.size() != owned->size() ||
      !StrictlyIncreasing(segment->global_ids)) {
    return Corrupt("bad segment global ids", path);
  }
  uint64_t file_shards = 0;
  if (!GetVarint64(body, &offset, &file_shards) ||
      file_shards != num_shards) {
    return Corrupt("segment shard count disagrees with manifest", path);
  }
  segment->shards.resize(num_shards);
  size_t members_total = 0;
  for (SegmentShardPart& part : segment->shards) {
    if (!GetIdList(body, &offset, &part.member_ids) ||
        !GetIdList(body, &offset, &part.short_ids)) {
      return Corrupt("truncated segment shard tables", path);
    }
    if (!StrictlyIncreasing(part.member_ids) ||
        (!part.member_ids.empty() &&
         part.member_ids.back() >= owned->size())) {
      return Corrupt("segment member out of range", path);
    }
    if (!StrictlyIncreasing(part.short_ids) ||
        (!part.short_ids.empty() &&
         part.short_ids.back() >= part.member_ids.size())) {
      return Corrupt("segment short id out of range", path);
    }
    if (!GetIndex(body, &offset, &part.index) ||
        part.index.num_entities() != part.member_ids.size()) {
      return Corrupt("bad segment shard index", path);
    }
    part.global_ids.reserve(part.member_ids.size());
    for (RecordId local : part.member_ids) {
      part.global_ids.push_back(segment->global_ids[local]);
    }
    members_total += part.member_ids.size();
  }
  // Shard parts must partition the segment's records (each member id
  // is in range and strictly increasing per shard; equal total forces
  // the partition).
  if (members_total != owned->size()) {
    return Corrupt("segment shard parts do not partition records", path);
  }
  // v2 bitmap block: decoding re-Added every record, so the arena already
  // carries freshly built bitmaps; the stored copy must agree word for
  // word or the arena and the block disagree about the token sets.
  for (RecordId id = 0; id < owned->size(); ++id) {
    const uint64_t* rebuilt = owned->token_bitmap(id);
    for (size_t w = 0; w < kTokenBitmapWords; ++w) {
      uint64_t stored = 0;
      if (!GetFixed64(body, &offset, &stored)) {
        return Corrupt("truncated segment bitmap block", path);
      }
      if (stored != rebuilt[w]) {
        return Corrupt("segment bitmap disagrees with arena", path);
      }
    }
  }
  if (offset != body.size()) {
    return Corrupt("trailing segment bytes", path);
  }
  segment->approx_bytes = ComputeSegmentApproxBytes(*segment);
  return std::shared_ptr<const CorpusSegment>(std::move(segment));
}

}  // namespace

Status SaveCheckpoint(const std::string& data_dir, const CheckpointState& state,
                      std::set<uint64_t>* persisted_segments) {
  if (state.deleted == nullptr || state.segments.empty() ||
      state.tombstones.empty() || persisted_segments == nullptr) {
    return Status::InvalidArgument("incomplete checkpoint state");
  }
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    if (ref.segment == nullptr ||
        ref.dead.size() != state.tombstones.size()) {
      return Status::InvalidArgument("incomplete checkpoint state");
    }
  }

  // Phase 1: make every referenced segment durable. Already-persisted
  // segments are immutable — their files are correct by construction and
  // are never rewritten, which is what keeps a steady-state checkpoint
  // O(delta): only the newly folded (delta-sized) segment hits the disk.
  std::set<uint64_t> referenced;
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    referenced.insert(ref.segment->id);
    if (persisted_segments->count(ref.segment->id) != 0) continue;
    Status written = WriteSegmentFile(data_dir, *ref.segment);
    if (!written.ok()) return written;
  }

  // Phase 2: the manifest — the commit point. It only references files
  // renamed durably above, so a crash on either side of this rename
  // leaves a whole checkpoint (the old one, or the new one).
  std::string buffer(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutFixed32(&buffer, kCheckpointVersion);
  PutVarint64(&buffer, state.epoch);
  PutVarint64(&buffer, state.wal_seq);
  PutVarint64(&buffer, state.predicate.size());
  buffer += state.predicate;
  PutVarint64(&buffer, state.tombstones.size());
  PutIdList(&buffer, state.shard_bounds);
  PutVarint64(&buffer, state.next_id);
  PutVarint64(&buffer, state.next_segment_id);
  PutBitVector(&buffer, *state.deleted);
  buffer.push_back(state.raw_corpus != nullptr ? 1 : 0);
  if (state.raw_corpus != nullptr) {
    EncodeRecordSet(*state.raw_corpus, &buffer);
  }
  PutVarint64(&buffer, state.segments.size());
  for (const CheckpointState::SegmentRef& ref : state.segments) {
    PutVarint64(&buffer, ref.segment->id);
    PutVarint64(&buffer, ref.live);
    for (const std::vector<RecordId>* dead : ref.dead) {
      static const std::vector<RecordId> kEmpty;
      PutIdList(&buffer, dead != nullptr ? *dead : kEmpty);
    }
  }
  for (const std::vector<RecordId>* tombstones : state.tombstones) {
    PutIdList(&buffer, *tombstones);
  }
  // Whole-file trailing checksum: a manifest either verifies end to end
  // or is rejected — there is no partially-trusted checkpoint.
  PutFixed32(&buffer, Crc32(buffer.data(), buffer.size()));
  Status committed = WriteFileAtomic(CheckpointFilePath(data_dir), buffer);
  if (!committed.ok()) return committed;

  // Phase 3: the new manifest is durable; segment files it no longer
  // references (merged-away chains) are garbage. Unlink failures are
  // ignored — LoadCheckpoint GCs leftovers on the next Open.
  *persisted_segments = referenced;
  for (uint64_t id : ListSegmentFiles(data_dir)) {
    if (referenced.count(id) == 0) {
      ::unlink(SegmentFilePath(data_dir, id).c_str());
    }
  }
  return Status::OK();
}

Result<ServiceCheckpoint> LoadCheckpoint(const std::string& data_dir) {
  const std::string path = CheckpointFilePath(data_dir);
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.size() < sizeof(kCheckpointMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return Corrupt("bad magic", path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  size_t crc_offset = body_size;
  uint32_t stored_crc = 0;
  GetFixed32(data, &crc_offset, &stored_crc);
  if (Crc32(data.data(), body_size) != stored_crc) {
    return Corrupt("checksum mismatch", path);
  }

  size_t offset = sizeof(kCheckpointMagic);
  uint32_t version = 0;
  GetFixed32(data, &offset, &version);
  if (version != kCheckpointVersion) {
    return Status::IOError("unsupported checkpoint version: " + path);
  }

  // The payload (between header and trailing CRC) decodes as a plain
  // string slice; every Get* below is bounded by body_size via `body`.
  const std::string body = data.substr(0, body_size);
  ServiceCheckpoint cp;
  uint64_t pred_size = 0;
  uint64_t num_shards = 0;
  if (!GetVarint64(body, &offset, &cp.epoch) ||
      !GetVarint64(body, &offset, &cp.wal_seq) ||
      !GetVarint64(body, &offset, &pred_size) ||
      pred_size > body.size() - offset) {
    return Corrupt("truncated header", path);
  }
  cp.predicate.assign(body, offset, pred_size);
  offset += pred_size;
  if (!GetVarint64(body, &offset, &num_shards) || num_shards == 0 ||
      num_shards > body.size()) {
    return Corrupt("bad shard count", path);
  }
  if (!GetIdList(body, &offset, &cp.shard_bounds) ||
      cp.shard_bounds.size() + 1 != num_shards) {
    return Corrupt("bad shard bounds", path);
  }
  if (!GetVarint64(body, &offset, &cp.next_id) ||
      !GetVarint64(body, &offset, &cp.next_segment_id)) {
    return Corrupt("truncated id counters", path);
  }
  if (!GetBitVector(body, &offset, &cp.deleted) ||
      cp.deleted.size() != cp.next_id) {
    return Corrupt("bad deleted bitmap", path);
  }
  if (offset >= body.size()) {
    return Corrupt("truncated raw-corpus flag", path);
  }
  const uint8_t has_raw = static_cast<uint8_t>(body[offset++]);
  if (has_raw > 1) {
    return Corrupt("bad raw-corpus flag", path);
  }
  cp.has_raw_corpus = has_raw == 1;
  if (cp.has_raw_corpus) {
    Result<RecordSet> corpus = DecodeRecordSet(body, &offset);
    if (!corpus.ok()) {
      return Corrupt(corpus.status().message() + " [raw corpus]", path);
    }
    cp.raw_corpus = std::move(corpus).value();
    if (cp.raw_corpus.size() != cp.next_id) {
      return Corrupt("raw corpus disagrees with id counter", path);
    }
  }

  uint64_t num_segments = 0;
  if (!GetVarint64(body, &offset, &num_segments) || num_segments == 0 ||
      num_segments > body.size()) {
    return Corrupt("bad segment count", path);
  }
  cp.segments.resize(num_segments);
  std::vector<uint64_t> segment_ids(num_segments, 0);
  for (size_t i = 0; i < num_segments; ++i) {
    ServiceCheckpoint::Segment& entry = cp.segments[i];
    if (!GetVarint64(body, &offset, &segment_ids[i]) ||
        segment_ids[i] >= cp.next_segment_id ||
        !GetVarint64(body, &offset, &entry.live)) {
      return Corrupt("bad segment reference", path);
    }
    entry.dead.resize(num_shards);
    for (std::vector<RecordId>& dead : entry.dead) {
      if (!GetIdList(body, &offset, &dead) || !StrictlyIncreasing(dead)) {
        return Corrupt("bad segment dead mask", path);
      }
    }
  }
  cp.tombstones.resize(num_shards);
  for (std::vector<RecordId>& tombstones : cp.tombstones) {
    if (!GetIdList(body, &offset, &tombstones)) {
      return Corrupt("truncated tombstones", path);
    }
    if (!tombstones.empty() && tombstones.back() >= cp.next_id) {
      return Corrupt("tombstone out of range", path);
    }
  }
  if (offset != body.size()) {
    return Corrupt("trailing bytes", path);
  }

  // The manifest is whole; now load every referenced segment file and
  // cross-validate masks, live counts and the chain's global-id order.
  std::set<uint64_t> referenced;
  RecordId prev_last_gid = 0;
  bool any_gid = false;
  for (size_t i = 0; i < num_segments; ++i) {
    ServiceCheckpoint::Segment& entry = cp.segments[i];
    const uint64_t segment_id = segment_ids[i];
    referenced.insert(segment_id);
    Result<std::shared_ptr<const CorpusSegment>> loaded =
        LoadSegmentFile(data_dir, segment_id, num_shards);
    if (!loaded.ok()) return loaded.status();
    entry.segment = std::move(loaded).value();
    const CorpusSegment& segment = *entry.segment;
    if (!segment.global_ids.empty()) {
      if (segment.global_ids.back() >= cp.next_id ||
          (any_gid && segment.global_ids.front() <= prev_last_gid)) {
        return Corrupt("segment chain global ids out of order", path);
      }
      prev_last_gid = segment.global_ids.back();
      any_gid = true;
    }
    size_t dead_total = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const std::vector<RecordId>& dead = entry.dead[s];
      if (!dead.empty() &&
          dead.back() >= segment.shards[s].member_ids.size()) {
        return Corrupt("segment dead mask out of range", path);
      }
      dead_total += dead.size();
    }
    if (entry.live + dead_total != segment.records->size()) {
      return Corrupt("segment live count disagrees with dead masks", path);
    }
  }

  // GC: a crash between segment write and manifest rename, or a merge
  // followed by a crash before Phase-3 cleanup, leaves segment files no
  // manifest references. They are dead weight — delete them so the data
  // directory never accretes garbage across restarts.
  for (uint64_t id : ListSegmentFiles(data_dir)) {
    if (referenced.count(id) == 0) {
      ::unlink(SegmentFilePath(data_dir, id).c_str());
    }
  }
  return cp;
}

}  // namespace ssjoin
