#include "serve/checkpoint.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "index/index_io.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kCheckpointMagic[4] = {'S', 'S', 'C', 'P'};
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kCheckpointFile[] = "checkpoint.ssc";
constexpr char kWalFile[] = "wal.log";

Status Corrupt(const std::string& what, const std::string& path) {
  return Status::IOError("corrupt checkpoint (" + what + "): " + path);
}

/// varint64 count + delta varints. Requires non-decreasing ids (every id
/// table in a checkpoint — members, globals, shorts, tombstones — is).
void PutIdList(std::string* out, const std::vector<RecordId>& ids) {
  PutVarint64(out, ids.size());
  RecordId prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    PutVarint32(out, ids[i] - prev);
    prev = ids[i];
  }
}

bool GetIdList(const std::string& data, size_t* offset,
               std::vector<RecordId>* ids) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  if (count > data.size()) return false;  // >= 1 byte per encoded id
  ids->clear();
  ids->reserve(count);
  RecordId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, offset, &delta)) return false;
    prev += delta;
    ids->push_back(prev);
  }
  return true;
}

/// Same index layout as SaveIndex but with full double posting scores:
/// restored probes must prune on byte-identical score values.
void PutIndex(std::string* out, const InvertedIndex& index) {
  PutVarint64(out, index.num_entities());
  PutDouble(out, index.min_norm());
  PutVarint64(out, index.num_tokens());
  index.ForEachList([out](TokenId token, PostingListView list) {
    PutVarint32(out, token);
    PutVarint32(out, static_cast<uint32_t>(list.size()));
    RecordId prev = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      PutVarint32(out, list[i].id - prev);
      prev = list[i].id;
    }
    for (size_t i = 0; i < list.size(); ++i) {
      PutDouble(out, list[i].score);
    }
  });
}

bool GetIndex(const std::string& data, size_t* offset, InvertedIndex* out) {
  uint64_t num_entities = 0;
  double min_norm = std::numeric_limits<double>::infinity();
  uint64_t num_lists = 0;
  if (!GetVarint64(data, offset, &num_entities) ||
      !GetDouble(data, offset, &min_norm) ||
      !GetVarint64(data, offset, &num_lists)) {
    return false;
  }
  if (num_entities > std::numeric_limits<RecordId>::max()) return false;
  if (num_lists > data.size()) return false;

  // Two passes, like LoadIndex: collect counts to carve extents, then
  // decode postings straight into them.
  const size_t lists_offset = *offset;
  std::vector<uint64_t> counts;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, offset, &token) ||
        !GetVarint32(data, offset, &count)) {
      return false;
    }
    if (token > (1u << 30) || count == 0 || count > num_entities) return false;
    if (token >= counts.size()) counts.resize(token + 1, 0);
    if (counts[token] != 0) return false;  // duplicate list
    counts[token] = count;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, offset, &delta)) return false;
    }
    const size_t score_bytes = static_cast<size_t>(count) * sizeof(double);
    if (*offset + score_bytes > data.size()) return false;
    *offset += score_bytes;
  }

  InvertedIndex index;
  index.Plan(counts);
  size_t pos = lists_offset;
  for (uint64_t l = 0; l < num_lists; ++l) {
    uint32_t token = 0;
    uint32_t count = 0;
    if (!GetVarint32(data, &pos, &token) ||
        !GetVarint32(data, &pos, &count)) {
      return false;
    }
    std::vector<RecordId> ids(count);
    RecordId prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, &pos, &delta)) return false;
      if (i > 0 && delta == 0) return false;
      prev += delta;
      if (prev >= num_entities) return false;
      ids[i] = prev;
    }
    for (uint32_t i = 0; i < count; ++i) {
      double score = 0;
      if (!GetDouble(data, &pos, &score)) return false;
      if (!std::isfinite(score)) return false;
      index.AppendPosting(token, ids[i], score);
    }
  }
  index.RestoreStats(num_entities, min_norm);
  *out = std::move(index);
  return true;
}

void PutBitVector(std::string* out, const std::vector<bool>& bits) {
  PutVarint64(out, bits.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->push_back(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out->push_back(static_cast<char>(byte));
}

bool GetBitVector(const std::string& data, size_t* offset,
                  std::vector<bool>* bits) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) return false;
  const size_t bytes = static_cast<size_t>((count + 7) / 8);
  if (*offset + bytes > data.size()) return false;
  bits->assign(count, false);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t byte =
        static_cast<uint8_t>(data[*offset + i / 8]);
    (*bits)[i] = (byte >> (i % 8)) & 1u;
  }
  *offset += bytes;
  return true;
}

}  // namespace

std::string CheckpointFilePath(const std::string& data_dir) {
  return data_dir + "/" + kCheckpointFile;
}

std::string WalFilePath(const std::string& data_dir) {
  return data_dir + "/" + kWalFile;
}

Status EnsureDataDir(const std::string& data_dir) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty");
  }
  // mkdir -p: create each missing component in turn.
  for (size_t pos = 0; pos != std::string::npos;) {
    pos = data_dir.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? data_dir : data_dir.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoIOError("cannot create data directory", prefix);
    }
  }
  return Status::OK();
}

bool CheckpointExists(const std::string& data_dir) {
  return ::access(CheckpointFilePath(data_dir).c_str(), F_OK) == 0;
}

void EncodeRecordSet(const RecordSet& records, std::string* out) {
  PutVarint64(out, records.size());
  for (RecordId id = 0; id < records.size(); ++id) {
    const RecordView record = records.record(id);
    PutVarint32(out, static_cast<uint32_t>(record.size()));
    TokenId prev = 0;
    for (size_t i = 0; i < record.size(); ++i) {
      PutVarint32(out, record.token(i) - prev);
      prev = record.token(i);
    }
    for (size_t i = 0; i < record.size(); ++i) {
      PutDouble(out, record.score(i));
    }
    PutDouble(out, record.norm());
    PutVarint32(out, record.text_length());
    const std::string& text = records.text(id);
    PutVarint64(out, text.size());
    out->append(text);
  }
}

Result<RecordSet> DecodeRecordSet(const std::string& data, size_t* offset) {
  uint64_t count = 0;
  if (!GetVarint64(data, offset, &count)) {
    return Status::IOError("truncated record-set count");
  }
  if (count > data.size()) {
    return Status::IOError("implausible record-set count");
  }
  RecordSet records;
  std::vector<TokenId> tokens;
  std::vector<double> scores;
  for (uint64_t r = 0; r < count; ++r) {
    uint32_t num_tokens = 0;
    if (!GetVarint32(data, offset, &num_tokens) ||
        num_tokens > data.size()) {
      return Status::IOError("truncated record header");
    }
    tokens.assign(num_tokens, 0);
    scores.assign(num_tokens, 0);
    TokenId prev = 0;
    for (uint32_t i = 0; i < num_tokens; ++i) {
      uint32_t delta = 0;
      if (!GetVarint32(data, offset, &delta)) {
        return Status::IOError("truncated record tokens");
      }
      if (i > 0 && delta == 0) {
        return Status::IOError("non-monotone record tokens");
      }
      prev = i == 0 ? delta : prev + delta;
      tokens[i] = prev;
    }
    for (uint32_t i = 0; i < num_tokens; ++i) {
      if (!GetDouble(data, offset, &scores[i])) {
        return Status::IOError("truncated record scores");
      }
    }
    double norm = 0;
    uint32_t text_length = 0;
    uint64_t text_size = 0;
    if (!GetDouble(data, offset, &norm) ||
        !GetVarint32(data, offset, &text_length) ||
        !GetVarint64(data, offset, &text_size)) {
      return Status::IOError("truncated record trailer");
    }
    if (*offset + text_size > data.size()) {
      return Status::IOError("truncated record text");
    }
    std::string text(data, *offset, text_size);
    *offset += text_size;
    // Add() recounts doc/term frequencies exactly as the live insertion
    // did, so the decoded set's statistics match the encoded one's.
    records.Add(RecordView(tokens.data(), scores.data(), num_tokens, norm,
                           text_length),
                std::move(text));
  }
  return records;
}

Status SaveCheckpoint(const std::string& data_dir,
                      const CheckpointState& state) {
  if (state.corpus == nullptr || state.deleted == nullptr ||
      state.base_records == nullptr ||
      state.shards.size() != state.tombstones.size()) {
    return Status::InvalidArgument("incomplete checkpoint state");
  }
  std::string buffer(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutFixed32(&buffer, kCheckpointVersion);
  PutVarint64(&buffer, state.epoch);
  PutVarint64(&buffer, state.wal_seq);
  PutVarint64(&buffer, state.predicate.size());
  buffer += state.predicate;
  PutVarint64(&buffer, state.shards.size());
  PutIdList(&buffer, state.shard_bounds);
  EncodeRecordSet(*state.corpus, &buffer);
  PutBitVector(&buffer, *state.deleted);
  EncodeRecordSet(*state.base_records, &buffer);
  for (size_t s = 0; s < state.shards.size(); ++s) {
    const ShardedBaseTier& shard = *state.shards[s];
    PutIdList(&buffer, shard.member_ids);
    PutIdList(&buffer, shard.global_ids);
    PutIdList(&buffer, shard.short_ids);
    PutIdList(&buffer, *state.tombstones[s]);
    PutIndex(&buffer, shard.index);
  }
  // Whole-file trailing checksum: a checkpoint either verifies end to end
  // or is rejected — there is no partially-trusted checkpoint.
  PutFixed32(&buffer, Crc32(buffer.data(), buffer.size()));
  return WriteFileAtomic(CheckpointFilePath(data_dir), buffer);
}

Result<ServiceCheckpoint> LoadCheckpoint(const std::string& data_dir) {
  const std::string path = CheckpointFilePath(data_dir);
  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.size() < sizeof(kCheckpointMagic) + 2 * sizeof(uint32_t) ||
      std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return Corrupt("bad magic", path);
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  size_t crc_offset = body_size;
  uint32_t stored_crc = 0;
  GetFixed32(data, &crc_offset, &stored_crc);
  if (Crc32(data.data(), body_size) != stored_crc) {
    return Corrupt("checksum mismatch", path);
  }

  size_t offset = sizeof(kCheckpointMagic);
  uint32_t version = 0;
  GetFixed32(data, &offset, &version);
  if (version != kCheckpointVersion) {
    return Status::IOError("unsupported checkpoint version: " + path);
  }

  // The payload (between header and trailing CRC) decodes as a plain
  // string slice; every Get* below is bounded by body_size via `body`.
  const std::string body = data.substr(0, body_size);
  ServiceCheckpoint cp;
  uint64_t pred_size = 0;
  uint64_t num_shards = 0;
  if (!GetVarint64(body, &offset, &cp.epoch) ||
      !GetVarint64(body, &offset, &cp.wal_seq) ||
      !GetVarint64(body, &offset, &pred_size) ||
      pred_size > body.size() - offset) {
    return Corrupt("truncated header", path);
  }
  cp.predicate.assign(body, offset, pred_size);
  offset += pred_size;
  if (!GetVarint64(body, &offset, &num_shards) || num_shards == 0 ||
      num_shards > body.size()) {
    return Corrupt("bad shard count", path);
  }
  if (!GetIdList(body, &offset, &cp.shard_bounds) ||
      cp.shard_bounds.size() + 1 != num_shards) {
    return Corrupt("bad shard bounds", path);
  }
  Result<RecordSet> corpus = DecodeRecordSet(body, &offset);
  if (!corpus.ok()) {
    return Corrupt(corpus.status().message() + " [corpus]", path);
  }
  cp.corpus = std::move(corpus).value();
  if (!GetBitVector(body, &offset, &cp.deleted) ||
      cp.deleted.size() != cp.corpus.size()) {
    return Corrupt("bad deleted bitmap", path);
  }
  Result<RecordSet> base = DecodeRecordSet(body, &offset);
  if (!base.ok()) {
    return Corrupt(base.status().message() + " [base arena]", path);
  }
  cp.base_records = std::move(base).value();
  cp.shards.reserve(num_shards);
  cp.tombstones.resize(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_shared<ShardedBaseTier>();
    if (!GetIdList(body, &offset, &shard->member_ids) ||
        !GetIdList(body, &offset, &shard->global_ids) ||
        !GetIdList(body, &offset, &shard->short_ids) ||
        !GetIdList(body, &offset, &cp.tombstones[s])) {
      return Corrupt("truncated shard tables", path);
    }
    if (shard->member_ids.size() != shard->global_ids.size()) {
      return Corrupt("shard id tables disagree", path);
    }
    for (RecordId pos : shard->member_ids) {
      if (pos >= cp.base_records.size()) {
        return Corrupt("shard member out of range", path);
      }
    }
    for (RecordId gid : shard->global_ids) {
      if (gid >= cp.corpus.size()) {
        return Corrupt("shard global id out of range", path);
      }
    }
    if (!GetIndex(body, &offset, &shard->index) ||
        shard->index.num_entities() != shard->member_ids.size()) {
      return Corrupt("bad shard index", path);
    }
    for (RecordId local : shard->short_ids) {
      if (local >= shard->member_ids.size()) {
        return Corrupt("shard short id out of range", path);
      }
    }
    cp.shards.push_back(std::move(shard));
  }
  if (offset != body.size()) {
    return Corrupt("trailing bytes", path);
  }
  return cp;
}

}  // namespace ssjoin
