#include "serve/snapshot.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/predicate.h"

namespace ssjoin {

std::vector<TokenId> ComputeShardBounds(const std::vector<uint64_t>& mass,
                                        size_t num_shards) {
  std::vector<TokenId> bounds;
  if (num_shards <= 1) return bounds;
  uint64_t total = 0;
  for (uint64_t m : mass) total += m;
  // Walk tokens in id order and cut whenever the cumulative mass crosses
  // the next 1/num_shards fraction — the CSR analogue of range
  // partitioning by key with a known histogram.
  uint64_t cumulative = 0;
  size_t next_cut = 1;
  for (TokenId t = 0; t < mass.size() && next_cut < num_shards; ++t) {
    cumulative += mass[t];
    if (total > 0 && cumulative * num_shards >= next_cut * total) {
      bounds.push_back(t + 1);
      ++next_cut;
    }
  }
  // Degenerate vocabularies (fewer mass steps than shards, or an empty
  // corpus) pad with the vocabulary end: trailing shards own no initial
  // tokens but still receive future out-of-vocabulary inserts' overflow
  // through the "last shard" rule in RouteToShard.
  while (bounds.size() + 1 < num_shards) {
    bounds.push_back(static_cast<TokenId>(mass.size()));
  }
  return bounds;
}

std::vector<uint64_t> RoutingMassHistogram(const RecordSet& records) {
  std::vector<uint64_t> mass(records.vocabulary_size(), 0);
  for (RecordId id = 0; id < records.size(); ++id) {
    const RecordView r = records.record(id);
    if (r.empty()) continue;
    mass[r.token(r.size() - 1)] += r.size();
  }
  return mass;
}

size_t RouteToShard(RecordView record, const std::vector<TokenId>& bounds) {
  if (bounds.empty() || record.empty()) return 0;
  TokenId key = record.token(record.size() - 1);
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), key) - bounds.begin());
}

std::shared_ptr<const CorpusSegment> BuildCorpusSegment(
    uint64_t id, RecordSet records, std::vector<RecordId> global_ids,
    const std::vector<TokenId>& shard_bounds, size_t num_shards,
    double short_norm_bound) {
  auto segment = std::make_shared<CorpusSegment>();
  segment->id = id;
  auto owned = std::make_shared<RecordSet>(std::move(records));
  const RecordSet& arena = *owned;
  segment->records = owned;
  segment->global_ids = std::move(global_ids);
  segment->shards.resize(num_shards);
  for (RecordId local = 0; local < arena.size(); ++local) {
    SegmentShardPart& part =
        segment->shards[RouteToShard(arena.record(local), shard_bounds)];
    part.member_ids.push_back(local);
    part.global_ids.push_back(segment->global_ids[local]);
  }
  for (SegmentShardPart& part : segment->shards) {
    part.index.PlanFromRecordsSubset(arena, part.member_ids);
    for (size_t local = 0; local < part.member_ids.size(); ++local) {
      part.index.Insert(static_cast<RecordId>(local),
                        arena.record(part.member_ids[local]));
    }
    if (short_norm_bound > 0) {
      for (size_t local = 0; local < part.member_ids.size(); ++local) {
        if (arena.record(part.member_ids[local]).norm() < short_norm_bound) {
          part.short_ids.push_back(static_cast<RecordId>(local));
        }
      }
    }
  }
  segment->approx_bytes = ComputeSegmentApproxBytes(*segment);
  return segment;
}

uint64_t ComputeSegmentApproxBytes(const CorpusSegment& segment) {
  // A view-mode records/index reports only its heap-resident tables —
  // the mapped body is page cache, not service heap, and is accounted
  // separately via CorpusSegment::mapped_bytes.
  uint64_t bytes = segment.records->ApproxMemoryBytes();
  bytes += segment.global_ids.size() * sizeof(RecordId);
  for (const SegmentShardPart& part : segment.shards) {
    bytes += (part.member_ids.size() + part.global_ids.size() +
              part.short_ids.size()) *
             sizeof(RecordId);
    if (!part.index.is_view()) {
      bytes += part.index.total_postings() * sizeof(Posting);
    }
  }
  return bytes;
}

std::shared_ptr<const ShardedBaseTier> BuildShardChainView(
    const SegmentChain& chain, size_t shard) {
  auto tier = std::make_shared<ShardedBaseTier>();
  tier->min_norm = std::numeric_limits<double>::infinity();
  tier->links.reserve(chain.size());
  RecordId offset = 0;
  for (const SegmentChainEntry& entry : chain) {
    const SegmentShardPart& part = entry.segment->shards[shard];
    ShardChainLink link;
    link.segment = entry.segment;
    link.part = &part;
    link.id_offset = offset;
    link.dead = entry.dead[shard];
    tier->links.push_back(std::move(link));
    offset += static_cast<RecordId>(part.member_ids.size());
    tier->num_entities += part.member_ids.size();
    tier->min_norm = std::min(tier->min_norm, part.index.min_norm());
  }
  return tier;
}

std::shared_ptr<const DeltaShard> BuildDeltaShard(
    RecordSet records, std::vector<RecordId> global_ids,
    double short_norm_bound, std::vector<RecordId> tombstones) {
  auto shard = std::make_shared<DeltaShard>();
  shard->records = std::move(records);
  shard->global_ids = std::move(global_ids);
  shard->tombstones = std::move(tombstones);
  auto is_tombstoned = [&shard](RecordId local) {
    return std::binary_search(shard->tombstones.begin(),
                              shard->tombstones.end(),
                              shard->global_ids[local]);
  };
  // Tombstoned memtable records are dropped from the index outright (ids
  // may gap — DynamicIndex only requires them increasing), so delta
  // probes never surface them; only base members need probe-time
  // filtering against the tombstone list.
  for (RecordId id = 0; id < shard->records.size(); ++id) {
    if (shard->tombstones.empty() || !is_tombstoned(id)) {
      shard->index.Insert(id, shard->records.record(id));
    }
  }
  if (short_norm_bound > 0) {
    for (RecordId id = 0; id < shard->records.size(); ++id) {
      if (shard->records.record(id).norm() < short_norm_bound &&
          (shard->tombstones.empty() || !is_tombstoned(id))) {
        shard->short_ids.push_back(id);
      }
    }
  }
  return shard;
}

}  // namespace ssjoin
