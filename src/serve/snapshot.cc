#include "serve/snapshot.h"

#include <utility>

#include "core/predicate.h"

namespace ssjoin {

namespace {

std::vector<RecordId> CollectShortIds(const RecordSet& records,
                                      double short_norm_bound) {
  std::vector<RecordId> short_ids;
  if (short_norm_bound <= 0) return short_ids;
  for (RecordId id = 0; id < records.size(); ++id) {
    if (records.record(id).norm() < short_norm_bound) {
      short_ids.push_back(id);
    }
  }
  return short_ids;
}

}  // namespace

std::shared_ptr<const BaseTier> BuildBaseTier(RecordSet records,
                                              const Predicate& pred) {
  auto tier = std::make_shared<BaseTier>();
  tier->records = std::move(records);
  pred.Prepare(&tier->records);
  tier->index.PlanFromRecords(tier->records);
  for (RecordId id = 0; id < tier->records.size(); ++id) {
    tier->index.Insert(id, tier->records.record(id));
  }
  tier->short_ids =
      CollectShortIds(tier->records, pred.ShortRecordNormBound());
  return tier;
}

std::shared_ptr<const DeltaTier> BuildDeltaTier(RecordSet records,
                                                double short_norm_bound) {
  auto tier = std::make_shared<DeltaTier>();
  tier->records = std::move(records);
  for (RecordId id = 0; id < tier->records.size(); ++id) {
    tier->index.Insert(id, tier->records.record(id));
  }
  tier->short_ids = CollectShortIds(tier->records, short_norm_bound);
  return tier;
}

}  // namespace ssjoin
