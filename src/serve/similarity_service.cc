#include "serve/similarity_service.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "core/probe_common.h"
#include "util/function_ref.h"
#include "util/timer.h"

namespace ssjoin {

namespace {

/// Per-query mutable context: scratch buffers plus the counters folded
/// into ServiceStats afterwards. One per worker in batch mode.
struct QueryContext {
  probe_internal::ProbeScratch scratch;
  MergeStats merge;
  uint64_t candidates = 0;
};

/// Probes one tier's index for `staged.record(q)` and appends every
/// VERIFIED match as a global-id QueryMatch. The probe mirrors the batch
/// drivers bound-for-bound: floor = T(probe, minS of the tier), per
/// candidate bound = T(probe, ||m||), optional norm range filter, then
/// the predicate's canonical MatchesCross decision — so a query accepts a
/// pair exactly when the batch join would.
template <typename IndexT>
void ProbeTierForMatches(const Predicate& pred, const ServiceOptions& options,
                         const IndexT& index, const RecordSet& tier_records,
                         RecordId id_offset, const RecordSet& staged,
                         RecordId q, QueryContext* ctx,
                         std::vector<QueryMatch>* out,
                         std::unordered_set<RecordId>* matched_local) {
  const RecordView probe = staged.record(q);
  if (index.num_entities() == 0 || probe.empty()) return;
  double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
  auto required_fn = [&](RecordId m) {
    return pred.ThresholdForNorms(probe.norm(), tier_records.record(m).norm());
  };
  FunctionRef<double(RecordId)> required = required_fn;
  auto filter_fn = [&](RecordId m) {
    return pred.NormFilter(probe.norm(), tier_records.record(m).norm());
  };
  FunctionRef<bool(RecordId)> filter;
  if (options.apply_filter && pred.has_norm_filter()) filter = filter_fn;
  probe_internal::ProbeOne(
      index, probe, floor, required, filter, options.merge, &ctx->merge,
      &ctx->scratch, [&](const MergeCandidate& candidate) {
        ++ctx->candidates;
        if (pred.MatchesCross(tier_records, candidate.id, staged, q)) {
          if (matched_local != nullptr) matched_local->insert(candidate.id);
          out->push_back(
              {id_offset + candidate.id,
               tier_records.record(candidate.id).OverlapWith(probe)});
        }
      });
}

/// The short-record side pool, per tier: a short probe is checked against
/// every short tier record the index probe did not already accept (such
/// pairs can match with no shared token, e.g. tiny strings under the
/// edit-distance q-gram bound). Mirrors StreamingJoin::Add.
void ProbeTierShortPool(const Predicate& pred, const RecordSet& tier_records,
                        const std::vector<RecordId>& short_ids,
                        RecordId id_offset, const RecordSet& staged,
                        RecordId q, QueryContext* ctx,
                        std::vector<QueryMatch>* out,
                        const std::unordered_set<RecordId>& matched_local) {
  const RecordView probe = staged.record(q);
  for (RecordId local : short_ids) {
    if (matched_local.count(local) > 0) continue;
    ++ctx->candidates;
    if (pred.MatchesCross(tier_records, local, staged, q)) {
      out->push_back({id_offset + local,
                      tier_records.record(local).OverlapWith(probe)});
    }
  }
}

/// Full thresholded lookup of staged.record(q) against one snapshot:
/// base tier, then delta tier (global ids offset by the base size),
/// then id-sorted — byte-identical output for any probe interleaving.
std::vector<QueryMatch> LookupOne(const Predicate& pred,
                                  const ServiceOptions& options,
                                  const IndexSnapshot& snap,
                                  const RecordSet& staged, RecordId q,
                                  QueryContext* ctx) {
  std::vector<QueryMatch> out;
  const RecordView probe = staged.record(q);
  double short_bound = pred.ShortRecordNormBound();
  bool probe_is_short = short_bound > 0 && probe.norm() < short_bound;
  std::unordered_set<RecordId> matched;  // only consulted when short
  std::unordered_set<RecordId>* matched_ptr =
      probe_is_short ? &matched : nullptr;

  const RecordId delta_offset = static_cast<RecordId>(snap.base_size());
  ProbeTierForMatches(pred, options, snap.base->index, snap.base->records,
                      /*id_offset=*/0, staged, q, ctx, &out, matched_ptr);
  if (probe_is_short) {
    ProbeTierShortPool(pred, snap.base->records, snap.base->short_ids,
                       /*id_offset=*/0, staged, q, ctx, &out, matched);
    matched.clear();
  }
  ProbeTierForMatches(pred, options, snap.delta->index, snap.delta->records,
                      delta_offset, staged, q, ctx, &out, matched_ptr);
  if (probe_is_short) {
    ProbeTierShortPool(pred, snap.delta->records, snap.delta->short_ids,
                       delta_offset, staged, q, ctx, &out, matched);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.id < b.id;
            });
  return out;
}

/// Unthresholded overlap sweep for top-k: floor 0, no per-candidate
/// bound, no filter — every tier record sharing a token surfaces with
/// its canonical match amount.
template <typename IndexT>
void SweepTierOverlaps(const IndexT& index, const RecordSet& tier_records,
                       RecordId id_offset, RecordView probe,
                       QueryContext* ctx, std::vector<QueryMatch>* out) {
  if (index.num_entities() == 0 || probe.empty()) return;
  probe_internal::ProbeOne(
      index, probe, /*floor=*/0, /*required=*/{}, /*filter=*/{},
      MergeOptions{}, &ctx->merge, &ctx->scratch,
      [&](const MergeCandidate& candidate) {
        ++ctx->candidates;
        out->push_back({id_offset + candidate.id,
                        tier_records.record(candidate.id).OverlapWith(probe)});
      });
}

uint64_t ElapsedMicros(const Timer& timer) {
  return static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
}

}  // namespace

SimilarityService::SimilarityService(RecordSet corpus, const Predicate& pred,
                                     ServiceOptions options)
    : pred_(pred),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          options.num_threads > 0 ? options.num_threads
                                  : ThreadPool::DefaultNumThreads())),
      corpus_(std::move(corpus)) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  CompactLocked(/*count_compaction=*/false);
}

void SimilarityService::CompactLocked(bool count_compaction) {
  std::shared_ptr<const BaseTier> base = BuildBaseTier(corpus_, pred_);
  memtable_ = RecordSet();
  std::shared_ptr<const DeltaTier> delta =
      BuildDeltaTier(memtable_, pred_.ShortRecordNormBound());
  Publish(std::move(base), std::move(delta));
  if (count_compaction) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.compactions;
  }
}

void SimilarityService::Publish(std::shared_ptr<const BaseTier> base,
                                std::shared_ptr<const DeltaTier> delta) {
  auto snap = std::make_shared<IndexSnapshot>();
  snap->base = std::move(base);
  snap->delta = std::move(delta);
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snap->epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch + 1;
  snapshot_ = std::move(snap);
}

std::shared_ptr<const IndexSnapshot> SimilarityService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

RecordId SimilarityService::Insert(RecordView record, std::string text) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  std::shared_ptr<const IndexSnapshot> snap = snapshot();

  // Score the newcomer against the published base statistics, then grow
  // the memtable and publish a fresh delta image. The base tier is
  // shared, not copied: per-insert work is O(memtable), bounded by
  // memtable_limit.
  RecordSet staging;
  staging.Add(record, text);
  pred_.PrepareIncremental(snap->base->records, &staging);
  const RecordId id = static_cast<RecordId>(corpus_.size());
  corpus_.Add(record, std::move(text));
  memtable_.Add(staging.record(0), staging.text(0));
  Publish(snap->base,
          BuildDeltaTier(memtable_, pred_.ShortRecordNormBound()));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.inserts;
  }
  if (options_.memtable_limit > 0 &&
      memtable_.size() >= options_.memtable_limit) {
    CompactLocked(/*count_compaction=*/true);
  }
  return id;
}

void SimilarityService::Compact() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  CompactLocked(/*count_compaction=*/true);
}

std::vector<QueryMatch> SimilarityService::Query(RecordView query,
                                                 std::string text) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged;
  staged.Add(query, std::move(text));
  pred_.PrepareIncremental(snap->base->records, &staged);
  QueryContext ctx;
  std::vector<QueryMatch> out =
      LookupOne(pred_, options_, *snap, staged, 0, &ctx);
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.point_queries;
    stats_.candidates += ctx.candidates;
    stats_.results += out.size();
    stats_.merge += ctx.merge;
    stats_.query_latency_us.Record(micros);
  }
  return out;
}

std::vector<std::vector<QueryMatch>> SimilarityService::BatchQuery(
    const RecordSet& queries) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged = queries;
  pred_.PrepareIncremental(snap->base->records, &staged);

  // Slot vector indexed by query id: scheduling order cannot change the
  // output, and per-worker contexts keep the hot path allocation-free.
  std::vector<std::vector<QueryMatch>> results(staged.size());
  std::vector<QueryContext> contexts(
      static_cast<size_t>(pool_->num_threads()));
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    pool_->ParallelFor(
        staged.size(), /*chunk=*/1, [&](size_t begin, size_t end, int worker) {
          for (size_t i = begin; i < end; ++i) {
            results[i] =
                LookupOne(pred_, options_, *snap, staged,
                          static_cast<RecordId>(i), &contexts[worker]);
          }
        });
  }
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batch_queries;
    stats_.batched_records += staged.size();
    for (const QueryContext& ctx : contexts) {
      stats_.candidates += ctx.candidates;
      stats_.merge += ctx.merge;
    }
    for (const std::vector<QueryMatch>& r : results) {
      stats_.results += r.size();
    }
    stats_.batch_latency_us.Record(micros);
  }
  return results;
}

std::vector<QueryMatch> SimilarityService::QueryTopK(RecordView query,
                                                     size_t k,
                                                     std::string text) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged;
  staged.Add(query, std::move(text));
  pred_.PrepareIncremental(snap->base->records, &staged);
  const RecordView probe = staged.record(0);

  QueryContext ctx;
  std::vector<QueryMatch> out;
  SweepTierOverlaps(snap->base->index, snap->base->records, /*id_offset=*/0,
                    probe, &ctx, &out);
  SweepTierOverlaps(snap->delta->index, snap->delta->records,
                    static_cast<RecordId>(snap->base_size()), probe, &ctx,
                    &out);
  std::sort(out.begin(), out.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out.size() > k) out.resize(k);
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.topk_queries;
    stats_.candidates += ctx.candidates;
    stats_.results += out.size();
    stats_.merge += ctx.merge;
    stats_.query_latency_us.Record(micros);
  }
  return out;
}

ServiceStats SimilarityService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string SimilarityService::StatsJson() const {
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  ServiceStats copy = stats();
  char header[160];
  std::snprintf(header, sizeof(header),
                "{\"epoch\": %llu, \"base_records\": %llu, "
                "\"memtable_records\": %llu, \"stats\": ",
                static_cast<unsigned long long>(snap->epoch),
                static_cast<unsigned long long>(snap->base_size()),
                static_cast<unsigned long long>(snap->delta_size()));
  return std::string(header) + copy.ToJson() + "}";
}

}  // namespace ssjoin
