#include "serve/similarity_service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "core/probe_common.h"
#include "util/function_ref.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ssjoin {

namespace {

/// Per-query mutable context: scratch buffers plus the counters folded
/// into ServiceStats afterwards. One per worker in batch mode, one per
/// shard in the point-query fan-out.
struct QueryContext {
  probe_internal::ProbeScratch scratch;
  std::vector<probe_internal::ProbePart> parts;  // chain probe views
  MergeStats merge;
  // Per-shard attribution; sized lazily on first use.
  std::vector<uint64_t> shard_candidates;
  std::vector<uint64_t> shard_results;

  void EnsureShards(size_t num_shards) {
    if (shard_candidates.size() < num_shards) {
      shard_candidates.resize(num_shards, 0);
      shard_results.resize(num_shards, 0);
    }
  }
};

bool IdLess(const QueryMatch& a, const QueryMatch& b) { return a.id < b.id; }

/// Bitmap-gate width in words for this service configuration: 0 (off)
/// unless the predicate opted in, otherwise bitmap_bits rounded down to
/// whole words and clamped to the stored width. Thresholded lookups gate
/// with this; the top-k sweep never gates (its floor is 0 — nothing to
/// prune against).
size_t BitmapGateWords(const ServiceOptions& options, const Predicate& pred) {
  if (!pred.supports_bitmap_pruning()) return 0;
  return std::min(options.bitmap_bits / 64, kTokenBitmapWords);
}

/// A chain-wide id mapped back to its owning link and part-local id.
struct ChainPos {
  size_t link;
  RecordId part_local;
};

/// The last link whose offset is at or below `chain_id`. Empty parts
/// share their successor's offset, and a probed id always belongs to a
/// non-empty part, so "last" resolves ties to the real owner.
ChainPos ResolveChain(const ShardedBaseTier& tier, RecordId chain_id) {
  size_t lo = 0;
  size_t hi = tier.links.size();
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (tier.links[mid].id_offset <= chain_id) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return {lo, chain_id - tier.links[lo].id_offset};
}

/// Whether a part member was masked dead (deleted after its segment was
/// built). Masked members keep their postings until a merge drops them
/// physically, so every chain probe path must apply this to candidates
/// BEFORE verification — same contract as the tombstone filter.
bool IsMaskedDead(const ShardChainLink& link, RecordId part_local) {
  return link.dead != nullptr &&
         std::binary_search(link.dead->begin(), link.dead->end(), part_local);
}

/// Probes one shard tier for `staged.record(q)` and appends every
/// VERIFIED match as a global-id QueryMatch. The index speaks local ids;
/// `backing_ids` maps them into `backing` (nullptr when local ids ARE
/// backing ids, i.e. delta shards) and `global_ids` maps them to corpus
/// ids. `tombstones` is the shard's pending-delete list (sorted global
/// ids, may be null): a tombstoned candidate is dropped before
/// verification, exactly as if compaction had already removed its
/// postings — only base tiers need this, delta images exclude tombstoned
/// records at build time. The probe mirrors the batch drivers
/// bound-for-bound: floor = T(probe, minS of the shard tier) — a valid,
/// per-shard-tighter lower bound, since every candidate bound
/// T(probe, ||m||) dominates it — per candidate bound, optional norm
/// range filter, then the predicate's canonical MatchesCross decision,
/// so a sharded query accepts a pair exactly when the batch join (and
/// the 1-shard service) would.
template <typename IndexT>
void ProbeShardTier(const Predicate& pred, const ServiceOptions& options,
                    const IndexT& index, const RecordSet& backing,
                    const std::vector<RecordId>* backing_ids,
                    const std::vector<RecordId>& global_ids,
                    const std::vector<RecordId>* tombstones,
                    const RecordSet& staged, RecordId q, size_t shard,
                    QueryContext* ctx, std::vector<QueryMatch>* out,
                    std::unordered_set<RecordId>* matched_local) {
  const RecordView probe = staged.record(q);
  if (index.num_entities() == 0 || probe.empty()) return;
  auto to_backing = [&](RecordId local) {
    return backing_ids != nullptr ? (*backing_ids)[local] : local;
  };
  double floor = pred.ThresholdForNorms(probe.norm(), index.min_norm());
  auto required_fn = [&](RecordId m) {
    return pred.ThresholdForNorms(probe.norm(),
                                  backing.record(to_backing(m)).norm());
  };
  FunctionRef<double(RecordId)> required = required_fn;
  auto filter_fn = [&](RecordId m) {
    return pred.NormFilter(probe.norm(),
                           backing.record(to_backing(m)).norm());
  };
  FunctionRef<bool(RecordId)> filter;
  if (options.apply_filter && pred.has_norm_filter()) filter = filter_fn;
  auto gate_lookup = [&](RecordId m) {
    const TokenBitmapEntry& e = backing.token_bitmap_entry(to_backing(m));
    return BitmapCandidate{e.bits, static_cast<uint32_t>(e.tokens)};
  };
  BitmapGate gate;
  gate.lookup = gate_lookup;
  const BitmapGate* gate_ptr = nullptr;
  if (const size_t gate_words = BitmapGateWords(options, pred);
      gate_words > 0) {
    gate.probe_bits = staged.token_bitmap(q);
    gate.probe_tokens = static_cast<uint32_t>(probe.size());
    gate.words = gate_words;
    gate_ptr = &gate;
  }
  probe_internal::ProbeOne(
      index, probe, floor, required, filter, options.merge, &ctx->merge,
      &ctx->scratch,
      [&](const MergeCandidate& candidate) {
        if (tombstones != nullptr &&
            probe_internal::IsTombstoned(*tombstones,
                                         global_ids[candidate.id])) {
          return;
        }
        ++ctx->shard_candidates[shard];
        const RecordId bid = to_backing(candidate.id);
        if (pred.MatchesCross(backing, bid, staged, q)) {
          if (matched_local != nullptr) matched_local->insert(candidate.id);
          out->push_back({global_ids[candidate.id],
                          backing.record(bid).OverlapWith(probe)});
        }
      },
      gate_ptr);
}

/// ProbeShardTier's counterpart for the segment chain: each probe token
/// contributes one posting-list view per segment part, all merged as ONE
/// id space by the ListMerger id-offset path, so candidates stream in
/// increasing chain-wide id order exactly as if the chain were a single
/// concatenated index. Masked-dead members (ShardChainLink::dead) are
/// dropped alongside tombstoned ones before verification; bounds resolve
/// through the candidate's owning segment record, so the probe is
/// bound-for-bound identical to the unsegmented tier.
void ProbeShardChain(const Predicate& pred, const ServiceOptions& options,
                     const ShardedBaseTier& tier,
                     const std::vector<RecordId>* tombstones,
                     const RecordSet& staged, RecordId q, size_t shard,
                     QueryContext* ctx, std::vector<QueryMatch>* out,
                     std::unordered_set<RecordId>* matched_chain) {
  const RecordView probe = staged.record(q);
  if (tier.num_entities == 0 || probe.empty()) return;
  ctx->parts.clear();
  for (const ShardChainLink& link : tier.links) {
    ctx->parts.push_back({&link.part->index, link.id_offset});
  }
  auto member_norm = [&](RecordId chain_id) {
    const ChainPos pos = ResolveChain(tier, chain_id);
    const ShardChainLink& link = tier.links[pos.link];
    return link.segment->records
        ->record(link.part->member_ids[pos.part_local])
        .norm();
  };
  double floor = pred.ThresholdForNorms(probe.norm(), tier.min_norm);
  auto required_fn = [&](RecordId m) {
    return pred.ThresholdForNorms(probe.norm(), member_norm(m));
  };
  FunctionRef<double(RecordId)> required = required_fn;
  auto filter_fn = [&](RecordId m) {
    return pred.NormFilter(probe.norm(), member_norm(m));
  };
  FunctionRef<bool(RecordId)> filter;
  if (options.apply_filter && pred.has_norm_filter()) filter = filter_fn;
  auto gate_lookup = [&](RecordId chain_id) {
    const ChainPos pos = ResolveChain(tier, chain_id);
    const ShardChainLink& link = tier.links[pos.link];
    const TokenBitmapEntry& e = link.segment->records->token_bitmap_entry(
        link.part->member_ids[pos.part_local]);
    return BitmapCandidate{e.bits, static_cast<uint32_t>(e.tokens)};
  };
  BitmapGate gate;
  gate.lookup = gate_lookup;
  const BitmapGate* gate_ptr = nullptr;
  if (const size_t gate_words = BitmapGateWords(options, pred);
      gate_words > 0) {
    gate.probe_bits = staged.token_bitmap(q);
    gate.probe_tokens = static_cast<uint32_t>(probe.size());
    gate.words = gate_words;
    gate_ptr = &gate;
  }
  probe_internal::ProbeChain(
      ctx->parts, probe, floor, required, filter, options.merge, &ctx->merge,
      &ctx->scratch,
      [&](const MergeCandidate& candidate) {
        const ChainPos pos = ResolveChain(tier, candidate.id);
        const ShardChainLink& link = tier.links[pos.link];
        if (IsMaskedDead(link, pos.part_local)) return;
        const RecordId gid = link.part->global_ids[pos.part_local];
        if (tombstones != nullptr &&
            probe_internal::IsTombstoned(*tombstones, gid)) {
          return;
        }
        ++ctx->shard_candidates[shard];
        const RecordSet& backing = *link.segment->records;
        const RecordId bid = link.part->member_ids[pos.part_local];
        if (pred.MatchesCross(backing, bid, staged, q)) {
          if (matched_chain != nullptr) matched_chain->insert(candidate.id);
          out->push_back({gid, backing.record(bid).OverlapWith(probe)});
        }
      },
      gate_ptr);
}

/// The short-record side pool, per shard tier: a short probe is checked
/// against every short tier record the index probe did not already
/// accept (such pairs can match with no shared token, e.g. tiny strings
/// under the edit-distance q-gram bound). Mirrors StreamingJoin::Add.
/// Tombstoned pool members are skipped the same way as index candidates
/// (`tombstones` null when the tier has none to filter).
void ProbeShardShortPool(const Predicate& pred, const RecordSet& backing,
                         const std::vector<RecordId>* backing_ids,
                         const std::vector<RecordId>& global_ids,
                         const std::vector<RecordId>* tombstones,
                         const std::vector<RecordId>& short_ids,
                         const RecordSet& staged, RecordId q, size_t shard,
                         QueryContext* ctx, std::vector<QueryMatch>* out,
                         const std::unordered_set<RecordId>& matched_local) {
  const RecordView probe = staged.record(q);
  for (RecordId local : short_ids) {
    if (matched_local.count(local) > 0) continue;
    if (tombstones != nullptr &&
        probe_internal::IsTombstoned(*tombstones, global_ids[local])) {
      continue;
    }
    ++ctx->shard_candidates[shard];
    const RecordId bid = backing_ids != nullptr ? (*backing_ids)[local] : local;
    if (pred.MatchesCross(backing, bid, staged, q)) {
      out->push_back(
          {global_ids[local], backing.record(bid).OverlapWith(probe)});
    }
  }
}

/// The chain's short pool: link by link in chain order, which is global
/// id order — segments hold disjoint increasing gid ranges — so the
/// sweep order matches the unsegmented pool's. `matched_chain` holds
/// chain-wide ids from ProbeShardChain.
void ProbeChainShortPool(const Predicate& pred, const ShardedBaseTier& tier,
                         const std::vector<RecordId>* tombstones,
                         const RecordSet& staged, RecordId q, size_t shard,
                         QueryContext* ctx, std::vector<QueryMatch>* out,
                         const std::unordered_set<RecordId>& matched_chain) {
  const RecordView probe = staged.record(q);
  for (const ShardChainLink& link : tier.links) {
    for (RecordId part_local : link.part->short_ids) {
      if (matched_chain.count(link.id_offset + part_local) > 0) continue;
      if (IsMaskedDead(link, part_local)) continue;
      const RecordId gid = link.part->global_ids[part_local];
      if (tombstones != nullptr &&
          probe_internal::IsTombstoned(*tombstones, gid)) {
        continue;
      }
      ++ctx->shard_candidates[shard];
      const RecordSet& backing = *link.segment->records;
      const RecordId bid = link.part->member_ids[part_local];
      if (pred.MatchesCross(backing, bid, staged, q)) {
        out->push_back({gid, backing.record(bid).OverlapWith(probe)});
      }
    }
  }
}

/// Full thresholded lookup of staged.record(q) against ONE shard of the
/// snapshot: the shard's chained base tier, then its delta tier, then
/// id-sorted. Each record lives in exactly one shard, so per-shard
/// outputs are disjoint and the deterministic cross-shard merge
/// reconstructs the single-index answer byte for byte.
std::vector<QueryMatch> LookupShard(const Predicate& pred,
                                    const ServiceOptions& options,
                                    const IndexSnapshot& snap, size_t shard,
                                    const RecordSet& staged, RecordId q,
                                    QueryContext* ctx) {
  ctx->EnsureShards(snap.num_shards());
  std::vector<QueryMatch> out;
  const RecordView probe = staged.record(q);
  double short_bound = pred.ShortRecordNormBound();
  bool probe_is_short = short_bound > 0 && probe.norm() < short_bound;
  std::unordered_set<RecordId> matched;  // chain/local ids; only when short
  std::unordered_set<RecordId>* matched_ptr =
      probe_is_short ? &matched : nullptr;

  // The shard's pending tombstones ride on its delta image; base-tier
  // candidates are filtered against them here, delta images already
  // exclude tombstoned records at build time.
  const ShardedBaseTier& base = *snap.base[shard];
  const DeltaShard& delta = *snap.delta[shard];
  const std::vector<RecordId>* tombstones =
      delta.tombstones.empty() ? nullptr : &delta.tombstones;
  ProbeShardChain(pred, options, base, tombstones, staged, q, shard, ctx,
                  &out, matched_ptr);
  if (probe_is_short) {
    ProbeChainShortPool(pred, base, tombstones, staged, q, shard, ctx, &out,
                        matched);
    matched.clear();
  }
  ProbeShardTier(pred, options, delta.index, delta.records,
                 /*backing_ids=*/nullptr, delta.global_ids,
                 /*tombstones=*/nullptr, staged, q, shard, ctx, &out,
                 matched_ptr);
  if (probe_is_short) {
    ProbeShardShortPool(pred, delta.records, /*backing_ids=*/nullptr,
                        delta.global_ids, /*tombstones=*/nullptr,
                        delta.short_ids, staged, q, shard, ctx, &out, matched);
  }
  std::sort(out.begin(), out.end(), IdLess);
  ctx->shard_results[shard] += out.size();
  return out;
}

/// Serial all-shard lookup used by batch workers (the pool is already
/// fanned out over queries, so shards are swept in-line). Identical
/// output to the point-query shard fan-out: per-shard parts are sorted
/// and disjoint, and the merge order is unique.
std::vector<QueryMatch> LookupAllShards(const Predicate& pred,
                                        const ServiceOptions& options,
                                        const IndexSnapshot& snap,
                                        const RecordSet& staged, RecordId q,
                                        QueryContext* ctx) {
  std::vector<std::vector<QueryMatch>> parts(snap.num_shards());
  for (size_t s = 0; s < snap.num_shards(); ++s) {
    parts[s] = LookupShard(pred, options, snap, s, staged, q, ctx);
  }
  std::vector<QueryMatch> out;
  probe_internal::MergeSortedParts(parts, IdLess, &out);
  return out;
}

/// Unthresholded overlap sweep of one shard for top-k: floor 0, no
/// per-candidate bound, no filter — every shard record sharing a token
/// surfaces with its canonical match amount. Masked-dead and tombstoned
/// base members are dropped before ranking, so top-k backfills to k
/// SURVIVORS (a deleted record never displaces a live one from the
/// truncated list).
void SweepShardOverlaps(const IndexSnapshot& snap, size_t shard,
                        RecordView probe, QueryContext* ctx,
                        std::vector<QueryMatch>* out) {
  ctx->EnsureShards(snap.num_shards());
  if (probe.empty()) return;
  const ShardedBaseTier& base = *snap.base[shard];
  const DeltaShard& delta = *snap.delta[shard];
  if (base.num_entities > 0) {
    ctx->parts.clear();
    for (const ShardChainLink& link : base.links) {
      ctx->parts.push_back({&link.part->index, link.id_offset});
    }
    probe_internal::ProbeChain(
        ctx->parts, probe, /*floor=*/0, /*required=*/{}, /*filter=*/{},
        MergeOptions{}, &ctx->merge, &ctx->scratch,
        [&](const MergeCandidate& candidate) {
          const ChainPos pos = ResolveChain(base, candidate.id);
          const ShardChainLink& link = base.links[pos.link];
          if (IsMaskedDead(link, pos.part_local)) return;
          const RecordId gid = link.part->global_ids[pos.part_local];
          if (probe_internal::IsTombstoned(delta.tombstones, gid)) return;
          ++ctx->shard_candidates[shard];
          const RecordId bid = link.part->member_ids[pos.part_local];
          out->push_back(
              {gid, link.segment->records->record(bid).OverlapWith(probe)});
        });
  }
  if (delta.index.num_entities() > 0) {
    probe_internal::ProbeOne(
        delta.index, probe, /*floor=*/0, /*required=*/{}, /*filter=*/{},
        MergeOptions{}, &ctx->merge, &ctx->scratch,
        [&](const MergeCandidate& candidate) {
          ++ctx->shard_candidates[shard];
          out->push_back(
              {delta.global_ids[candidate.id],
               delta.records.record(candidate.id).OverlapWith(probe)});
        });
  }
}

uint64_t ElapsedMicros(const Timer& timer) {
  return static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
}

/// The out-of-core budget a service runs with: the option, or the
/// SSJOIN_RESIDENT_BUDGET environment variable when the option is 0 (the
/// test/CI hook — lets existing harnesses exercise the mapped path
/// without plumbing a flag everywhere). Unparsable values read as 0.
uint64_t EffectiveResidentBudget(const ServiceOptions& options) {
  if (options.resident_budget_bytes > 0) return options.resident_budget_bytes;
  const char* env = std::getenv("SSJOIN_RESIDENT_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  return end != nullptr && *end == '\0' ? static_cast<uint64_t>(value) : 0;
}

}  // namespace

SimilarityService::SimilarityService(RecordSet corpus, const Predicate& pred,
                                     ServiceOptions options)
    : pred_(pred),
      options_(options),
      num_shards_(options.num_shards > 1 ? options.num_shards : 1),
      resident_budget_(EffectiveResidentBudget(options_)),
      pool_(std::make_unique<ThreadPool>(
          options.num_threads > 0 ? options.num_threads
                                  : ThreadPool::DefaultNumThreads())),
      keep_raw_(!pred.corpus_independent_scores()),
      corpus_(std::move(corpus)) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  shard_bounds_ = ComputeShardBounds(RoutingMassHistogram(corpus_), num_shards_);
  next_id_ = corpus_.size();
  deleted_.assign(corpus_.size(), false);
  memtables_.resize(num_shards_);
  memtable_ids_.resize(num_shards_);
  tombstones_.resize(num_shards_);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.EnsureShards(num_shards_);
  }
  CompactLocked(/*count_compaction=*/false);
  // The raw corpus is only ever the full-rebuild input. Predicates with
  // corpus-independent scores full-rebuild exactly once — right above,
  // folding the initial corpus into segment 0 — so their raw bytes are
  // dead weight from here on and the prepared segments carry everything
  // later compactions need.
  if (!keep_raw_) corpus_ = RecordSet();
  if (!options_.data_dir.empty()) InitDurabilityLocked();
  // The initial checkpoint just wrote segment 0; in out-of-core mode,
  // serve it mapped from the start instead of keeping the heap copy.
  AdoptMappedSegmentsLocked();
}

SimilarityService::SimilarityService(ServiceCheckpoint checkpoint,
                                     std::vector<WalRecord> tail,
                                     WriteAheadLog wal, const Predicate& pred,
                                     ServiceOptions options)
    : pred_(pred),
      options_(std::move(options)),
      num_shards_(checkpoint.num_shards()),
      resident_budget_(EffectiveResidentBudget(options_)),
      pool_(std::make_unique<ThreadPool>(
          options_.num_threads > 0 ? options_.num_threads
                                   : ThreadPool::DefaultNumThreads())),
      keep_raw_(!pred.corpus_independent_scores()),
      corpus_(std::move(checkpoint.raw_corpus)) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  shard_bounds_ = std::move(checkpoint.shard_bounds);
  next_id_ = checkpoint.next_id;
  next_segment_id_ = checkpoint.next_segment_id;
  deleted_ = std::move(checkpoint.deleted);
  for (size_t i = 0; i < deleted_.size(); ++i) {
    if (deleted_[i]) ++deleted_total_;
  }
  memtables_.resize(num_shards_);
  memtable_ids_.resize(num_shards_);
  tombstones_ = std::move(checkpoint.tombstones);
  for (const std::vector<RecordId>& ts : tombstones_) {
    tombstone_total_ += ts.size();
  }

  // Rebuild the chain exactly as checkpointed: segments shared straight
  // off disk (and already durable — seed the persisted set so the next
  // checkpoint writes only genuinely new ones), dead masks rewrapped
  // copy-on-write with empty lists collapsing to "none".
  chain_.reserve(checkpoint.segments.size());
  for (ServiceCheckpoint::Segment& seg : checkpoint.segments) {
    SegmentChainEntry entry;
    entry.segment = std::move(seg.segment);
    entry.dead.resize(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      if (!seg.dead[s].empty()) {
        entry.dead[s] = std::make_shared<std::vector<RecordId>>(
            std::move(seg.dead[s]));
      }
    }
    entry.live = static_cast<size_t>(seg.live);
    persisted_segments_.insert(entry.segment->id);
    chain_.push_back(std::move(entry));
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.EnsureShards(num_shards_);
    stats_.segments = chain_.size();
    uint64_t bytes = 0;
    for (const SegmentChainEntry& e : chain_) bytes += e.segment->approx_bytes;
    stats_.segment_bytes = bytes;
    stats_.gc_unlinked_segments += checkpoint.gc.unlinked_segments;
    stats_.gc_unlink_failures += checkpoint.gc.unlink_failures;
  }

  // Re-publish the checkpointed snapshot at its recorded epoch: chain
  // views come straight off the restored chain, deltas start empty
  // (checkpoints are written at compaction points) apart from any
  // carried tombstones.
  const double short_bound = pred_.ShortRecordNormBound();
  std::vector<std::shared_ptr<const ShardedBaseTier>> base(num_shards_);
  std::vector<std::shared_ptr<const DeltaShard>> delta(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    base[s] = BuildShardChainView(chain_, s);
    delta[s] = BuildDeltaShard(RecordSet(), {}, short_bound, tombstones_[s]);
  }
  auto snap = std::make_shared<IndexSnapshot>();
  snap->segments.reserve(chain_.size());
  for (const SegmentChainEntry& entry : chain_) {
    snap->segments.push_back(entry.segment);
  }
  snap->base = std::move(base);
  snap->delta = std::move(delta);
  snap->epoch = checkpoint.epoch;
  snap->live_records = static_cast<size_t>(next_id_) - deleted_total_;
  snap->pending_tombstones = tombstone_total_;
  {
    std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }

  wal_ = std::make_unique<WriteAheadLog>(std::move(wal));
  // last_seq() covers frames a crash left from before the checkpoint
  // (checkpoint renamed, WAL reset pending): seq assignment must not
  // collide with them even though replay skips them.
  wal_next_seq_ = std::max(checkpoint.wal_seq, wal_->last_seq()) + 1;

  // Replay the tail through the normal op paths: the checkpoint is a
  // compaction point, so starting from identical base statistics each
  // replayed op stages, routes, publishes — and auto-compacts — exactly
  // as the original did, epoch for epoch. Frames at or below the
  // checkpoint's seq are the double-apply guard, not part of the tail.
  replaying_ = true;
  for (WalRecord& op : tail) {
    if (op.seq <= checkpoint.wal_seq) continue;
    switch (op.kind) {
      case WalRecord::kInsert:
        InsertLocked(op.record_view(), std::move(op.text));
        break;
      case WalRecord::kDelete:
        DeleteLocked(op.id);
        break;
      case WalRecord::kCompact:
        CompactLocked(/*count_compaction=*/true);
        break;
    }
  }
  replaying_ = false;
  // Checkpointed segments arrive mapped (LoadCheckpoint) and replay
  // compactions map their own output; this covers any that fell back to
  // heap, then applies the budget's residency advice across the chain.
  AdoptMappedSegmentsLocked();
}

Result<std::unique_ptr<SimilarityService>> SimilarityService::Open(
    const Predicate& pred, ServiceOptions options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("Open requires ServiceOptions::data_dir");
  }
  CheckpointLoadOptions load_options;
  load_options.resident_budget_bytes = EffectiveResidentBudget(options);
  Result<ServiceCheckpoint> loaded =
      LoadCheckpoint(options.data_dir, load_options);
  if (!loaded.ok()) return loaded.status();
  ServiceCheckpoint checkpoint = std::move(loaded).value();
  if (checkpoint.predicate != pred.name()) {
    return Status::FailedPrecondition(
        "checkpoint in " + options.data_dir + " was written under predicate " +
        checkpoint.predicate + ", not " + pred.name());
  }
  std::vector<WalRecord> tail;
  Result<WriteAheadLog> wal = WriteAheadLog::Open(
      WalFilePath(options.data_dir), options.wal_sync, &tail);
  if (!wal.ok()) return wal.status();
  return std::unique_ptr<SimilarityService>(new SimilarityService(
      std::move(checkpoint), std::move(tail), std::move(wal).value(), pred,
      std::move(options)));
}

void SimilarityService::InitDurabilityLocked() {
  Status status = EnsureDataDir(options_.data_dir);
  if (status.ok()) {
    Result<WriteAheadLog> wal = WriteAheadLog::Open(
        WalFilePath(options_.data_dir), options_.wal_sync, nullptr);
    if (wal.ok()) {
      wal_ = std::make_unique<WriteAheadLog>(std::move(wal).value());
      // Empty the log BEFORE the initial checkpoint: a crash in between
      // must never pair the new checkpoint with a previous incarnation's
      // tail (its seqs would replay as if they followed this corpus).
      status = wal_->Reset();
    } else {
      status = wal.status();
    }
  }
  if (status.ok()) status = SaveCheckpointLocked();
  if (!status.ok()) SetDurabilityErrorLocked(std::move(status));
}

void SimilarityService::AdoptMappedSegmentsLocked() {
  if (wal_ == nullptr || resident_budget_ == 0 || keep_raw_) return;
  bool swapped = false;
  for (SegmentChainEntry& entry : chain_) {
    if (entry.segment->mapping != nullptr) continue;
    if (persisted_segments_.count(entry.segment->id) == 0) continue;
    Result<std::shared_ptr<const CorpusSegment>> mapped =
        MapSegmentFile(options_.data_dir, entry.segment->id, num_shards_);
    if (!mapped.ok()) {
      // Mapping is an optimization: the owned segment keeps serving.
      SSJOIN_LOG_WARNING << "cannot map segment " << entry.segment->id
                         << ", serving from heap: "
                         << mapped.status().message();
      continue;
    }
    entry.segment = std::move(mapped).value();
    swapped = true;
  }
  if (swapped) {
    // Republish in place at the CURRENT epoch: the mapped views answer
    // byte-identically, so the swap must be invisible to readers — no
    // epoch bump, delta images and counts carried over unchanged.
    std::shared_ptr<const IndexSnapshot> prev = snapshot();
    auto snap = std::make_shared<IndexSnapshot>();
    snap->segments.reserve(chain_.size());
    for (const SegmentChainEntry& entry : chain_) {
      snap->segments.push_back(entry.segment);
    }
    snap->base.resize(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      snap->base[s] = BuildShardChainView(chain_, s);
    }
    snap->delta = prev->delta;
    snap->epoch = prev->epoch;
    snap->live_records = prev->live_records;
    snap->pending_tombstones = prev->pending_tombstones;
    {
      std::lock_guard<std::mutex> snapshot_lock(snapshot_mutex_);
      snapshot_ = std::move(snap);
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    uint64_t bytes = 0;
    for (const SegmentChainEntry& e : chain_) bytes += e.segment->approx_bytes;
    stats_.segment_bytes = bytes;
  }
  ApplyResidencyAdviceLocked();
}

void SimilarityService::ApplyResidencyAdviceLocked() {
  uint64_t mapped_segments = 0;
  uint64_t mapped_bytes = 0;
  uint64_t resident = 0;
  // Newest first: recent segments hold the hottest data (merges fold the
  // old tail, inserts land at the head), so they get the budget. The
  // advice is a hint either way — over-budget segments stay correct,
  // they just refault from disk.
  for (size_t i = chain_.size(); i-- > 0;) {
    const CorpusSegment& seg = *chain_[i].segment;
    if (seg.mapping == nullptr) continue;
    ++mapped_segments;
    mapped_bytes += seg.mapped_bytes;
    if (resident + seg.mapped_bytes <= resident_budget_) {
      resident += seg.mapped_bytes;
      seg.mapping->Advise(MappedFile::Advice::kWillNeed);
    } else {
      seg.mapping->Advise(MappedFile::Advice::kRandom);
      seg.mapping->Advise(MappedFile::Advice::kDontNeed);
    }
  }
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.mapped_segments = mapped_segments;
  stats_.mapped_bytes = mapped_bytes;
}

void SimilarityService::ApplyResidencyAdvice() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  ApplyResidencyAdviceLocked();
}

Status SimilarityService::SaveCheckpointLocked() {
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  CheckpointState state;
  state.epoch = snap->epoch;
  state.wal_seq = wal_next_seq_ - 1;
  state.predicate = pred_.name();
  state.shard_bounds = shard_bounds_;
  state.next_id = next_id_;
  state.next_segment_id = next_segment_id_;
  state.deleted = &deleted_;
  state.raw_corpus = keep_raw_ ? &corpus_ : nullptr;
  state.segments.reserve(chain_.size());
  for (const SegmentChainEntry& entry : chain_) {
    CheckpointState::SegmentRef ref;
    ref.segment = entry.segment.get();
    ref.dead.reserve(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      ref.dead.push_back(entry.dead[s] != nullptr ? entry.dead[s].get()
                                                  : nullptr);
    }
    ref.live = entry.live;
    state.segments.push_back(std::move(ref));
  }
  state.tombstones.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    state.tombstones.push_back(&tombstones_[s]);
  }
  GcStats gc;
  Status status = ssjoin::SaveCheckpoint(options_.data_dir, state,
                                         &persisted_segments_, &gc);
  if (gc.unlinked_segments > 0 || gc.unlink_failures > 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.gc_unlinked_segments += gc.unlinked_segments;
    stats_.gc_unlink_failures += gc.unlink_failures;
  }
  return status;
}

void SimilarityService::MaybeCheckpointLocked() {
  Status status = SaveCheckpointLocked();
  if (status.ok()) status = wal_->Reset();
  if (status.ok()) {
    // Every op up to here is covered by the checkpoint — including any
    // that a failed append left out of the log — so a latched durability
    // error is fully repaired.
    wal_failed_ = false;
    std::lock_guard<std::mutex> lock(durability_mutex_);
    durability_status_ = Status::OK();
  } else {
    SetDurabilityErrorLocked(std::move(status));
  }
}

void SimilarityService::SetDurabilityErrorLocked(Status status) {
  wal_failed_ = true;
  std::lock_guard<std::mutex> lock(durability_mutex_);
  durability_status_ = std::move(status);
}

Status SimilarityService::durability_status() const {
  std::lock_guard<std::mutex> lock(durability_mutex_);
  return durability_status_;
}

uint64_t SimilarityService::wal_sequence() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return wal_ ? wal_next_seq_ : 0;
}

bool SimilarityService::CompactLocked(bool count_compaction) {
  std::shared_ptr<const IndexSnapshot> prev = snapshot();  // null first time
  // A compaction with nothing pending — no memtable records, no
  // tombstones — is a counted no-op: the published snapshot already IS
  // the compacted state, so no shard is rebuilt and no snapshot is
  // published (in particular, cosine skips its full re-Prepare).
  if (prev != nullptr && memtable_total_ == 0 && tombstone_total_ == 0) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (count_compaction) ++stats_.compactions;
    return false;
  }
  const bool full_rebuild =
      prev == nullptr || !pred_.corpus_independent_scores();
  const double short_bound = pred_.ShortRecordNormBound();
  const uint64_t delta_records =
      static_cast<uint64_t>(memtable_total_ + tombstone_total_);

  std::vector<bool> dirty(num_shards_, false);
  uint64_t merged_count = 0;

  // Replaces the `count` newest chain entries with ONE freshly built
  // segment over their surviving records, in chain (= global id) order.
  // Dead masks fold away physically; the merged segment starts clean.
  // Retired segments become garbage as readers drain their snapshots,
  // and the next checkpoint unlinks their files.
  auto merge_trailing = [&](size_t count) {
    RecordSet merged;
    std::vector<RecordId> gids;
    for (size_t i = chain_.size() - count; i < chain_.size(); ++i) {
      const SegmentChainEntry& entry = chain_[i];
      const CorpusSegment& seg = *entry.segment;
      std::vector<bool> dead_local(seg.records->size(), false);
      for (size_t s = 0; s < num_shards_; ++s) {
        if (entry.dead[s] == nullptr) continue;
        for (RecordId part_local : *entry.dead[s]) {
          dead_local[seg.shards[s].member_ids[part_local]] = true;
        }
      }
      for (RecordId local = 0; local < seg.records->size(); ++local) {
        if (dead_local[local]) continue;
        // text_view, not text: merge inputs may be mapped segments whose
        // text blob lives in the mapping, not in owned strings.
        merged.Add(seg.records->record(local),
                   std::string(seg.records->text_view(local)));
        gids.push_back(seg.global_ids[local]);
      }
    }
    SegmentChainEntry entry;
    entry.segment =
        BuildCorpusSegment(next_segment_id_++, std::move(merged),
                           std::move(gids), shard_bounds_, num_shards_,
                           short_bound);
    entry.dead.assign(num_shards_, nullptr);
    entry.live = entry.segment->records->size();
    if (count > 1) merged_count += count;
    chain_.resize(chain_.size() - count);
    chain_.push_back(std::move(entry));
  };

  if (full_rebuild) {
    // Corpus-statistics predicates (TF-IDF cosine) must re-Prepare from
    // the RAW corpus — every record's scores change when the statistics
    // do — over a dense arena of the survivors only, so IDF excludes
    // deleted records and post-compaction answers coincide with a fresh
    // batch self-join over the survivors. The result is a chain of
    // exactly ONE segment: the documented full-rebuild exception.
    // (Construction takes this path for every predicate, folding the
    // initial corpus into segment 0.)
    RecordSet prepared;
    std::vector<RecordId> gids;
    gids.reserve(static_cast<size_t>(next_id_) - deleted_total_);
    for (RecordId id = 0; id < static_cast<RecordId>(next_id_); ++id) {
      if (!deleted_[id]) {
        prepared.Add(corpus_.record(id), corpus_.text(id));
        gids.push_back(id);
      }
    }
    pred_.Prepare(&prepared);
    chain_.clear();
    SegmentChainEntry entry;
    entry.segment =
        BuildCorpusSegment(next_segment_id_++, std::move(prepared),
                           std::move(gids), shard_bounds_, num_shards_,
                           short_bound);
    entry.dead.assign(num_shards_, nullptr);
    entry.live = entry.segment->records->size();
    chain_.push_back(std::move(entry));
    dirty.assign(num_shards_, true);
  } else {
    // The O(delta) incremental path: old segments are never rewritten.
    for (size_t s = 0; s < num_shards_; ++s) {
      if (!memtable_ids_[s].empty() || !tombstones_[s].empty()) {
        dirty[s] = true;
      }
    }
    // (a) Fold tombstones into per-segment copy-on-write dead masks.
    // A tombstoned gid is either chain-resident — locate its segment by
    // gid range (ranges are disjoint), its arena slot by gid, its part
    // slot by shard membership — or still memtable-resident, in which
    // case the survivor fold below simply drops it.
    std::vector<std::vector<std::vector<RecordId>>> fold(
        chain_.size(), std::vector<std::vector<RecordId>>(num_shards_));
    for (size_t s = 0; s < num_shards_; ++s) {
      for (RecordId gid : tombstones_[s]) {
        size_t ci = chain_.size();
        for (size_t i = 0; i < chain_.size(); ++i) {
          const std::vector<RecordId>& sgids = chain_[i].segment->global_ids;
          if (!sgids.empty() && sgids.front() <= gid && gid <= sgids.back()) {
            ci = i;
            break;
          }
        }
        if (ci == chain_.size()) continue;  // memtable-resident
        const CorpusSegment& seg = *chain_[ci].segment;
        auto git = std::lower_bound(seg.global_ids.begin(),
                                    seg.global_ids.end(), gid);
        SSJOIN_CHECK(git != seg.global_ids.end() && *git == gid);
        const RecordId local =
            static_cast<RecordId>(git - seg.global_ids.begin());
        const SegmentShardPart& part = seg.shards[s];
        auto mit = std::lower_bound(part.member_ids.begin(),
                                    part.member_ids.end(), local);
        SSJOIN_CHECK(mit != part.member_ids.end() && *mit == local);
        fold[ci][s].push_back(
            static_cast<RecordId>(mit - part.member_ids.begin()));
      }
    }
    for (size_t i = 0; i < chain_.size(); ++i) {
      for (size_t s = 0; s < num_shards_; ++s) {
        std::vector<RecordId>& add = fold[i][s];
        if (add.empty()) continue;
        // tombstones_[s] is gid-sorted and gid order within one segment
        // implies part-local order, so `add` is already sorted.
        auto mask = std::make_shared<std::vector<RecordId>>();
        if (chain_[i].dead[s] != nullptr) {
          const std::vector<RecordId>& old = *chain_[i].dead[s];
          mask->resize(old.size() + add.size());
          std::merge(old.begin(), old.end(), add.begin(), add.end(),
                     mask->begin());
        } else {
          *mask = add;
        }
        chain_[i].dead[s] = std::move(mask);
        chain_[i].live -= add.size();
      }
    }

    // (b) Fold the memtable survivors — across all shards, in global id
    // order, preserving the chain's disjoint increasing gid ranges —
    // into ONE new delta-sized segment.
    struct Pending {
      RecordId id;
      size_t shard;
      size_t local;
    };
    std::vector<Pending> pending;
    pending.reserve(memtable_total_);
    for (size_t s = 0; s < num_shards_; ++s) {
      for (size_t j = 0; j < memtable_ids_[s].size(); ++j) {
        if (!deleted_[memtable_ids_[s][j]]) {
          pending.push_back({memtable_ids_[s][j], s, j});
        }
      }
    }
    std::sort(pending.begin(), pending.end(),
              [](const Pending& a, const Pending& b) { return a.id < b.id; });
    if (!pending.empty()) {
      RecordSet folded;
      std::vector<RecordId> gids;
      gids.reserve(pending.size());
      for (const Pending& p : pending) {
        folded.Add(memtables_[p.shard].record(static_cast<RecordId>(p.local)),
                   memtables_[p.shard].text(static_cast<RecordId>(p.local)));
        gids.push_back(p.id);
      }
      SegmentChainEntry entry;
      entry.segment =
          BuildCorpusSegment(next_segment_id_++, std::move(folded),
                             std::move(gids), shard_bounds_, num_shards_,
                             short_bound);
      entry.dead.assign(num_shards_, nullptr);
      entry.live = entry.segment->records->size();
      chain_.push_back(std::move(entry));
    }

    // (c) Size-tiered merge cascade: merge the two newest segments while
    // the older one is no bigger than ratio times the newer, so chains
    // stay logarithmic in corpus size and merge cost amortizes to
    // O(corpus / ratio^depth). Ratio 0 collapses the whole chain to one
    // segment — and purges masked-dead bytes — every compaction: the
    // pre-segmented baseline.
    if (options_.segment_merge_ratio == 0) {
      bool masked = false;
      for (const SegmentChainEntry& e : chain_) {
        for (const std::shared_ptr<const std::vector<RecordId>>& d : e.dead) {
          masked = masked || d != nullptr;
        }
      }
      if (chain_.size() > 1 || masked) merge_trailing(chain_.size());
    } else {
      while (chain_.size() >= 2 &&
             chain_[chain_.size() - 2].live <=
                 options_.segment_merge_ratio * chain_.back().live) {
        merge_trailing(2);
      }
    }
  }

  // Out-of-core mode: spill the segments this compaction built to disk
  // and map them straight back, so the merged arenas leave the heap
  // before the snapshot is published — peak RSS stays O(delta) plus the
  // budget, never O(merged corpus). The files are recorded as persisted
  // immediately (the upcoming checkpoint references them without
  // rewriting; a crash before it leaves orphans the next load GCs).
  // Either step failing just keeps the owned segment serving.
  if (wal_ != nullptr && resident_budget_ > 0 && !keep_raw_) {
    for (SegmentChainEntry& entry : chain_) {
      if (entry.segment->mapping != nullptr) continue;
      const uint64_t segment_id = entry.segment->id;
      if (persisted_segments_.count(segment_id) == 0) {
        Status status = WriteSegmentFile(options_.data_dir, *entry.segment);
        if (!status.ok()) {
          SSJOIN_LOG_WARNING << "cannot write segment " << segment_id
                             << ", serving from heap: " << status.message();
          continue;
        }
        persisted_segments_.insert(segment_id);
      }
      Result<std::shared_ptr<const CorpusSegment>> mapped =
          MapSegmentFile(options_.data_dir, segment_id, num_shards_);
      if (!mapped.ok()) {
        SSJOIN_LOG_WARNING << "cannot map segment " << segment_id
                           << ", serving from heap: "
                           << mapped.status().message();
        continue;
      }
      entry.segment = std::move(mapped).value();
    }
    ApplyResidencyAdviceLocked();
  }

  // Rebuild every shard's chain view (cheap — one link per segment) and
  // fresh empty deltas, then publish the lot as one snapshot. Merges
  // above do NOT publish intermediates, so a compaction bumps the epoch
  // exactly once regardless of how far the cascade ran.
  std::vector<std::shared_ptr<const ShardedBaseTier>> base(num_shards_);
  std::vector<std::shared_ptr<const DeltaShard>> delta(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    base[s] = BuildShardChainView(chain_, s);
    memtables_[s] = RecordSet();
    memtable_ids_[s].clear();
    tombstones_[s].clear();
    delta[s] = BuildDeltaShard(RecordSet(), {}, short_bound);
  }
  memtable_total_ = 0;
  tombstone_total_ = 0;
  Publish(std::move(base), std::move(delta));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (count_compaction) ++stats_.compactions;
    for (size_t s = 0; s < num_shards_; ++s) {
      if (dirty[s]) ++stats_.shards[s].rebuilds;
    }
    stats_.segments = chain_.size();
    uint64_t bytes = 0;
    for (const SegmentChainEntry& e : chain_) bytes += e.segment->approx_bytes;
    stats_.segment_bytes = bytes;
    stats_.segments_merged += merged_count;
    stats_.last_compact_delta_records = delta_records;
  }
  // The new snapshot is a compaction point — memtables and tombstones
  // are empty — which is the only state a checkpoint is taken in: WAL
  // replay from it through the normal op paths is then deterministic.
  // Suppressed during replay (the WAL being replayed must not be reset
  // under our feet) and while the initial compaction runs before the
  // durability layer exists.
  if (wal_ != nullptr && !replaying_) MaybeCheckpointLocked();
  return true;
}

void SimilarityService::Publish(
    std::vector<std::shared_ptr<const ShardedBaseTier>> base,
    std::vector<std::shared_ptr<const DeltaShard>> delta) {
  auto snap = std::make_shared<IndexSnapshot>();
  snap->segments.reserve(chain_.size());
  for (const SegmentChainEntry& entry : chain_) {
    snap->segments.push_back(entry.segment);
  }
  snap->base = std::move(base);
  snap->delta = std::move(delta);
  snap->live_records = static_cast<size_t>(next_id_) - deleted_total_;
  snap->pending_tombstones = tombstone_total_;
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snap->epoch = snapshot_ == nullptr ? 0 : snapshot_->epoch + 1;
  snapshot_ = std::move(snap);
}

std::shared_ptr<const IndexSnapshot> SimilarityService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void SimilarityService::RunOverShards(size_t num_shards,
                                      FunctionRef<void(size_t)> fn) const {
  // Fan out only when it can help AND the pool is free: ParallelFor is
  // not reentrant, and a point query must never wait behind a batch —
  // the serial sweep produces the identical answer.
  if (num_shards > 1 && pool_->num_threads() > 1 && pool_mutex_.try_lock()) {
    std::lock_guard<std::mutex> lock(pool_mutex_, std::adopt_lock);
    pool_->ParallelFor(num_shards, /*chunk=*/1,
                       [&](size_t begin, size_t end, int /*worker*/) {
                         for (size_t s = begin; s < end; ++s) fn(s);
                       });
  } else {
    for (size_t s = 0; s < num_shards; ++s) fn(s);
  }
}

RecordId SimilarityService::Insert(RecordView record, std::string text) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return InsertLocked(record, std::move(text));
}

RecordId SimilarityService::InsertLocked(RecordView record, std::string text) {
  // WAL-first, and before `text` is moved anywhere: the logged payload is
  // the exact call input, so replay re-runs this function. After an
  // append failure the log is suspended (a torn frame must not get good
  // frames appended behind it) until a checkpoint repairs it.
  if (wal_ != nullptr && !replaying_ && !wal_failed_) {
    Status status = wal_->AppendInsert(wal_next_seq_, record, text);
    if (status.ok()) {
      ++wal_next_seq_;
    } else {
      SetDurabilityErrorLocked(std::move(status));
    }
  }
  std::shared_ptr<const IndexSnapshot> snap = snapshot();

  // Score the newcomer against the published base statistics, then grow
  // ONLY the routed shard's memtable and republish that one delta image.
  // The segment chain and the other shards' deltas are shared, not
  // copied.
  RecordSet staging;
  staging.Add(record, text);
  pred_.PrepareIncremental(snap->stats_reference(), &staging);
  const RecordId id = static_cast<RecordId>(next_id_++);
  if (keep_raw_) corpus_.Add(record, std::move(text));
  deleted_.push_back(false);
  const size_t shard = RouteToShard(staging.record(0), shard_bounds_);
  memtables_[shard].Add(staging.record(0), staging.text(0));
  memtable_ids_[shard].push_back(id);
  ++memtable_total_;
  std::vector<std::shared_ptr<const DeltaShard>> delta = snap->delta;
  // The shard's pending tombstones ride on its delta image — republish
  // them with the grown memtable so earlier deletes stay visible.
  delta[shard] = BuildDeltaShard(memtables_[shard], memtable_ids_[shard],
                                 pred_.ShortRecordNormBound(),
                                 tombstones_[shard]);
  Publish(snap->base, std::move(delta));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.inserts;
    ++stats_.shards[shard].inserts;
  }
  if (options_.memtable_limit > 0 &&
      memtable_total_ + tombstone_total_ >= options_.memtable_limit) {
    CompactLocked(/*count_compaction=*/true);
  }
  return id;
}

bool SimilarityService::Delete(RecordId id) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return DeleteLocked(id);
}

bool SimilarityService::DeleteLocked(RecordId id) {
  if (static_cast<uint64_t>(id) >= next_id_ || deleted_[id]) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.delete_misses;
    return false;
  }
  // Logged after the miss check (a miss mutates nothing, so replay needs
  // nothing) but before any mutation, same WAL-first rule as Insert.
  if (wal_ != nullptr && !replaying_ && !wal_failed_) {
    Status status = wal_->AppendDelete(wal_next_seq_, id);
    if (status.ok()) {
      ++wal_next_seq_;
    } else {
      SetDurabilityErrorLocked(std::move(status));
    }
  }
  deleted_[id] = true;
  ++deleted_total_;
  const size_t shard = RouteOfRecordLocked(id);
  std::vector<RecordId>& ts = tombstones_[shard];
  ts.insert(std::upper_bound(ts.begin(), ts.end(), id), id);
  ++tombstone_total_;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  // Republish only the owning shard's delta image with the grown
  // tombstone list; the segment chain and other deltas are shared
  // untouched.
  std::vector<std::shared_ptr<const DeltaShard>> delta = snap->delta;
  delta[shard] = BuildDeltaShard(memtables_[shard], memtable_ids_[shard],
                                 pred_.ShortRecordNormBound(), ts);
  Publish(snap->base, std::move(delta));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.deletes;
    ++stats_.shards[shard].deletes;
  }
  if (options_.memtable_limit > 0 &&
      memtable_total_ + tombstone_total_ >= options_.memtable_limit) {
    CompactLocked(/*count_compaction=*/true);
  }
  return true;
}

size_t SimilarityService::RouteOfRecordLocked(RecordId id) const {
  // Preparation assigns scores but never adds, drops or reorders tokens,
  // so the largest token — and hence the owning shard — of a record's
  // prepared image equals the raw record's, and routing may use
  // whichever image is at hand. Empty records route to shard 0 on every
  // path, same as Insert.
  if (keep_raw_) return RouteToShard(corpus_.record(id), shard_bounds_);
  for (size_t s = 0; s < num_shards_; ++s) {
    const std::vector<RecordId>& ids = memtable_ids_[s];
    if (std::binary_search(ids.begin(), ids.end(), id)) return s;
  }
  for (const SegmentChainEntry& entry : chain_) {
    const std::vector<RecordId>& gids = entry.segment->global_ids;
    if (gids.empty() || gids.front() > id || gids.back() < id) continue;
    auto it = std::lower_bound(gids.begin(), gids.end(), id);
    if (it != gids.end() && *it == id) {
      const RecordId local = static_cast<RecordId>(it - gids.begin());
      return RouteToShard(entry.segment->records->record(local),
                          shard_bounds_);
    }
  }
  // Unreachable for live ids: every live record is memtable- or
  // chain-resident.
  SSJOIN_DCHECK(false);
  return 0;
}

void SimilarityService::Compact() {
  std::lock_guard<std::mutex> lock(write_mutex_);
  // An explicit compaction with work pending bumps the epoch, and —
  // unlike the memtable-limit auto-compacts, which replay re-triggers by
  // itself — nothing in the insert/delete stream implies it. Log it
  // BEFORE compacting: if the checkpoint that normally follows fails,
  // replay still reproduces the epoch. (On success the checkpoint resets
  // the WAL and the frame simply vanishes, already covered.)
  if (wal_ != nullptr && !replaying_ && !wal_failed_ &&
      (memtable_total_ > 0 || tombstone_total_ > 0)) {
    Status status = wal_->AppendCompact(wal_next_seq_);
    if (status.ok()) {
      ++wal_next_seq_;
    } else {
      SetDurabilityErrorLocked(std::move(status));
    }
  }
  CompactLocked(/*count_compaction=*/true);
}

std::vector<QueryMatch> SimilarityService::Query(RecordView query,
                                                 std::string text) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged;
  staged.Add(query, std::move(text));
  pred_.PrepareIncremental(snap->stats_reference(), &staged);

  // One context and one result slot per shard: scheduling cannot change
  // the output or the stats attribution.
  std::vector<QueryContext> contexts(num_shards_);
  std::vector<std::vector<QueryMatch>> parts(num_shards_);
  RunOverShards(num_shards_, [&](size_t s) {
    parts[s] = LookupShard(pred_, options_, *snap, s, staged, 0, &contexts[s]);
  });
  std::vector<QueryMatch> out;
  probe_internal::MergeSortedParts(parts, IdLess, &out);
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.point_queries;
    stats_.results += out.size();
    stats_.EnsureShards(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      const QueryContext& ctx = contexts[s];
      stats_.merge += ctx.merge;
      for (size_t i = 0; i < ctx.shard_candidates.size(); ++i) {
        stats_.candidates += ctx.shard_candidates[i];
        stats_.shards[i].candidates += ctx.shard_candidates[i];
        stats_.shards[i].results += ctx.shard_results[i];
      }
    }
    stats_.query_latency_us.Record(micros);
  }
  return out;
}

std::vector<std::vector<QueryMatch>> SimilarityService::BatchQuery(
    const RecordSet& queries) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged = queries;
  pred_.PrepareIncremental(snap->stats_reference(), &staged);

  // Slot vector indexed by query id: scheduling order cannot change the
  // output, and per-worker contexts keep the hot path allocation-free.
  std::vector<std::vector<QueryMatch>> results(staged.size());
  std::vector<QueryContext> contexts(
      static_cast<size_t>(pool_->num_threads()));
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_->ParallelFor(
        staged.size(), /*chunk=*/1, [&](size_t begin, size_t end, int worker) {
          for (size_t i = begin; i < end; ++i) {
            results[i] = LookupAllShards(pred_, options_, *snap, staged,
                                         static_cast<RecordId>(i),
                                         &contexts[worker]);
          }
        });
  }
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batch_queries;
    stats_.batched_records += staged.size();
    stats_.EnsureShards(num_shards_);
    for (const QueryContext& ctx : contexts) {
      stats_.merge += ctx.merge;
      for (size_t i = 0; i < ctx.shard_candidates.size(); ++i) {
        stats_.candidates += ctx.shard_candidates[i];
        stats_.shards[i].candidates += ctx.shard_candidates[i];
        stats_.shards[i].results += ctx.shard_results[i];
      }
    }
    for (const std::vector<QueryMatch>& r : results) {
      stats_.results += r.size();
    }
    stats_.batch_latency_us.Record(micros);
  }
  return results;
}

std::vector<QueryMatch> SimilarityService::QueryTopK(RecordView query,
                                                     size_t k,
                                                     std::string text) const {
  Timer timer;
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  RecordSet staged;
  staged.Add(query, std::move(text));
  pred_.PrepareIncremental(snap->stats_reference(), &staged);
  const RecordView probe = staged.record(0);

  std::vector<QueryContext> contexts(num_shards_);
  std::vector<std::vector<QueryMatch>> parts(num_shards_);
  RunOverShards(num_shards_, [&](size_t s) {
    SweepShardOverlaps(*snap, s, probe, &contexts[s], &parts[s]);
  });
  std::vector<QueryMatch> out;
  for (const std::vector<QueryMatch>& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  // Shards partition the record space, so ids are unique and the
  // (score desc, id asc) order — hence the truncated top-k — is
  // identical for every shard count.
  std::sort(out.begin(), out.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (out.size() > k) out.resize(k);
  uint64_t micros = ElapsedMicros(timer);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.topk_queries;
    stats_.results += out.size();
    stats_.EnsureShards(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      const QueryContext& ctx = contexts[s];
      stats_.merge += ctx.merge;
      for (size_t i = 0; i < ctx.shard_candidates.size(); ++i) {
        stats_.candidates += ctx.shard_candidates[i];
        stats_.shards[i].candidates += ctx.shard_candidates[i];
      }
    }
    stats_.query_latency_us.Record(micros);
  }
  return out;
}

ServiceStats SimilarityService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::string SimilarityService::StatsJson() const {
  std::shared_ptr<const IndexSnapshot> snap = snapshot();
  ServiceStats copy = stats();
  char header[256];
  std::snprintf(header, sizeof(header),
                "{\"epoch\": %llu, \"num_shards\": %llu, "
                "\"live_records\": %llu, \"base_records\": %llu, "
                "\"memtable_records\": %llu, \"tombstones\": %llu, "
                "\"stats\": ",
                static_cast<unsigned long long>(snap->epoch),
                static_cast<unsigned long long>(snap->num_shards()),
                static_cast<unsigned long long>(snap->size()),
                static_cast<unsigned long long>(snap->base_size()),
                static_cast<unsigned long long>(snap->delta_size()),
                static_cast<unsigned long long>(snap->pending_tombstones));
  return std::string(header) + copy.ToJson() + "}";
}

}  // namespace ssjoin
