#ifndef SSJOIN_SERVE_WAL_H_
#define SSJOIN_SERVE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record_view.h"
#include "util/status.h"

namespace ssjoin {

/// When WAL appends reach stable storage. See DESIGN.md "Durability &
/// recovery".
enum class WalSyncPolicy {
  /// fdatasync after every appended record: an acknowledged Insert/Delete
  /// survives kill -9 AND power loss. The durable default.
  kAlways,
  /// Leave appends in the page cache: an acknowledged op survives process
  /// death (the kernel still owns the bytes) but the tail since the last
  /// checkpoint may be lost on power failure. The throughput option.
  kNever,
};

/// One logical operation recovered from (or destined for) the log. The
/// payload captures the exact INPUT of the service call — replay feeds it
/// back through the normal Insert/Delete/Compact paths, which are
/// deterministic, so recovery reproduces the pre-crash state byte for
/// byte rather than patching structures directly.
struct WalRecord {
  enum Kind : uint8_t {
    kInsert = 1,   // tokens/scores/norm/text_length/text
    kDelete = 2,   // id
    kCompact = 3,  // explicit Compact() with work pending (no payload)
  };

  Kind kind = kInsert;
  /// Strictly increasing per logical op across the service's lifetime;
  /// the checkpoint stores the last seq it covers, so replay skips frames
  /// a crash left behind from before the checkpoint.
  uint64_t seq = 0;

  // kInsert payload: the raw (pre-preparation) record plus its text.
  std::vector<TokenId> tokens;
  std::vector<double> scores;
  double norm = 0;
  uint32_t text_length = 0;
  std::string text;

  // kDelete payload.
  RecordId id = 0;

  /// View over the kInsert payload (valid while this WalRecord lives).
  RecordView record_view() const {
    return RecordView(tokens.data(), scores.data(),
                      static_cast<uint32_t>(tokens.size()), norm, text_length);
  }
};

/// Append-only, CRC-framed operation log for SimilarityService.
///
/// File layout: 4-byte magic "SSWL", fixed32 version, then frames. Each
/// frame is fixed32 payload length + fixed32 CRC32(payload) + payload;
/// the payload is varint64 seq, one kind byte, then the kind-specific
/// fields (index_io framing helpers throughout). A crash mid-append
/// leaves a torn final frame whose length or CRC cannot check out; Open
/// detects it, truncates the file back to the last whole frame and
/// reports only the intact prefix — a torn record is dropped, never
/// replayed.
///
/// Not internally synchronized: the service calls Append* under its
/// write mutex.
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`, validates every frame,
  /// truncates a torn tail, appends-positions the file, and fills
  /// `replay` (may be null) with the intact records in log order.
  static Result<WriteAheadLog> Open(const std::string& path,
                                    WalSyncPolicy sync,
                                    std::vector<WalRecord>* replay);

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  Status AppendInsert(uint64_t seq, RecordView record, const std::string& text);
  Status AppendDelete(uint64_t seq, RecordId id);
  Status AppendCompact(uint64_t seq);

  /// Empties the log back to a bare header (atomically: fresh file
  /// renamed over the old one, directory fsynced) and re-opens it for
  /// append. Called after a successful checkpoint — every logged op is
  /// now covered by the checkpoint, so the tail restarts empty.
  Status Reset();

  /// Largest seq ever appended to or recovered from this log (0 if none).
  uint64_t last_seq() const { return last_seq_; }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, WalSyncPolicy sync, int fd,
                uint64_t last_seq)
      : path_(std::move(path)), sync_(sync), fd_(fd), last_seq_(last_seq) {}

  Status AppendFrame(const std::string& payload, uint64_t seq);

  std::string path_;
  WalSyncPolicy sync_ = WalSyncPolicy::kAlways;
  int fd_ = -1;
  uint64_t last_seq_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_WAL_H_
