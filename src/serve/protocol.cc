#include "serve/protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ssjoin {

bool ParseUint64Text(std::string_view text, uint64_t* out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  *out = value;
  return true;
}

std::string TrimCopy(std::string_view text) {
  size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return "";
  size_t end = text.find_last_not_of(" \t\r");
  return std::string(text.substr(begin, end - begin + 1));
}

namespace {

Request Malformed(std::string error) {
  Request request;
  request.type = RequestType::kMalformed;
  request.error = std::move(error);
  return request;
}

Request ParseTopK(std::string_view line) {
  Request request;
  request.type = RequestType::kTopK;
  // Skip "?k", then split "<k> <text>" on the first whitespace run.
  std::string_view rest = line.substr(2);
  size_t k_begin = rest.find_first_not_of(" \t\r");
  if (k_begin == std::string_view::npos) {
    return Malformed("malformed top-k '" + std::string(line) +
                     "' (want '?k <k> <text>')");
  }
  size_t k_end = rest.find_first_of(" \t\r", k_begin);
  std::string_view k_text = rest.substr(
      k_begin, (k_end == std::string_view::npos ? rest.size() : k_end) -
                   k_begin);
  if (!ParseUint64Text(k_text, &request.k) || request.k == 0) {
    return Malformed("malformed top-k '" + std::string(line) +
                     "' (want '?k <k> <text>')");
  }
  request.text =
      k_end == std::string_view::npos ? "" : TrimCopy(rest.substr(k_end));
  return request;
}

}  // namespace

Request ParseRequest(std::string_view line) {
  Request request;
  const std::string trimmed = TrimCopy(line);
  if (trimmed.empty()) return request;  // kNone
  // Like the REPL, the sigil is the line's FIRST byte: a line that
  // leads with whitespace is a bare query even if a sigil follows.
  const char op = line[0];
  if (op == '!') {
    const std::string arg = TrimCopy(line.substr(1));
    if (!arg.empty() && arg != "compact") {
      return Malformed("unknown command '" + std::string(line) +
                       "' (want '! compact')");
    }
    request.type = RequestType::kCompact;
    return request;
  }
  if (op == '?') {
    if (line.size() >= 2 && line[1] == 'k' &&
        (line.size() == 2 || line[2] == ' ' || line[2] == '\t')) {
      return ParseTopK(line);
    }
    const std::string arg = TrimCopy(line.substr(1));
    if (arg.empty() || arg == "stats") {
      request.type = RequestType::kStats;
      return request;
    }
    request.type = RequestType::kQuery;
    request.text = arg;
    return request;
  }
  if (op == '+') {
    request.type = RequestType::kInsert;
    request.text = TrimCopy(line.substr(1));
    return request;
  }
  if (op == '-') {
    const std::string arg = TrimCopy(line.substr(1));
    uint64_t id = 0;
    if (!ParseUint64Text(arg, &id) || id > UINT32_MAX) {
      return Malformed("malformed delete '" + std::string(line) +
                       "' (want '- <id>')");
    }
    request.type = RequestType::kDelete;
    request.id = static_cast<RecordId>(id);
    request.text = arg;
    return request;
  }
  if (trimmed == "stats") {
    request.type = RequestType::kStats;
    return request;
  }
  request.type = RequestType::kQuery;
  request.text = std::string(line);  // bare queries keep the raw line
  return request;
}

std::string FormatMatches(const std::vector<QueryMatch>& matches) {
  std::string out;
  char buffer[64];
  for (const QueryMatch& m : matches) {
    int n = std::snprintf(buffer, sizeof(buffer), "%u\t%.6g\n", m.id,
                          m.score);
    out.append(buffer, static_cast<size_t>(n));
  }
  return out;
}

std::string FormatInserted(RecordId id) {
  char buffer[32];
  int n = std::snprintf(buffer, sizeof(buffer), "inserted %u\n", id);
  return std::string(buffer, static_cast<size_t>(n));
}

std::string FormatDeleted(RecordId id) {
  char buffer[32];
  int n = std::snprintf(buffer, sizeof(buffer), "deleted %llu\n",
                        static_cast<unsigned long long>(id));
  return std::string(buffer, static_cast<size_t>(n));
}

std::string FormatCompacted(size_t records, uint64_t epoch) {
  char buffer[64];
  int n = std::snprintf(buffer, sizeof(buffer),
                        "compacted; %zu records, epoch %llu\n", records,
                        static_cast<unsigned long long>(epoch));
  return std::string(buffer, static_cast<size_t>(n));
}

ServiceDispatcher::ServiceDispatcher(SimilarityService* service,
                                     TokenizeFn tokenize, size_t default_topk,
                                     HookFn before_insert,
                                     StatsDecoratorFn stats_decorator)
    : service_(service),
      tokenize_(std::move(tokenize)),
      default_topk_(default_topk),
      before_insert_(std::move(before_insert)),
      stats_decorator_(std::move(stats_decorator)) {}

Response ServiceDispatcher::ExecuteQuery(const Request& request) const {
  RecordSet staged = tokenize_({request.text});
  std::vector<QueryMatch> matches;
  if (request.type == RequestType::kTopK) {
    matches = service_->QueryTopK(staged.record(0), request.k,
                                  staged.text(0));
  } else if (default_topk_ > 0) {
    matches =
        service_->QueryTopK(staged.record(0), default_topk_, staged.text(0));
  } else {
    matches = service_->Query(staged.record(0), staged.text(0));
  }
  return Response{true, FormatMatches(matches)};
}

Response ServiceDispatcher::Execute(const Request& request) const {
  switch (request.type) {
    case RequestType::kNone:
      return Response{true, ""};
    case RequestType::kQuery:
    case RequestType::kTopK:
      return ExecuteQuery(request);
    case RequestType::kInsert: {
      RecordSet staged = tokenize_({request.text});
      if (before_insert_) before_insert_();
      RecordId id = service_->Insert(staged.record(0), staged.text(0));
      return Response{true, FormatInserted(id)};
    }
    case RequestType::kDelete:
      if (service_->Delete(request.id)) {
        return Response{true, FormatDeleted(request.id)};
      }
      return Response{false, "no live record with id " + request.text};
    case RequestType::kCompact: {
      service_->Compact();
      return Response{true,
                      FormatCompacted(service_->size(), service_->epoch())};
    }
    case RequestType::kStats: {
      std::string json = service_->StatsJson();
      if (stats_decorator_) json = stats_decorator_(std::move(json));
      json.push_back('\n');
      return Response{true, std::move(json)};
    }
    case RequestType::kMalformed:
      return Response{false, request.error};
  }
  return Response{false, "internal: unhandled request type"};
}

std::vector<Response> ServiceDispatcher::ExecuteBatch(
    const std::vector<Request>& requests) const {
  std::vector<Response> responses;
  responses.reserve(requests.size());
  size_t i = 0;
  while (i < requests.size()) {
    // Find the maximal run of plain queries starting here; runs of two
    // or more ride the BatchQuery ThreadPool fan-out.
    size_t run = i;
    while (run < requests.size() &&
           requests[run].type == RequestType::kQuery) {
      ++run;
    }
    if (run - i >= 2 && default_topk_ == 0) {
      std::vector<std::string> lines;
      lines.reserve(run - i);
      for (size_t q = i; q < run; ++q) lines.push_back(requests[q].text);
      RecordSet staged = tokenize_(lines);
      std::vector<std::vector<QueryMatch>> results =
          service_->BatchQuery(staged);
      for (std::vector<QueryMatch>& matches : results) {
        responses.push_back(Response{true, FormatMatches(matches)});
      }
      i = run;
      continue;
    }
    responses.push_back(Execute(requests[i]));
    ++i;
  }
  return responses;
}

}  // namespace ssjoin
