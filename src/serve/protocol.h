#ifndef SSJOIN_SERVE_PROTOCOL_H_
#define SSJOIN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "data/record_set.h"
#include "serve/similarity_service.h"

namespace ssjoin {

/// The serving command grammar, shared verbatim by the ssjoin_serve REPL
/// and the ssjoin_server network front door so the two paths cannot
/// drift. One request per line:
///
///   + <text>        insert the record (empty text is legal)
///   - <id>          delete record <id>
///   ! [compact]     fold the memtable into the base index
///   ?k <k> <text>   rank the k nearest records (threshold ignored)
///   ? [stats]       print the service stats JSON
///   ? <text>        look up <text> (explicit query form)
///   stats           print the service stats JSON
///   <text>          look up the record (bare query form)
///
/// The bare word "stats" is the stats command in both paths — a query for
/// the literal text "stats" must use the explicit `? ...` form with some
/// other spelling, a deliberate corner traded for one shared grammar.
/// Parse errors carry REPL-identical ERR details; execution errors (an
/// unknown delete id) are produced by the dispatcher with the same
/// strings the REPL has always printed.
enum class RequestType : uint8_t {
  kNone,       // blank line: no-op, produces no response
  kQuery,      // text lookup (threshold or the session's default top-k)
  kTopK,       // explicit `?k <k> <text>` ranked lookup
  kInsert,     // `+ <text>`
  kDelete,     // `- <id>`
  kCompact,    // `!` / `! compact`
  kStats,      // `stats` / `?` / `? stats`
  kMalformed,  // unparseable; `error` holds the ERR detail
};

struct Request {
  RequestType type = RequestType::kNone;
  /// Query/insert text (trimmed for the sigil forms, the raw line for a
  /// bare query, exactly as the REPL has always tokenized them). For
  /// kDelete this is the id as the client spelled it, so miss errors can
  /// echo it back unchanged.
  std::string text;
  RecordId id = 0;  // kDelete target
  uint64_t k = 0;   // kTopK rank count
  /// kMalformed detail, without the "ERR " prefix.
  std::string error;
};

/// Strict decimal uint64 parse (no sign, no trailing junk).
bool ParseUint64Text(std::string_view text, uint64_t* out);

/// Strips leading/trailing spaces, tabs and carriage returns.
std::string TrimCopy(std::string_view text);

/// Parses one request line (without its newline terminator).
Request ParseRequest(std::string_view line);

/// The exact bytes the REPL prints for a match list: "id\tscore\n" per
/// match with %.6g scores. The network path ships the same bytes as an OK
/// frame payload, which is what makes "byte-identical over the wire"
/// testable.
std::string FormatMatches(const std::vector<QueryMatch>& matches);
std::string FormatInserted(RecordId id);
std::string FormatDeleted(RecordId id);
std::string FormatCompacted(size_t records, uint64_t epoch);

/// One executed request: `payload` is the exact success output (what the
/// REPL prints to stdout), or the ERR detail when !ok.
struct Response {
  bool ok = true;
  std::string payload;
};

/// Executes parsed Requests against a SimilarityService — the
/// session/dispatcher half of the protocol split: parsing (above) knows
/// nothing about services, and this knows nothing about line framing or
/// sockets, so the REPL and every network worker drive the same code.
///
/// Thread-safe to the extent its collaborators are: SimilarityService is
/// internally synchronized, and the tokenize/before-insert callbacks are
/// expected to carry their own lock when shared across connections (the
/// token dictionary grows on new tokens).
class ServiceDispatcher {
 public:
  /// Builds one RecordSet from the given lines with the session's shared
  /// (growing) token dictionary — BuildWordCorpus/BuildQGramCorpus behind
  /// a tool-owned tokenizer.
  using TokenizeFn = std::function<RecordSet(const std::vector<std::string>&)>;
  /// Runs after tokenization and before SimilarityService::Insert — the
  /// REPL uses it to sync the token-dictionary sidecar ahead of the WAL.
  using HookFn = std::function<void()>;
  /// Decorates the stats JSON (the network server splices its `net`
  /// counter section in here); identity when empty.
  using StatsDecoratorFn = std::function<std::string(std::string)>;

  /// `default_topk` > 0 makes kQuery rank like the REPL's --topk flag.
  ServiceDispatcher(SimilarityService* service, TokenizeFn tokenize,
                    size_t default_topk = 0, HookFn before_insert = {},
                    StatsDecoratorFn stats_decorator = {});

  /// Executes one request. kNone yields an empty OK response.
  Response Execute(const Request& request) const;

  /// Executes a pipelined run of requests in order, one response per
  /// request. Maximal runs of two or more consecutive kQuery requests are
  /// answered through SimilarityService::BatchQuery (the ThreadPool
  /// fan-out path) — documented byte-identical to per-record Query, so
  /// responses do not depend on how the client batched its pipeline.
  std::vector<Response> ExecuteBatch(
      const std::vector<Request>& requests) const;

 private:
  Response ExecuteQuery(const Request& request) const;

  SimilarityService* service_;
  TokenizeFn tokenize_;
  size_t default_topk_;
  HookFn before_insert_;
  StatsDecoratorFn stats_decorator_;
};

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_PROTOCOL_H_
