#ifndef SSJOIN_SERVE_SNAPSHOT_H_
#define SSJOIN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/record_set.h"
#include "index/dynamic_index.h"
#include "index/inverted_index.h"

namespace ssjoin {

class Predicate;

/// The compacted tier of the serving layer: the full corpus as of the
/// last compaction, prepared by the service predicate and indexed in the
/// flat CSR InvertedIndex (the batch-join index, reused unchanged).
/// Immutable after construction — only ever shared as
/// shared_ptr<const BaseTier>.
struct BaseTier {
  RecordSet records;
  InvertedIndex index;
  /// Records with norm below the predicate's ShortRecordNormBound, which
  /// can match a short probe without sharing any token (edit distance);
  /// queries brute-force this side pool like the batch drivers do.
  std::vector<RecordId> short_ids;
};

/// The memtable image: records inserted since the last compaction,
/// scored against the base corpus statistics (PrepareIncremental) and
/// indexed in a DynamicIndex under their LOCAL ids — global id =
/// base records + local id. Rebuilt copy-on-write on every insert
/// (bounded by the service's memtable limit), so published images are
/// immutable just like the base.
struct DeltaTier {
  RecordSet records;
  DynamicIndex index;
  std::vector<RecordId> short_ids;  // local ids
};

/// One epoch's immutable view of the service corpus: a shared base, a
/// delta image and the epoch number. Readers copy the owning shared_ptr
/// under the service's snapshot mutex and then run entirely lock-free;
/// writers publish a NEW snapshot instead of ever mutating one, so a
/// query keeps a consistent view for as long as it holds the pointer,
/// across any number of concurrent inserts and compactions.
struct IndexSnapshot {
  std::shared_ptr<const BaseTier> base;    // never null
  std::shared_ptr<const DeltaTier> delta;  // never null; may be empty
  uint64_t epoch = 0;

  size_t base_size() const { return base->records.size(); }
  size_t delta_size() const { return delta->records.size(); }
  size_t size() const { return base_size() + delta_size(); }
};

/// Builds a compacted base tier: prepares `records` with the predicate
/// (full batch Prepare — corpus statistics recomputed over everything),
/// plans the CSR index from the corpus document frequencies and inserts
/// every record. This is exactly the index a batch self-join would
/// build, which is what makes query answers equivalent to join output.
std::shared_ptr<const BaseTier> BuildBaseTier(RecordSet records,
                                              const Predicate& pred);

/// Builds a delta image over already-prepared memtable records.
/// `short_norm_bound` is the predicate's ShortRecordNormBound (0 for
/// predicates without a short-record fallback).
std::shared_ptr<const DeltaTier> BuildDeltaTier(RecordSet records,
                                                double short_norm_bound);

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SNAPSHOT_H_
