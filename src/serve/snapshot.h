#ifndef SSJOIN_SERVE_SNAPSHOT_H_
#define SSJOIN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/record_set.h"
#include "data/record_view.h"
#include "index/dynamic_index.h"
#include "index/inverted_index.h"

namespace ssjoin {

class Predicate;

/// One token-range shard of the compacted tier. A shard owns the records
/// whose routing token falls in its contiguous token range (see
/// RouteToShard) — complete records, not split posting runs, so each
/// shard can be probed independently and the union of per-shard answers
/// is exactly the single-index answer. Immutable after construction and
/// shared across snapshots until a compaction finds its memtable or
/// tombstone set dirty.
struct ShardedBaseTier {
  /// Backing positions of the shard's members in the snapshot's
  /// base_records arena, strictly increasing. The index speaks LOCAL ids
  /// (positions in this vector): backing record = member_ids[local].
  /// For corpus-independent predicates the arena keeps every record (dead
  /// entries stay in place between full rebuilds), so positions coincide
  /// with global corpus ids; cosine full rebuilds compact the arena to
  /// survivors, so positions and global ids diverge there.
  std::vector<RecordId> member_ids;
  /// Global corpus ids of the members: global id = global_ids[local].
  /// This is the id callers see in QueryMatch — stable across deletes and
  /// compactions, never reused.
  std::vector<RecordId> global_ids;
  /// Flat CSR index over the members under local ids, extent-carved by
  /// InvertedIndex::PlanFromRecordsSubset (survivor-subset planning: a
  /// tombstone-compacted shard plans only the surviving members' posting
  /// mass). Records themselves live in the snapshot's shared
  /// base_records — shards never copy the corpus.
  InvertedIndex index;
  /// Local ids of members with norm below the predicate's
  /// ShortRecordNormBound (the edit-distance brute-force side pool).
  std::vector<RecordId> short_ids;
};

/// One shard's memtable image: records inserted since the last compaction
/// whose routing token landed in this shard, scored against the base
/// corpus statistics (PrepareIncremental) and indexed in a DynamicIndex
/// under local ids. Rebuilt copy-on-write on every insert routed here —
/// other shards' images are shared untouched, so per-insert work is
/// O(this shard's memtable), not O(total memtable).
struct DeltaShard {
  RecordSet records;                 // prepared, with texts
  std::vector<RecordId> global_ids;  // local -> global corpus id, increasing
  DynamicIndex index;                // local ids; tombstoned locals skipped
  std::vector<RecordId> short_ids;   // local ids; tombstoned locals skipped
  /// Global ids tombstoned in this shard since its last compaction,
  /// sorted increasing. Covers both base members (filtered at probe time
  /// against this list) and memtable residents (never indexed above).
  /// Published with the delta image so a Delete is visible to every query
  /// issued after it returns; Compact() drops the ids physically and
  /// empties the list.
  std::vector<RecordId> tombstones;
};

/// One epoch's immutable view of the service corpus: the shared prepared
/// corpus, one base and one delta shard per token range, and the epoch
/// number. Readers copy the owning shared_ptr under the service's
/// snapshot mutex and then run entirely lock-free; writers publish a NEW
/// snapshot instead of ever mutating one, so a query keeps a consistent
/// view for as long as it holds the pointer, across any number of
/// concurrent inserts and compactions.
struct IndexSnapshot {
  /// The prepared backing corpus as of the last compaction. Base shards
  /// reference it by position (ShardedBaseTier::member_ids), and it is
  /// the PrepareIncremental reference for query and insert staging — so
  /// for corpus-statistics predicates its statistics must cover exactly
  /// the surviving records (cosine full rebuilds compact it to
  /// survivors; corpus-independent predicates keep dead entries in place
  /// because their scores never read corpus statistics).
  std::shared_ptr<const RecordSet> base_records;  // never null
  std::vector<std::shared_ptr<const ShardedBaseTier>> base;  // per shard
  std::vector<std::shared_ptr<const DeltaShard>> delta;      // per shard
  uint64_t epoch = 0;
  /// Surviving (non-deleted) records visible to queries, base + delta.
  size_t live_records = 0;
  /// Tombstones awaiting physical drop at the next compaction.
  size_t pending_tombstones = 0;

  size_t num_shards() const { return base.size(); }
  /// Backing-arena size; >= live base records (dead entries linger in the
  /// arena between full rebuilds for corpus-independent predicates).
  size_t base_size() const { return base_records->size(); }
  /// Memtable records awaiting compaction (tombstoned ones included —
  /// they still occupy memtable slots until folded away).
  size_t delta_size() const {
    size_t n = 0;
    for (const std::shared_ptr<const DeltaShard>& d : delta) {
      n += d->records.size();
    }
    return n;
  }
  /// Records a query can answer with: live base + live delta records.
  size_t size() const { return live_records; }
};

/// Carves the vocabulary into `num_shards` contiguous token ranges
/// balanced by the given per-token mass, returning the num_shards - 1
/// exclusive upper bounds. Tokens beyond the planning vocabulary fall
/// into the last shard. Empty for num_shards <= 1.
std::vector<TokenId> ComputeShardBounds(const std::vector<uint64_t>& mass,
                                        size_t num_shards);

/// Per-token routing mass of a record set: each record contributes its
/// token count at its routing token (see RouteToShard). Feeding this to
/// ComputeShardBounds balances the indexed posting volume across shards.
/// (Balancing on raw document frequencies would not: the routing token is
/// one specific token per record, so the bounds must weigh the mass where
/// records actually land.)
std::vector<uint64_t> RoutingMassHistogram(const RecordSet& records);

/// The routing rule: a record belongs to the shard whose token range
/// contains its LARGEST token (tokens are strictly increasing within a
/// record, so that is the last one). With frequency-ordered token ids the
/// maximum is a record's rarest token, which spreads records far more
/// evenly than the minimum — the min is almost always a stopword-like
/// token near id 0, which would funnel the whole corpus into one shard.
/// Empty records go to shard 0. Any deterministic key preserves
/// correctness; the choice only affects balance.
size_t RouteToShard(RecordView record, const std::vector<TokenId>& bounds);

/// Builds one compacted shard over the already-prepared `corpus`:
/// extent-carves the CSR index from the member subset's document
/// frequencies and inserts every member under its local id. `member_ids`
/// are positions into `corpus`, `global_ids` the parallel corpus ids
/// (pass the same vector twice when positions ARE global ids — the
/// corpus-independent layout). Preparation is NOT run here — the service
/// prepares the corpus once globally, so corpus-statistics weights are
/// identical across shard counts.
std::shared_ptr<const ShardedBaseTier> BuildShardBase(
    const RecordSet& corpus, std::vector<RecordId> member_ids,
    std::vector<RecordId> global_ids, double short_norm_bound);

/// Builds one shard's delta image over already-prepared memtable records.
/// `short_norm_bound` is the predicate's ShortRecordNormBound (0 for
/// predicates without a short-record fallback). `tombstones` (sorted
/// global ids) is copied into the image; memtable records whose global id
/// is tombstoned are physically excluded from the index and short pool —
/// only their record slots remain until compaction.
std::shared_ptr<const DeltaShard> BuildDeltaShard(
    RecordSet records, std::vector<RecordId> global_ids,
    double short_norm_bound, std::vector<RecordId> tombstones = {});

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SNAPSHOT_H_
