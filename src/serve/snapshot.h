#ifndef SSJOIN_SERVE_SNAPSHOT_H_
#define SSJOIN_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/record_set.h"
#include "data/record_view.h"
#include "data/segmented_corpus.h"
#include "index/dynamic_index.h"
#include "index/inverted_index.h"
#include "util/mmap_file.h"

namespace ssjoin {

class Predicate;

/// One token-range shard's slice of ONE corpus segment: the segment
/// members whose routing token falls in the shard's range, under
/// part-local ids. The index is a complete CSR inverted index over just
/// these members, carved by InvertedIndex::PlanFromRecordsSubset, so a
/// shard probe walks one small index per segment instead of one big one.
struct SegmentShardPart {
  /// Segment-local positions of the part's members in the owning
  /// segment's records arena, strictly increasing. The index speaks
  /// PART-local ids (positions in this vector).
  std::vector<RecordId> member_ids;
  /// Global corpus ids of the members, parallel to member_ids (derived
  /// from the segment's global_ids table; stable, never reused).
  std::vector<RecordId> global_ids;
  /// Flat CSR index over the part members under part-local ids.
  InvertedIndex index;
  /// Part-local ids of members with norm below the predicate's
  /// ShortRecordNormBound (the edit-distance brute-force side pool).
  std::vector<RecordId> short_ids;
};

/// One immutable link of the serving tier's segment chain: a prepared
/// CSR record arena covering one compaction delta (or a merge of
/// several), its global-id table, and one SegmentShardPart per
/// token-range shard. Segments are built once, shared by shared_ptr
/// across every later snapshot, and never mutated — compaction APPENDS a
/// new segment instead of rewriting the corpus, which is what makes
/// steady-state compaction O(delta). Deletes are masked per snapshot
/// (ShardChainLink::dead), not carved out of the segment.
struct CorpusSegment {
  /// Durable identity: names the on-disk segment-<id>.sseg file and is
  /// unique across the lifetime of a service data directory.
  uint64_t id = 0;
  /// The prepared records (scores installed, texts retained). Shared so
  /// snapshots, SegmentedCorpus views and checkpoints alias it.
  std::shared_ptr<const RecordSet> records;  // never null
  /// Global corpus id per segment-local position, strictly increasing.
  /// Chain invariant: segments hold DISJOINT, increasing global-id
  /// ranges (a folded memtable's ids exceed every already-folded id, and
  /// merges only coalesce adjacent segments), so gid -> segment is a
  /// range binary search.
  std::vector<RecordId> global_ids;
  /// One part per token-range shard (size = the service's shard count).
  std::vector<SegmentShardPart> shards;
  /// Approximate in-memory bytes (arena + postings), computed at build
  /// time so stats never rescan the chain. For a mapped segment this
  /// counts only the heap-resident tables — the mapped body is page
  /// cache, accounted by mapped_bytes instead.
  uint64_t approx_bytes = 0;
  /// Non-null iff this segment serves from a mapped `.sseg` body (the
  /// out-of-core base tier): records/shard indexes are views into this
  /// mapping, and the residency-budget policy issues madvise hints
  /// through it. Segments built in memory (memtable folds before their
  /// first checkpoint, cosine, non-durable mode) leave it null.
  std::shared_ptr<const MappedFile> mapping;
  /// Size of the mapped file (0 when mapping is null).
  uint64_t mapped_bytes = 0;
};

/// One shard's view of one segment inside a published snapshot: the part
/// to probe, the offset that places its part-local ids into the shard's
/// chain-wide id space, and the copy-on-write mask of members deleted
/// since the segment was built (sorted part-local ids; null when none).
struct ShardChainLink {
  std::shared_ptr<const CorpusSegment> segment;
  const SegmentShardPart* part = nullptr;  // &segment->shards[shard]
  RecordId id_offset = 0;
  std::shared_ptr<const std::vector<RecordId>> dead;  // may be null
};

/// One token-range shard of the compacted tier: the ordered chain of
/// per-segment parts this shard probes as one id space (ProbeChain).
/// Immutable after construction and shared across snapshots until a
/// compaction finds the shard's memtable or tombstone set dirty, appends
/// a segment, or merges the chain.
struct ShardedBaseTier {
  std::vector<ShardChainLink> links;  // oldest segment first
  /// Total part members across the chain (masked-dead ones included —
  /// they still hold postings until a merge drops them physically).
  size_t num_entities = 0;
  /// Minimum record norm over every link's index (+inf when empty); the
  /// probe floor bound T(r, I) of the whole chain. Masked-dead members
  /// may hold the minimum — a lower floor is always a valid bound.
  double min_norm = 0;
};

/// One shard's memtable image: records inserted since the last compaction
/// whose routing token landed in this shard, scored against the base
/// corpus statistics (PrepareIncremental) and indexed in a DynamicIndex
/// under local ids. Rebuilt copy-on-write on every insert routed here —
/// other shards' images are shared untouched, so per-insert work is
/// O(this shard's memtable), not O(total memtable).
struct DeltaShard {
  RecordSet records;                 // prepared, with texts
  std::vector<RecordId> global_ids;  // local -> global corpus id, increasing
  DynamicIndex index;                // local ids; tombstoned locals skipped
  std::vector<RecordId> short_ids;   // local ids; tombstoned locals skipped
  /// Global ids tombstoned in this shard since its last compaction,
  /// sorted increasing. Covers both base members (filtered at probe time
  /// against this list) and memtable residents (never indexed above).
  /// Published with the delta image so a Delete is visible to every query
  /// issued after it returns; Compact() folds the ids into the owning
  /// segments' dead masks and empties the list.
  std::vector<RecordId> tombstones;
};

/// One epoch's immutable view of the service corpus: the shared segment
/// chain, one per-shard chain view and one delta shard per token range,
/// and the epoch number. Readers copy the owning shared_ptr under the
/// service's snapshot mutex and then run entirely lock-free; writers
/// publish a NEW snapshot instead of ever mutating one, so a query keeps
/// a consistent view for as long as it holds the pointer, across any
/// number of concurrent inserts and compactions.
struct IndexSnapshot {
  /// The segment chain, oldest first; never empty (construction folds
  /// the initial corpus into segment 0, possibly zero-record).
  std::vector<std::shared_ptr<const CorpusSegment>> segments;
  std::vector<std::shared_ptr<const ShardedBaseTier>> base;  // per shard
  std::vector<std::shared_ptr<const DeltaShard>> delta;      // per shard
  uint64_t epoch = 0;
  /// Surviving (non-deleted) records visible to queries, base + delta.
  size_t live_records = 0;
  /// Tombstones awaiting their fold into segment dead masks.
  size_t pending_tombstones = 0;

  size_t num_shards() const { return base.size(); }

  /// The statistics reference for PrepareIncremental staging. Corpus-
  /// statistics predicates (TF-IDF cosine) full-rebuild at every
  /// compaction, so their chain has exactly one segment and this IS the
  /// whole prepared corpus; every other predicate ignores the reference.
  const RecordSet& stats_reference() const {
    return *segments.front()->records;
  }

  /// Non-copying concatenated view of the chain's record arenas.
  SegmentedCorpus base_corpus() const {
    SegmentedCorpus view;
    for (const std::shared_ptr<const CorpusSegment>& s : segments) {
      view.Append(s->records);
    }
    return view;
  }

  /// Backing-arena records across the chain; >= live base records
  /// (masked-dead members linger in their segment until a merge).
  size_t base_size() const {
    size_t n = 0;
    for (const std::shared_ptr<const CorpusSegment>& s : segments) {
      n += s->records->size();
    }
    return n;
  }
  /// Approximate bytes held by the segment chain.
  uint64_t segment_bytes() const {
    uint64_t n = 0;
    for (const std::shared_ptr<const CorpusSegment>& s : segments) {
      n += s->approx_bytes;
    }
    return n;
  }
  /// Memtable records awaiting compaction (tombstoned ones included —
  /// they still occupy memtable slots until folded away).
  size_t delta_size() const {
    size_t n = 0;
    for (const std::shared_ptr<const DeltaShard>& d : delta) {
      n += d->records.size();
    }
    return n;
  }
  /// Records a query can answer with: live base + live delta records.
  size_t size() const { return live_records; }
};

/// Writer-side bookkeeping for one chain entry: the shared segment, its
/// per-shard copy-on-write dead masks (sorted part-local ids; null when
/// clean) and the surviving-member count that drives the merge policy.
struct SegmentChainEntry {
  std::shared_ptr<const CorpusSegment> segment;
  std::vector<std::shared_ptr<const std::vector<RecordId>>> dead;  // per shard
  size_t live = 0;
};
using SegmentChain = std::vector<SegmentChainEntry>;

/// Carves the vocabulary into `num_shards` contiguous token ranges
/// balanced by the given per-token mass, returning the num_shards - 1
/// exclusive upper bounds. Tokens beyond the planning vocabulary fall
/// into the last shard. Empty for num_shards <= 1.
std::vector<TokenId> ComputeShardBounds(const std::vector<uint64_t>& mass,
                                        size_t num_shards);

/// Per-token routing mass of a record set: each record contributes its
/// token count at its routing token (see RouteToShard). Feeding this to
/// ComputeShardBounds balances the indexed posting volume across shards.
/// (Balancing on raw document frequencies would not: the routing token is
/// one specific token per record, so the bounds must weigh the mass where
/// records actually land.)
std::vector<uint64_t> RoutingMassHistogram(const RecordSet& records);

/// The routing rule: a record belongs to the shard whose token range
/// contains its LARGEST token (tokens are strictly increasing within a
/// record, so that is the last one). With frequency-ordered token ids the
/// maximum is a record's rarest token, which spreads records far more
/// evenly than the minimum — the min is almost always a stopword-like
/// token near id 0, which would funnel the whole corpus into one shard.
/// Empty records go to shard 0. Any deterministic key preserves
/// correctness; the choice only affects balance.
size_t RouteToShard(RecordView record, const std::vector<TokenId>& bounds);

/// Approximate in-memory bytes of a fully built segment: the record
/// arena, id tables and per-shard postings. Used by BuildCorpusSegment
/// and the checkpoint loader to fill CorpusSegment::approx_bytes.
uint64_t ComputeSegmentApproxBytes(const CorpusSegment& segment);

/// Builds one immutable segment over already-prepared `records`: routes
/// every record to its token-range shard and builds each shard's part
/// (extent-carved CSR index under part-local ids plus the short-record
/// pool). `global_ids` is the per-position corpus id table, strictly
/// increasing. Preparation is NOT run here — the service prepares
/// records before folding them, so corpus-statistics weights are
/// identical across shard counts AND across segmentations.
std::shared_ptr<const CorpusSegment> BuildCorpusSegment(
    uint64_t id, RecordSet records, std::vector<RecordId> global_ids,
    const std::vector<TokenId>& shard_bounds, size_t num_shards,
    double short_norm_bound);

/// Builds shard `shard`'s chain view over `chain`: one link per segment
/// (empty parts included — their probes are free and offsets stay
/// aligned), with chain-local id offsets assigned in chain order.
std::shared_ptr<const ShardedBaseTier> BuildShardChainView(
    const SegmentChain& chain, size_t shard);

/// Builds one shard's delta image over already-prepared memtable records.
/// `short_norm_bound` is the predicate's ShortRecordNormBound (0 for
/// predicates without a short-record fallback). `tombstones` (sorted
/// global ids) is copied into the image; memtable records whose global id
/// is tombstoned are physically excluded from the index and short pool —
/// only their record slots remain until compaction.
std::shared_ptr<const DeltaShard> BuildDeltaShard(
    RecordSet records, std::vector<RecordId> global_ids,
    double short_norm_bound, std::vector<RecordId> tombstones = {});

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SNAPSHOT_H_
