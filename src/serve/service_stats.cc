#include "serve/service_stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace ssjoin {

void LatencyHistogram::Record(uint64_t micros) {
  // Sub-microsecond samples truncate to 0 and must land in bucket 0
  // explicitly: a query can finish in 0 ticks of the microsecond clock,
  // and the bit-scan intrinsics behind ad-hoc log2 implementations
  // (__builtin_clzll) are undefined at 0, so never feed 0 to one.
  // std::bit_width(0) is well-defined (0), but the guard keeps the
  // invariant independent of the bucket-index formula.
  size_t bucket =
      micros == 0 ? 0 : static_cast<size_t>(std::bit_width(micros));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  ++buckets_[bucket];
  ++count_;
  if (micros > max_micros_) max_micros_ = micros;
}

uint64_t LatencyHistogram::QuantileUpperBound(double q) const {
  // A histogram with no samples (or only zero-microsecond samples) must
  // summarize to 0 for every quantile — never a bucket midpoint or the
  // uninitialized-max garbage a rank walk over empty buckets would
  // produce. The clamps also normalize NaN to 0 (NaN fails `q >= 0`).
  if (count_ == 0) return 0;
  if (!(q >= 0)) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile, 1-based and rounded UP (the nearest-
  // rank definition): p99 of a handful of samples reports the worst one
  // instead of silently dropping to the median.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Bucket i holds values with bit_width == i, i.e. <= 2^i - 1.
      uint64_t upper = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      return upper < max_micros_ ? upper : max_micros_;
    }
  }
  return max_micros_;
}

namespace {

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool trailing_comma = true) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value),
                trailing_comma ? ", " : "");
  out->append(buffer);
}

}  // namespace

std::string NetStats::ToJson() const {
  std::string out = "{";
  AppendField(&out, "connections_accepted", connections_accepted);
  AppendField(&out, "active_connections", active_connections);
  AppendField(&out, "requests", requests);
  AppendField(&out, "protocol_errors", protocol_errors);
  AppendField(&out, "idle_closes", idle_closes);
  AppendField(&out, "bytes_read", bytes_read);
  AppendField(&out, "bytes_written", bytes_written, /*trailing_comma=*/false);
  out += "}";
  return out;
}

std::string AppendNetSection(std::string stats_json, const NetStats& net) {
  // ServiceStats::ToJson always ends in "}"; splice before it.
  if (stats_json.empty() || stats_json.back() != '}') return stats_json;
  stats_json.pop_back();
  stats_json += ", \"net\": ";
  stats_json += net.ToJson();
  stats_json += "}";
  return stats_json;
}

std::string ServiceStats::ToJson() const {
  std::string out = "{";
  AppendField(&out, "point_queries", point_queries);
  AppendField(&out, "batch_queries", batch_queries);
  AppendField(&out, "batched_records", batched_records);
  AppendField(&out, "topk_queries", topk_queries);
  AppendField(&out, "inserts", inserts);
  AppendField(&out, "deletes", deletes);
  AppendField(&out, "delete_misses", delete_misses);
  AppendField(&out, "compactions", compactions);
  AppendField(&out, "candidates", candidates);
  AppendField(&out, "results", results);
  AppendField(&out, "segments", segments);
  AppendField(&out, "segment_bytes", segment_bytes);
  AppendField(&out, "segments_merged", segments_merged);
  AppendField(&out, "last_compact_delta_records", last_compact_delta_records);
  AppendField(&out, "mapped_segments", mapped_segments);
  AppendField(&out, "mapped_bytes", mapped_bytes);
  AppendField(&out, "gc_unlinked_segments", gc_unlinked_segments);
  AppendField(&out, "gc_unlink_failures", gc_unlink_failures);
  AppendField(&out, "merges", merge.merges);
  AppendField(&out, "heap_pops", merge.heap_pops);
  AppendField(&out, "gallop_probes", merge.gallop_probes);
  AppendField(&out, "candidates_bitmap_checked", merge.bitmap_checked);
  AppendField(&out, "candidates_bitmap_pruned", merge.bitmap_pruned);
  out += "\"shards\": [";
  for (size_t s = 0; s < shards.size(); ++s) {
    out += "{";
    AppendField(&out, "inserts", shards[s].inserts);
    AppendField(&out, "deletes", shards[s].deletes);
    AppendField(&out, "candidates", shards[s].candidates);
    AppendField(&out, "results", shards[s].results);
    AppendField(&out, "rebuilds", shards[s].rebuilds,
                /*trailing_comma=*/false);
    out += s + 1 < shards.size() ? "}, " : "}";
  }
  out += "], ";
  out += "\"query_latency_us\": {";
  AppendField(&out, "count", query_latency_us.count());
  AppendField(&out, "p50", query_latency_us.QuantileUpperBound(0.5));
  AppendField(&out, "p90", query_latency_us.QuantileUpperBound(0.9));
  AppendField(&out, "p99", query_latency_us.QuantileUpperBound(0.99));
  AppendField(&out, "max", query_latency_us.max_micros(),
              /*trailing_comma=*/false);
  out += "}, \"batch_latency_us\": {";
  AppendField(&out, "count", batch_latency_us.count());
  AppendField(&out, "p50", batch_latency_us.QuantileUpperBound(0.5));
  AppendField(&out, "p99", batch_latency_us.QuantileUpperBound(0.99));
  AppendField(&out, "max", batch_latency_us.max_micros(),
              /*trailing_comma=*/false);
  out += "}}";
  return out;
}

}  // namespace ssjoin
