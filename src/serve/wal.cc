#include "serve/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "index/index_io.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kWalMagic[4] = {'S', 'S', 'W', 'L'};
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderSize = sizeof(kWalMagic) + sizeof(uint32_t);
// A frame longer than this cannot have been written by AppendFrame and is
// treated as a torn/corrupt tail rather than an allocation request.
constexpr uint32_t kMaxFrameBytes = 1u << 30;

std::string WalHeader() {
  std::string header(kWalMagic, sizeof(kWalMagic));
  PutFixed32(&header, kWalVersion);
  return header;
}

/// Decodes one frame payload. CRC already verified, so a decode failure
/// here means a writer/reader version mismatch, not a torn write.
bool DecodePayload(const std::string& payload, WalRecord* out) {
  size_t offset = 0;
  if (!GetVarint64(payload, &offset, &out->seq)) return false;
  if (offset >= payload.size()) return false;
  const uint8_t kind = static_cast<uint8_t>(payload[offset++]);
  switch (kind) {
    case WalRecord::kInsert: {
      out->kind = WalRecord::kInsert;
      uint32_t num_tokens = 0;
      if (!GetVarint32(payload, &offset, &num_tokens)) return false;
      out->tokens.resize(num_tokens);
      out->scores.resize(num_tokens);
      // Tokens are strictly increasing within a record (RecordView
      // invariant), hence delta-coded like every other id list on disk.
      uint32_t prev = 0;
      for (uint32_t i = 0; i < num_tokens; ++i) {
        uint32_t delta = 0;
        if (!GetVarint32(payload, &offset, &delta)) return false;
        if (i > 0 && delta == 0) return false;
        prev = i == 0 ? delta : prev + delta;
        out->tokens[i] = prev;
      }
      for (uint32_t i = 0; i < num_tokens; ++i) {
        if (!GetDouble(payload, &offset, &out->scores[i])) return false;
      }
      if (!GetDouble(payload, &offset, &out->norm)) return false;
      if (!GetVarint32(payload, &offset, &out->text_length)) return false;
      uint64_t text_size = 0;
      if (!GetVarint64(payload, &offset, &text_size)) return false;
      if (offset + text_size != payload.size()) return false;
      out->text.assign(payload, offset, text_size);
      offset += text_size;
      return true;
    }
    case WalRecord::kDelete: {
      out->kind = WalRecord::kDelete;
      uint32_t id = 0;
      if (!GetVarint32(payload, &offset, &id)) return false;
      out->id = id;
      return offset == payload.size();
    }
    case WalRecord::kCompact:
      out->kind = WalRecord::kCompact;
      return offset == payload.size();
    default:
      return false;
  }
}

Status CreateFresh(const std::string& path) {
  SSJOIN_RETURN_IF_ERROR(WriteFileAtomic(path, WalHeader()));
  return Status::OK();
}

}  // namespace

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          WalSyncPolicy sync,
                                          std::vector<WalRecord>* replay) {
  // Missing or zero-length (crash between create and header write) files
  // start fresh; anything else must carry a valid header.
  bool fresh = false;
  {
    int probe = ::open(path.c_str(), O_RDONLY);
    if (probe < 0) {
      if (errno != ENOENT) return ErrnoIOError("cannot open wal", path);
      fresh = true;
    } else {
      ::close(probe);
    }
  }
  if (fresh) SSJOIN_RETURN_IF_ERROR(CreateFresh(path));

  Result<std::string> read = ReadFileToString(path);
  if (!read.ok()) return read.status();
  const std::string data = std::move(read).value();
  if (data.empty()) {
    SSJOIN_RETURN_IF_ERROR(CreateFresh(path));
  } else if (data.size() < kHeaderSize ||
             std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IOError("bad wal header: " + path);
  } else {
    size_t header_offset = sizeof(kWalMagic);
    uint32_t version = 0;
    GetFixed32(data, &header_offset, &version);
    if (version != kWalVersion) {
      return Status::IOError("unsupported wal version: " + path);
    }
  }

  // Walk the frames. The first length/CRC mismatch marks a torn tail:
  // everything before it is intact (each frame is independently
  // checksummed), everything from it on is discarded by truncation so a
  // future append never lands behind garbage.
  uint64_t last_seq = 0;
  size_t good_end = kHeaderSize;
  size_t offset = good_end;
  while (offset < data.size()) {
    uint32_t length = 0;
    uint32_t crc = 0;
    if (!GetFixed32(data, &offset, &length) ||
        !GetFixed32(data, &offset, &crc) || length == 0 ||
        length > kMaxFrameBytes || offset + length > data.size()) {
      break;  // torn tail
    }
    if (Crc32(data.data() + offset, length) != crc) {
      break;  // torn or corrupt tail
    }
    const std::string payload = data.substr(offset, length);
    WalRecord record;
    if (!DecodePayload(payload, &record)) {
      // The checksum passed, so these are exactly the bytes a writer
      // framed — an undecodable payload is a format error, not a crash.
      return Status::IOError("undecodable wal record: " + path);
    }
    offset += length;
    good_end = offset;
    last_seq = std::max(last_seq, record.seq);
    if (replay != nullptr) replay->push_back(std::move(record));
  }

  int fd = ::open(path.c_str(), O_RDWR | O_APPEND);
  if (fd < 0) return ErrnoIOError("cannot open wal for append", path);
  if (good_end < data.size()) {
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      Status status = ErrnoIOError("cannot truncate torn wal tail", path);
      ::close(fd);
      return status;
    }
    if (::fsync(fd) != 0) {
      Status status = ErrnoIOError("cannot fsync wal", path);
      ::close(fd);
      return status;
    }
  }
  return WriteAheadLog(path, sync, fd, last_seq);
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : path_(std::move(other.path_)),
      sync_(other.sync_),
      fd_(other.fd_),
      last_seq_(other.last_seq_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    sync_ = other.sync_;
    fd_ = other.fd_;
    last_seq_ = other.last_seq_;
    other.fd_ = -1;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::AppendFrame(const std::string& payload, uint64_t seq) {
  if (fd_ < 0) return Status::FailedPrecondition("wal is closed");
  std::string frame;
  frame.reserve(payload.size() + 2 * sizeof(uint32_t));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, Crc32(payload.data(), payload.size()));
  frame += payload;
  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial frame may now sit at the tail; the next Open truncates
      // it by CRC. The service stops appending after a failure so no
      // later frame lands behind the garbage.
      return ErrnoIOError("wal append failed", path_);
    }
    written += static_cast<size_t>(n);
  }
  if (sync_ == WalSyncPolicy::kAlways && ::fdatasync(fd_) != 0) {
    return ErrnoIOError("wal fdatasync failed", path_);
  }
  last_seq_ = seq;
  return Status::OK();
}

Status WriteAheadLog::AppendInsert(uint64_t seq, RecordView record,
                                   const std::string& text) {
  std::string payload;
  PutVarint64(&payload, seq);
  payload.push_back(static_cast<char>(WalRecord::kInsert));
  PutVarint32(&payload, static_cast<uint32_t>(record.size()));
  TokenId prev = 0;
  for (size_t i = 0; i < record.size(); ++i) {
    PutVarint32(&payload, record.token(i) - prev);
    prev = record.token(i);
  }
  for (size_t i = 0; i < record.size(); ++i) {
    PutDouble(&payload, record.score(i));
  }
  PutDouble(&payload, record.norm());
  PutVarint32(&payload, record.text_length());
  PutVarint64(&payload, text.size());
  payload += text;
  return AppendFrame(payload, seq);
}

Status WriteAheadLog::AppendDelete(uint64_t seq, RecordId id) {
  std::string payload;
  PutVarint64(&payload, seq);
  payload.push_back(static_cast<char>(WalRecord::kDelete));
  PutVarint32(&payload, id);
  return AppendFrame(payload, seq);
}

Status WriteAheadLog::AppendCompact(uint64_t seq) {
  std::string payload;
  PutVarint64(&payload, seq);
  payload.push_back(static_cast<char>(WalRecord::kCompact));
  return AppendFrame(payload, seq);
}

Status WriteAheadLog::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  SSJOIN_RETURN_IF_ERROR(WriteFileAtomic(path_, WalHeader()));
  int fd = ::open(path_.c_str(), O_RDWR | O_APPEND);
  if (fd < 0) return ErrnoIOError("cannot reopen wal after reset", path_);
  fd_ = fd;
  return Status::OK();
}

}  // namespace ssjoin
