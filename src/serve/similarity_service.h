#ifndef SSJOIN_SERVE_SIMILARITY_SERVICE_H_
#define SSJOIN_SERVE_SIMILARITY_SERVICE_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/merge_opt.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "data/record_view.h"
#include "serve/checkpoint.h"
#include "serve/service_stats.h"
#include "serve/snapshot.h"
#include "serve/wal.h"
#include "util/function_ref.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ssjoin {

/// One answer to a similarity lookup: a corpus record id (insertion
/// order: construction corpus first, then Insert() order) and the
/// canonical match amount sum over common tokens of
/// score(w, query) * score(w, match).
struct QueryMatch {
  RecordId id;
  double score;
};

struct ServiceOptions {
  /// Apply the predicate's norm range filter during merges.
  bool apply_filter = true;
  /// ListMerger knobs (MergeOpt L/S split on by default).
  MergeOptions merge;
  /// Auto-compact when the total memtable (across shards) reaches this
  /// many records; 0 means compaction only happens through explicit
  /// Compact() calls. Each insert republishes only the routed shard's
  /// memtable image, so per-insert work is bounded by that shard's share.
  size_t memtable_limit = 256;
  /// Worker threads for BatchQuery fan-out, sharded point-query fan-out
  /// and parallel shard rebuilds; <= 0 uses the hardware default.
  int num_threads = 0;
  /// Token-range shards for the base tier and memtable. Each shard owns a
  /// contiguous token range (records route by their largest token) with
  /// its own memtable, so Compact() rebuilds only shards that received
  /// inserts and probes fan out across shards. 0 or 1 disables sharding.
  /// Query/BatchQuery/QueryTopK answers are byte-identical for every
  /// value — sharding is purely a throughput/compaction-cost knob.
  size_t num_shards = 1;
  /// Size-tiered merge trigger for the segment chain. After a compaction
  /// appends the folded memtable as a new segment, the two newest
  /// segments merge while the older one's live count is at most
  /// `segment_merge_ratio` times the newer one's, cascading — chains stay
  /// logarithmic in corpus size while steady-state compaction stays
  /// O(delta). 0 collapses the whole chain into ONE segment at every
  /// compaction (the pre-segmented behavior: compaction rewrites the
  /// corpus, cost linear in its size; kept as the differential baseline).
  /// Query/BatchQuery/QueryTopK answers are byte-identical for every
  /// value — like num_shards, this is purely a cost knob.
  size_t segment_merge_ratio = 2;
  /// When non-empty, the service is durable: a checkpoint of the base
  /// tier plus a write-ahead log of every Insert/Delete live under this
  /// directory (created if missing). The CONSTRUCTOR starts fresh — it
  /// writes an initial checkpoint and an empty WAL, replacing whatever a
  /// previous incarnation left there; use Open() to restore instead.
  /// Durability failures (full disk, permissions) never fail serving:
  /// they latch durability_status() and suspend logging until a later
  /// checkpoint succeeds.
  std::string data_dir;
  /// WAL fsync policy; meaningful only with a data_dir. See WalSyncPolicy.
  WalSyncPolicy wal_sync = WalSyncPolicy::kAlways;
  /// Width of the token-bitmap candidate prefilter consulted per probe,
  /// in bits: 0 disables the filter, otherwise a multiple of 64 up to
  /// kTokenBitmapBits (values are clamped/rounded down to that grid).
  /// Narrower widths read less memory per candidate but prune less.
  /// Query/BatchQuery/QueryTopK answers are byte-identical for every
  /// value — like num_shards, this is purely a cost knob. Only
  /// predicates that opt in (supports_bitmap_pruning) are gated.
  size_t bitmap_bits = kTokenBitmapBits;
  /// Out-of-core base tier (durable services only). 0 (default): every
  /// segment is materialized in heap memory at Open — the historical
  /// behavior, fully verified end to end. >0: segment bodies are served
  /// from mmap'd `.sseg` files (the heap holds only the gating tables:
  /// record offsets, norms, text lengths, token bitmaps, id tables and
  /// manifest state), and the budget steers residency advice — the
  /// newest segments fitting under the budget are marked MADV_WILLNEED,
  /// the rest MADV_RANDOM + MADV_DONTNEED so the kernel reclaims their
  /// clean pages first. Query/BatchQuery/QueryTopK answers are
  /// byte-identical for every value. Ignored for corpus-statistics
  /// predicates (their full-rebuild path needs owned arenas) and for
  /// memory-only services. The SSJOIN_RESIDENT_BUDGET environment
  /// variable overrides a zero value (test/CI hook).
  uint64_t resident_budget_bytes = 0;
};

/// A long-lived, thread-safe similarity-lookup service: owns a corpus and
/// answers "which records match this one?" without re-running a batch
/// join. See DESIGN.md "Serving layer" and "Sharded serving".
///
/// Internally LSM-style, sharded by token range and SEGMENT-CHAINED: the
/// compacted tier is a chain of immutable CorpusSegments, each owning its
/// prepared CSR arena and one extent-carved index per token-range shard.
/// Compact() folds the memtable into ONE new delta-sized segment and
/// republishes with every prior segment structurally shared — O(delta),
/// not O(corpus) — while tombstones fold into per-segment dead masks and
/// a size-tiered trigger (ServiceOptions::segment_merge_ratio) merges
/// small segments so chains stay short. Each shard has its own memtable
/// image and tombstone set, so Insert/Delete touch one shard.
/// Corpus-statistics predicates force a full rebuild into a single fresh
/// segment — their scores change globally, and the re-Prepare runs over
/// survivors only.
///
/// Concurrency model (lock order: write -> batch -> snapshot; stats is a
/// leaf):
///   * readers copy an immutable IndexSnapshot shared_ptr under a brief
///     mutex hold and then touch no shared mutable state — queries never
///     block inserts or compaction, and vice versa;
///   * writers (Insert/Compact) serialize on a write mutex, build fresh
///     immutable tiers off to the side and publish them atomically by
///     swapping the snapshot pointer;
///   * the worker pool is shared (and not reentrant), so batch fan-out,
///     sharded point-query fan-out and parallel shard rebuilds serialize
///     on a pool mutex; point queries fall back to a serial shard sweep
///     (same output) when the pool is busy.
///
/// Query answers match a fresh batch self-join over the same records
/// exactly whenever the memtable is empty (always, for predicates with
/// corpus-independent scores). Between compactions, TF-IDF cosine scores
/// new records against the base corpus statistics (frozen IDF) — the
/// standard serving-time approximation, made exact again by Compact().
class SimilarityService {
 public:
  /// Takes ownership of the corpus (prepared internally; the caller need
  /// not call Prepare). `pred` must outlive the service.
  SimilarityService(RecordSet corpus, const Predicate& pred,
                    ServiceOptions options = {});

  /// Restores a durable service from `options.data_dir`: loads the last
  /// checkpoint, replays the intact WAL tail through the normal
  /// Insert/Delete/Compact paths (a torn final record is dropped by CRC),
  /// and resumes at the exact pre-crash epoch with byte-identical query
  /// answers. `pred` must be the predicate the checkpoint was written
  /// under (fingerprinted by name), and the options that shape write-path
  /// behavior (memtable_limit above all) should match the original
  /// service's for epoch-exact recovery; num_shards is taken from the
  /// checkpoint. `pred` must outlive the service.
  static Result<std::unique_ptr<SimilarityService>> Open(
      const Predicate& pred, ServiceOptions options);

  SimilarityService(const SimilarityService&) = delete;
  SimilarityService& operator=(const SimilarityService&) = delete;

  /// All corpus records matching `query` under the predicate, in
  /// increasing id order. `text` is kept for text-based verification
  /// (edit distance); pass {} otherwise.
  std::vector<QueryMatch> Query(RecordView query,
                                std::string text = {}) const;

  /// One result list per query record, results[i] answering
  /// queries.record(i); identical to calling Query per record (including
  /// order) but fanned out over the worker pool. Concurrent BatchQuery
  /// calls serialize on the pool.
  std::vector<std::vector<QueryMatch>> BatchQuery(
      const RecordSet& queries) const;

  /// The k corpus records with the largest match amount against `query`
  /// (ties broken by increasing id), ranked WITHOUT the predicate's
  /// threshold — like TopKJoin, only records sharing at least one token
  /// can appear. Short-record fallback pairs (edit distance) are not
  /// ranked.
  std::vector<QueryMatch> QueryTopK(RecordView query, size_t k,
                                    std::string text = {}) const;

  /// Adds a record to the corpus; visible to every query issued after
  /// return. Returns its corpus id. May trigger a compaction
  /// (ServiceOptions::memtable_limit). Token-less (empty) records are
  /// legal and route deterministically to shard 0.
  RecordId Insert(RecordView record, std::string text = {});

  /// Retracts record `id`: an LSM-style tombstone is recorded in the
  /// owning token-range shard (same largest-token routing as Insert) and
  /// published with that shard's delta image, so the record is hidden
  /// from Query/BatchQuery/QueryTopK answers issued after return —
  /// whether it lives in the base tier or is still memtable-resident.
  /// The record's bytes are dropped physically at the next compaction of
  /// the shard; its id is never reused (re-inserting the same content
  /// yields a fresh id). Returns false (and counts a delete_miss) for an
  /// unknown or already-deleted id. May trigger a compaction — pending
  /// tombstones count toward ServiceOptions::memtable_limit.
  bool Delete(RecordId id);

  /// Folds the memtables into the base shards, drops tombstoned members,
  /// and empties both. Only dirty shards — non-empty memtable OR
  /// non-empty tombstone set — are rebuilt (all shards, when the
  /// predicate's scores depend on corpus statistics: the full re-Prepare
  /// recomputes them over the SURVIVING records only, so post-compaction
  /// answers coincide with a fresh batch self-join over the survivors).
  /// A call with nothing pending is a no-op that rebuilds no shard.
  /// Queries keep running against the previous snapshot until the new
  /// one is published.
  void Compact();

  /// Live records (base + memtable survivors) in the current snapshot.
  size_t size() const { return snapshot()->size(); }
  /// Records awaiting compaction in the current snapshot (all shards),
  /// including memtable records already tombstoned.
  size_t memtable_size() const { return snapshot()->delta_size(); }
  /// Tombstones awaiting physical drop in the current snapshot.
  size_t tombstone_count() const { return snapshot()->pending_tombstones; }
  /// Publication count: bumps on every insert, delete and (non-no-op)
  /// compaction.
  uint64_t epoch() const { return snapshot()->epoch; }
  /// Token-range shard count (fixed at construction).
  size_t num_shards() const { return num_shards_; }
  /// Whether this service was given a data_dir.
  bool durable() const { return wal_ != nullptr; }
  /// OK while every acknowledged op is covered by the WAL or a
  /// checkpoint. Latches the first WAL-append or checkpoint failure
  /// (serving continues memory-only, logging suspended — a torn frame
  /// must not get frames appended behind it); a later successful
  /// checkpoint covers the gap and clears the error.
  Status durability_status() const;

  /// Sequence number the next WAL frame would carry (1 on a fresh log);
  /// `wal_sequence() - 1` is the last durable operation. Meaningful only
  /// for durable services; graceful shutdown logs it so operators can
  /// line a restart up against the WAL tail. 0 when not durable.
  uint64_t wal_sequence();

  /// Re-applies the residency-budget madvise policy over the mapped
  /// chain (over-budget segments drop their clean pages; they reload
  /// from disk on the next fault). A no-op for materialized chains.
  /// Exposed so benchmarks can measure the post-advice RSS floor.
  void ApplyResidencyAdvice();

  /// The effective resident budget: the option, or the
  /// SSJOIN_RESIDENT_BUDGET environment override when the option is 0.
  uint64_t resident_budget_bytes() const { return resident_budget_; }

  /// Copy of the aggregate serving counters.
  ServiceStats stats() const;
  /// Counters, latency quantiles and snapshot shape as a JSON object.
  std::string StatsJson() const;

  /// The current immutable view; hold the pointer to pin an epoch.
  std::shared_ptr<const IndexSnapshot> snapshot() const;

 private:
  /// Restore path: rebuilds writer state and the published snapshot from
  /// a loaded checkpoint (forcing its epoch), then replays `tail`.
  SimilarityService(ServiceCheckpoint checkpoint, std::vector<WalRecord> tail,
                    WriteAheadLog wal, const Predicate& pred,
                    ServiceOptions options);

  /// Insert/Delete bodies; write_mutex_ must be held (WAL replay runs
  /// them under the constructor's hold).
  RecordId InsertLocked(RecordView record, std::string text);
  bool DeleteLocked(RecordId id);
  /// Returns true when a new snapshot was published (false for the
  /// nothing-pending no-op).
  bool CompactLocked(bool count_compaction);

  /// Fresh-construction durability setup: data dir, empty WAL, initial
  /// checkpoint. Failures latch durability_status().
  void InitDurabilityLocked();
  /// Out-of-core mode only: swaps every heap-materialized chain segment
  /// whose file is already on disk for a mapped view of that file and
  /// republishes in place at the CURRENT epoch (the answers are byte-
  /// identical, so the swap is invisible to readers). Failures leave the
  /// owned segments serving — mapping is an optimization, never a
  /// correctness dependency.
  void AdoptMappedSegmentsLocked();
  /// Re-applies the residency-budget madvise policy over the mapped
  /// chain, newest segment first: segments accumulating under the budget
  /// get MADV_WILLNEED, the rest MADV_RANDOM + MADV_DONTNEED. Also
  /// refreshes the mapped_segments/mapped_bytes gauges.
  void ApplyResidencyAdviceLocked();
  /// Serializes the just-published compacted state (write_mutex_ held,
  /// memtables and tombstones empty).
  Status SaveCheckpointLocked();
  /// Checkpoint + WAL truncation after a published compaction; success
  /// clears a latched durability error, failure latches one.
  void MaybeCheckpointLocked();
  void SetDurabilityErrorLocked(Status status);
  /// Swaps in a new snapshot built from the current chain_ plus the given
  /// tier views. Must be called with write_mutex_ held: the published
  /// segment list and live/tombstone counts are read from writer state.
  void Publish(std::vector<std::shared_ptr<const ShardedBaseTier>> base,
               std::vector<std::shared_ptr<const DeltaShard>> delta);
  /// Token-range shard of live record `id`: from the raw corpus when the
  /// predicate keeps one, otherwise from the record's prepared image in
  /// the memtable or segment chain (preparation never changes token sets,
  /// so prepared routing equals raw routing).
  size_t RouteOfRecordLocked(RecordId id) const;
  /// Runs fn(shard) for every shard — on the worker pool when it is free
  /// and the fan-out is worth it, serially otherwise. Output written to
  /// per-shard slots is deterministic either way.
  void RunOverShards(size_t num_shards, FunctionRef<void(size_t)> fn) const;

  const Predicate& pred_;
  const ServiceOptions options_;
  const size_t num_shards_;
  /// Effective out-of-core budget (option or env override), fixed at
  /// construction; 0 = materialized mode.
  const uint64_t resident_budget_;
  std::unique_ptr<ThreadPool> pool_;

  // Writer-owned authoritative state, guarded by write_mutex_: the id
  // counter, the deleted bitmap (sticky — ids are never reused), the
  // fixed token-range bounds, the segment chain with its per-shard dead
  // masks, per-shard memtables and per-shard pending tombstones. The raw
  // corpus is retained ONLY for corpus-statistics predicates (keep_raw_),
  // whose full rebuild re-Prepares from raw text frequencies; every other
  // predicate drops it after the construction-time fold — the prepared
  // segments carry everything later compactions need.
  std::mutex write_mutex_;
  const bool keep_raw_;
  RecordSet corpus_;           // raw; empty unless keep_raw_
  std::vector<bool> deleted_;  // per corpus id, sticky once set
  size_t deleted_total_ = 0;
  uint64_t next_id_ = 0;  // ids ever assigned; live = next_id_ - deleted
  std::vector<TokenId> shard_bounds_;
  uint64_t next_segment_id_ = 0;
  SegmentChain chain_;  // oldest first; never empty after construction
  std::set<uint64_t> persisted_segments_;  // segment files on disk
  std::vector<RecordSet> memtables_;
  std::vector<std::vector<RecordId>> memtable_ids_;
  size_t memtable_total_ = 0;
  std::vector<std::vector<RecordId>> tombstones_;  // sorted global ids
  size_t tombstone_total_ = 0;

  // Durability state, guarded by write_mutex_ (except durability_status_,
  // which readers poll through its own leaf mutex). wal_ is null for
  // memory-only services.
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t wal_next_seq_ = 1;
  bool replaying_ = false;   // suppress logging/checkpoints during replay
  bool wal_failed_ = false;  // latched on append failure, cleared by
                             // the next successful checkpoint

  mutable std::mutex durability_mutex_;
  Status durability_status_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const IndexSnapshot> snapshot_;

  mutable std::mutex stats_mutex_;
  mutable ServiceStats stats_;

  mutable std::mutex pool_mutex_;  // ParallelFor is not reentrant
};

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SIMILARITY_SERVICE_H_
