#ifndef SSJOIN_SERVE_SIMILARITY_SERVICE_H_
#define SSJOIN_SERVE_SIMILARITY_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/merge_opt.h"
#include "core/predicate.h"
#include "data/record_set.h"
#include "data/record_view.h"
#include "serve/service_stats.h"
#include "serve/snapshot.h"
#include "util/thread_pool.h"

namespace ssjoin {

/// One answer to a similarity lookup: a corpus record id (insertion
/// order: construction corpus first, then Insert() order) and the
/// canonical match amount sum over common tokens of
/// score(w, query) * score(w, match).
struct QueryMatch {
  RecordId id;
  double score;
};

struct ServiceOptions {
  /// Apply the predicate's norm range filter during merges.
  bool apply_filter = true;
  /// ListMerger knobs (MergeOpt L/S split on by default).
  MergeOptions merge;
  /// Auto-compact when the memtable reaches this many records; 0 means
  /// compaction only happens through explicit Compact() calls. Each
  /// insert republishes the whole memtable image, so this bounds both
  /// per-insert work and the delta share of every probe.
  size_t memtable_limit = 256;
  /// Worker threads for BatchQuery fan-out; <= 0 uses the hardware
  /// default. Point queries run on the caller and ignore this.
  int num_threads = 0;
};

/// A long-lived, thread-safe similarity-lookup service: owns a corpus and
/// answers "which records match this one?" without re-running a batch
/// join. See DESIGN.md "Serving layer".
///
/// Internally two-tier, LSM-style: an immutable CSR InvertedIndex over
/// the compacted corpus (the base) plus a DynamicIndex memtable image for
/// records Insert()ed since the last compaction. Compact() folds the
/// memtable into a fresh base via the normal batch build (PlanFromRecords
/// + Insert), re-running the predicate's full Prepare so corpus
/// statistics (TF-IDF) are exact again.
///
/// Concurrency model (lock order: write -> snapshot; stats is a leaf):
///   * readers copy an immutable IndexSnapshot shared_ptr under a brief
///     mutex hold and then touch no shared mutable state — queries never
///     block inserts or compaction, and vice versa;
///   * writers (Insert/Compact) serialize on a write mutex, build fresh
///     immutable tiers off to the side and publish them atomically by
///     swapping the snapshot pointer.
///
/// Query answers match a fresh batch self-join over the same records
/// exactly whenever the memtable is empty (always, for predicates with
/// corpus-independent scores). Between compactions, TF-IDF cosine scores
/// new records against the base corpus statistics (frozen IDF) — the
/// standard serving-time approximation, made exact again by Compact().
class SimilarityService {
 public:
  /// Takes ownership of the corpus (prepared internally; the caller need
  /// not call Prepare). `pred` must outlive the service.
  SimilarityService(RecordSet corpus, const Predicate& pred,
                    ServiceOptions options = {});

  SimilarityService(const SimilarityService&) = delete;
  SimilarityService& operator=(const SimilarityService&) = delete;

  /// All corpus records matching `query` under the predicate, in
  /// increasing id order. `text` is kept for text-based verification
  /// (edit distance); pass {} otherwise.
  std::vector<QueryMatch> Query(RecordView query,
                                std::string text = {}) const;

  /// One result list per query record, results[i] answering
  /// queries.record(i); identical to calling Query per record (including
  /// order) but fanned out over the worker pool. Concurrent BatchQuery
  /// calls serialize on the pool; point queries are unaffected.
  std::vector<std::vector<QueryMatch>> BatchQuery(
      const RecordSet& queries) const;

  /// The k corpus records with the largest match amount against `query`
  /// (ties broken by increasing id), ranked WITHOUT the predicate's
  /// threshold — like TopKJoin, only records sharing at least one token
  /// can appear. Short-record fallback pairs (edit distance) are not
  /// ranked.
  std::vector<QueryMatch> QueryTopK(RecordView query, size_t k,
                                    std::string text = {}) const;

  /// Adds a record to the corpus; visible to every query issued after
  /// return. Returns its corpus id. May trigger a compaction
  /// (ServiceOptions::memtable_limit).
  RecordId Insert(RecordView record, std::string text = {});

  /// Rebuilds the base index over the full corpus (batch Prepare +
  /// PlanFromRecords) and empties the memtable. Queries keep running
  /// against the previous snapshot until the new one is published.
  void Compact();

  /// Total records (base + memtable) in the current snapshot.
  size_t size() const { return snapshot()->size(); }
  /// Records awaiting compaction in the current snapshot.
  size_t memtable_size() const { return snapshot()->delta_size(); }
  /// Publication count: bumps on every insert and compaction.
  uint64_t epoch() const { return snapshot()->epoch; }

  /// Copy of the aggregate serving counters.
  ServiceStats stats() const;
  /// Counters, latency quantiles and snapshot shape as a JSON object.
  std::string StatsJson() const;

  /// The current immutable view; hold the pointer to pin an epoch.
  std::shared_ptr<const IndexSnapshot> snapshot() const;

 private:
  void CompactLocked(bool count_compaction);
  void Publish(std::shared_ptr<const BaseTier> base,
               std::shared_ptr<const DeltaTier> delta);

  const Predicate& pred_;
  const ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  // Writer-owned authoritative state, guarded by write_mutex_: the full
  // corpus (raw scores; re-Prepared on every compaction) and the
  // incrementally prepared memtable records.
  std::mutex write_mutex_;
  RecordSet corpus_;
  RecordSet memtable_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const IndexSnapshot> snapshot_;

  mutable std::mutex stats_mutex_;
  mutable ServiceStats stats_;

  mutable std::mutex batch_mutex_;  // ParallelFor is not reentrant
};

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SIMILARITY_SERVICE_H_
