#ifndef SSJOIN_SERVE_SERVICE_STATS_H_
#define SSJOIN_SERVE_SERVICE_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/merge_opt.h"

namespace ssjoin {

/// Fixed-footprint latency histogram over power-of-two microsecond
/// buckets: bucket i holds samples in [2^(i-1), 2^i). Coarse by design —
/// quantiles answer "what order of magnitude is p99" for the serving
/// dashboards, not microbenchmark questions. Plain copyable value; the
/// service snapshots it under its stats mutex.
class LatencyHistogram {
 public:
  void Record(uint64_t micros);

  uint64_t count() const { return count_; }
  uint64_t max_micros() const { return max_micros_; }

  /// Upper bound (in microseconds) of the bucket containing quantile
  /// q in [0, 1], clamped to the largest sample seen. 0 when empty.
  uint64_t QuantileUpperBound(double q) const;

 private:
  // 2^39 us ≈ 6.4 days: any conceivable single-query latency fits.
  static constexpr size_t kBuckets = 40;
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t max_micros_ = 0;
};

/// Per-shard serving counters: one entry per token-range shard of the
/// sharded base tier. Probe work attribution shows hot shards (skewed
/// token ranges); rebuilds show how much of each compaction was
/// incremental (dirty shards only) versus a full rebuild.
struct ShardStats {
  uint64_t inserts = 0;     // memtable inserts routed to this shard
  uint64_t deletes = 0;     // tombstones routed to this shard
  uint64_t candidates = 0;  // merge candidates from this shard's tiers
  uint64_t results = 0;     // verified matches this shard contributed
  uint64_t rebuilds = 0;    // base rebuilds (initial build + dirty compactions)
};

/// Network front-end counters, maintained by net::SimilarityServer and
/// spliced into the stats JSON as a "net" object so `stats` over the
/// wire reports the front door next to the service it fronts. A plain
/// value: the server snapshots its atomics into one of these.
struct NetStats {
  uint64_t connections_accepted = 0;  // lifetime accepts
  uint64_t active_connections = 0;    // gauge: currently-open sockets
  uint64_t requests = 0;              // complete requests parsed
  uint64_t protocol_errors = 0;       // malformed/oversized frames
  uint64_t idle_closes = 0;           // connections reaped by idle timeout
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  /// The counters as one JSON object, e.g. {"connections_accepted": 3, ...}.
  std::string ToJson() const;
};

/// Splices `net` into a ServiceStats::ToJson() string as a trailing
/// "net" member, keeping the service's own formatter net-agnostic.
std::string AppendNetSection(std::string stats_json, const NetStats& net);

/// Aggregate serving counters, recorded per query/insert/compaction by
/// SimilarityService. A plain value: stats() hands out a copy, so readers
/// never hold the service's stats lock while formatting.
struct ServiceStats {
  uint64_t point_queries = 0;   // Query() calls
  uint64_t batch_queries = 0;   // BatchQuery() calls
  uint64_t batched_records = 0; // records across all batches
  uint64_t topk_queries = 0;    // QueryTopK() calls
  uint64_t inserts = 0;
  uint64_t deletes = 0;         // successful tombstoned deletes
  uint64_t delete_misses = 0;   // Delete() of unknown or already-deleted ids
  uint64_t compactions = 0;     // explicit + memtable-limit triggered
  uint64_t candidates = 0;      // merge candidates reaching verification
  uint64_t results = 0;         // matches returned to callers

  /// Segment-chain observability. `segments` and `segment_bytes` are
  /// gauges (the published chain as of the last compaction);
  /// `segments_merged` counts segments retired by LSM-style merges over
  /// the service lifetime; `last_compact_delta_records` is the memtable +
  /// tombstone volume the last non-no-op compaction folded — the "delta"
  /// that O(delta) compaction cost is proportional to.
  uint64_t segments = 0;
  uint64_t segment_bytes = 0;
  uint64_t segments_merged = 0;
  uint64_t last_compact_delta_records = 0;

  /// Out-of-core base tier. `mapped_segments`/`mapped_bytes` are gauges:
  /// chain segments currently served from mmap'd `.sseg` bodies and the
  /// file bytes behind them (page cache, not heap — segment_bytes keeps
  /// counting only heap-resident tables). The GC counters accumulate
  /// over the service lifetime; a nonzero `gc_unlink_failures` means the
  /// data directory is accreting dead segment files and needs operator
  /// attention.
  uint64_t mapped_segments = 0;
  uint64_t mapped_bytes = 0;
  uint64_t gc_unlinked_segments = 0;
  uint64_t gc_unlink_failures = 0;
  MergeStats merge;             // the underlying ListMerger instrumentation

  /// Per-shard counters, indexed by shard; sized by EnsureShards.
  std::vector<ShardStats> shards;
  void EnsureShards(size_t num_shards) {
    if (shards.size() < num_shards) shards.resize(num_shards);
  }

  /// Per point/top-k query wall time.
  LatencyHistogram query_latency_us;
  /// Per BatchQuery() call wall time (whole batch).
  LatencyHistogram batch_latency_us;

  /// The counters and latency quantiles as one flat JSON object.
  std::string ToJson() const;
};

}  // namespace ssjoin

#endif  // SSJOIN_SERVE_SERVICE_STATS_H_
