#ifndef SSJOIN_TEXT_TFIDF_H_
#define SSJOIN_TEXT_TFIDF_H_

#include <cstdint>
#include <vector>

#include "text/token_dictionary.h"

namespace ssjoin {

class RecordSet;

/// TF-IDF weighting used by the cosine predicate (Section 5.2.2):
///
///   TF-IDF(w, r) = (1 + log fr(w, r)) * log(1 + N / fr(w))
///
/// where fr(w, r) is the within-record frequency, fr(w) is the total
/// frequency of w over the corpus, and N is the number of records.
class TfIdfWeighter {
 public:
  /// Builds the corpus-frequency table. `token_frequency[t]` must hold the
  /// total occurrences of token t across all records.
  TfIdfWeighter(std::vector<uint64_t> token_frequency, uint64_t num_records);

  /// Convenience: gathers frequencies from a materialized RecordSet.
  static TfIdfWeighter FromRecordSet(const RecordSet& records);

  /// Raw TF-IDF score of token `t` appearing `tf` times in a record.
  double Weight(TokenId t, uint32_t tf) const;

  uint64_t num_records() const { return num_records_; }

 private:
  std::vector<uint64_t> token_frequency_;
  uint64_t num_records_;
};

}  // namespace ssjoin

#endif  // SSJOIN_TEXT_TFIDF_H_
