#include "text/tfidf.h"

#include <cmath>

#include "data/record_set.h"
#include "util/logging.h"

namespace ssjoin {

TfIdfWeighter::TfIdfWeighter(std::vector<uint64_t> token_frequency,
                             uint64_t num_records)
    : token_frequency_(std::move(token_frequency)),
      num_records_(num_records) {}

TfIdfWeighter TfIdfWeighter::FromRecordSet(const RecordSet& records) {
  return TfIdfWeighter(records.term_frequencies(), records.size());
}

double TfIdfWeighter::Weight(TokenId t, uint32_t tf) const {
  SSJOIN_DCHECK(tf > 0);
  uint64_t corpus_freq =
      t < token_frequency_.size() ? token_frequency_[t] : 0;
  // Unseen tokens get the maximum IDF, matching fr(w) -> 0.
  double idf = std::log(
      1.0 + static_cast<double>(num_records_) /
                (corpus_freq > 0 ? static_cast<double>(corpus_freq) : 1.0));
  double tf_part = 1.0 + std::log(static_cast<double>(tf));
  return tf_part * idf;
}

}  // namespace ssjoin
