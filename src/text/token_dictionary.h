#ifndef SSJOIN_TEXT_TOKEN_DICTIONARY_H_
#define SSJOIN_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ssjoin {

/// Dense token identifier. Tokens are words or q-grams depending on the
/// tokenizer in use; the join algorithms only ever see TokenIds.
using TokenId = uint32_t;

constexpr TokenId kInvalidToken = UINT32_MAX;

/// Bidirectional string <-> TokenId mapping with interned storage.
/// Ids are assigned densely in first-seen order, which the inverted index
/// exploits to use vectors instead of hash maps keyed on tokens.
class TokenDictionary {
 public:
  TokenDictionary() = default;

  TokenDictionary(const TokenDictionary&) = delete;
  TokenDictionary& operator=(const TokenDictionary&) = delete;
  TokenDictionary(TokenDictionary&&) = default;
  TokenDictionary& operator=(TokenDictionary&&) = default;

  /// Returns the id for `token`, creating one if unseen.
  TokenId Intern(std::string_view token);

  /// Returns the id for `token` or kInvalidToken if never interned.
  TokenId Lookup(std::string_view token) const;

  /// Returns the string for `id`. Requires id < size().
  const std::string& ToString(TokenId id) const;

  /// Number of distinct tokens interned so far.
  size_t size() const { return tokens_.size(); }

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> tokens_;  // owned copies, indexed by id
};

}  // namespace ssjoin

#endif  // SSJOIN_TEXT_TOKEN_DICTIONARY_H_
