#include "text/normalizer.h"

#include <cctype>

namespace ssjoin {

std::string Normalizer::Normalize(std::string_view text) const {
  std::string out;
  out.reserve(text.size());
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (options_.strip_punctuation && !std::isalnum(c) && !std::isspace(c)) {
      c = ' ';
    }
    if (options_.lowercase) c = static_cast<unsigned char>(std::tolower(c));
    out.push_back(static_cast<char>(c));
  }
  if (!options_.collapse_whitespace) return out;

  std::string collapsed;
  collapsed.reserve(out.size());
  bool in_space = true;  // also trims leading whitespace
  for (char raw : out) {
    if (std::isspace(static_cast<unsigned char>(raw))) {
      in_space = true;
      continue;
    }
    if (in_space && !collapsed.empty()) collapsed.push_back(' ');
    in_space = false;
    collapsed.push_back(raw);
  }
  return collapsed;
}

}  // namespace ssjoin
