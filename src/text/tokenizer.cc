#include "text/tokenizer.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace ssjoin {

namespace {

std::vector<std::pair<TokenId, uint32_t>> CountsToPairs(
    const std::unordered_map<TokenId, uint32_t>& counts) {
  std::vector<std::pair<TokenId, uint32_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::pair<TokenId, uint32_t>> WordTokenizer::Tokenize(
    std::string_view text, TokenDictionary* dict) const {
  std::unordered_map<TokenId, uint32_t> counts;
  for (std::string_view word : SplitAndTrim(text)) {
    ++counts[dict->Intern(word)];
  }
  return CountsToPairs(counts);
}

QGramTokenizer::QGramTokenizer(int q, char pad, bool tag_occurrences)
    : q_(q), pad_(pad), tag_occurrences_(tag_occurrences) {
  SSJOIN_CHECK(q >= 1);
}

std::vector<std::pair<TokenId, uint32_t>> QGramTokenizer::Tokenize(
    std::string_view text, TokenDictionary* dict) const {
  std::string padded;
  padded.reserve(text.size() + 2 * (q_ - 1));
  padded.append(q_ - 1, pad_);
  padded.append(text);
  padded.append(q_ - 1, pad_);

  std::unordered_map<TokenId, uint32_t> counts;
  std::unordered_map<std::string, uint32_t> occurrence;  // tag mode
  if (padded.size() >= static_cast<size_t>(q_)) {
    for (size_t i = 0; i + q_ <= padded.size(); ++i) {
      std::string_view gram(padded.data() + i, q_);
      if (!tag_occurrences_) {
        ++counts[dict->Intern(gram)];
        continue;
      }
      uint32_t seen = occurrence[std::string(gram)]++;
      if (seen == 0) {
        ++counts[dict->Intern(gram)];
      } else {
        // '\x01' cannot occur in text, so tagged names never collide with
        // real grams.
        std::string tagged(gram);
        tagged.push_back('\x01');
        tagged.append(std::to_string(seen));
        ++counts[dict->Intern(tagged)];
      }
    }
  }
  return CountsToPairs(counts);
}

}  // namespace ssjoin
