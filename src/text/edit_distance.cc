#include "text/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ssjoin {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

bool EditDistanceAtMost(std::string_view a, std::string_view b, size_t k) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > k) return false;
  if (k == 0) return a == b;

  // Banded DP: only cells with |i - j| <= k can hold values <= k.
  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> row(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), k); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = (i > k) ? i - k : 0;
    size_t hi = std::min(b.size(), i + k);
    size_t diag = (lo > 0) ? row[lo - 1] : kInf;  // D[i-1][lo-1]
    if (lo == 0) {
      diag = row[0];
      row[0] = i;
    }
    size_t row_min = (lo == 0) ? row[0] : kInf;
    if (lo > 0) row[lo - 1] = kInf;  // outside the band for this row
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t up = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
      row_min = std::min(row_min, row[j]);
    }
    if (hi < b.size()) row[hi + 1] = kInf;  // invalidate stale cell
    if (row_min > k) return false;          // the whole band exceeded k
  }
  return row[b.size()] <= k;
}

long QGramCountLowerBound(size_t len_a, size_t len_b, int q, int k) {
  long longest = static_cast<long>(std::max(len_a, len_b));
  return longest - 1 - static_cast<long>(q) * (k - 1);
}

}  // namespace ssjoin
