#ifndef SSJOIN_TEXT_TOKENIZER_H_
#define SSJOIN_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/token_dictionary.h"

namespace ssjoin {

/// Converts text into the *set* of its words (Table 1's "All-words"
/// similarity function). Duplicate words within one record are kept as a
/// single set element; the multiplicity is reported separately so TF-IDF
/// weighting can use term frequency.
class WordTokenizer {
 public:
  /// Appends (token, within-record frequency) pairs for `text` into `dict`.
  /// The returned tokens are distinct; order is unspecified.
  std::vector<std::pair<TokenId, uint32_t>> Tokenize(
      std::string_view text, TokenDictionary* dict) const;
};

/// Converts text into the set of its q-grams (Table 1's "All-3grams").
/// The string is padded with q-1 copies of `pad` on both ends, the standard
/// construction that makes the edit-distance q-gram count filter
/// (Section 5.2.3) valid at string boundaries.
///
/// With `tag_occurrences`, the i-th repetition of a gram within one record
/// is interned as a distinct token ("gram", "gram\x01 1", "gram\x01 2", ...),
/// so that the *set* intersection of two tokenized records equals their
/// q-gram *multiset* intersection — the quantity the edit-distance count
/// filter bounds. Records become exact multiset representations while the
/// join algorithms keep set semantics.
class QGramTokenizer {
 public:
  explicit QGramTokenizer(int q, char pad = '$', bool tag_occurrences = false);

  int q() const { return q_; }

  std::vector<std::pair<TokenId, uint32_t>> Tokenize(
      std::string_view text, TokenDictionary* dict) const;

 private:
  int q_;
  char pad_;
  bool tag_occurrences_;
};

}  // namespace ssjoin

#endif  // SSJOIN_TEXT_TOKENIZER_H_
