#include "text/token_dictionary.h"

#include "util/logging.h"

namespace ssjoin {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  ids_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kInvalidToken : it->second;
}

const std::string& TokenDictionary::ToString(TokenId id) const {
  SSJOIN_DCHECK(id < tokens_.size());
  return tokens_[id];
}

}  // namespace ssjoin
