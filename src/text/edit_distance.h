#ifndef SSJOIN_TEXT_EDIT_DISTANCE_H_
#define SSJOIN_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace ssjoin {

/// Full Levenshtein distance (unit-cost insert/delete/substitute) between
/// `a` and `b`. O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Returns true iff EditDistance(a, b) <= k, computed with the banded
/// (Ukkonen) DP in O(k·min(|a|,|b|)) time. This is the verifier that turns
/// the q-gram candidate join of Section 5.2.3 into an exact
/// edit-distance join.
bool EditDistanceAtMost(std::string_view a, std::string_view b, size_t k);

/// Lower bound from Section 5.2.3: two strings within edit distance k share
/// at least max(|a|,|b|) - 1 - q*(k-1) positional q-grams. Can be negative
/// (meaning the filter is vacuous), hence the signed return type.
long QGramCountLowerBound(size_t len_a, size_t len_b, int q, int k);

}  // namespace ssjoin

#endif  // SSJOIN_TEXT_EDIT_DISTANCE_H_
