#ifndef SSJOIN_TEXT_NORMALIZER_H_
#define SSJOIN_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace ssjoin {

/// Options controlling text canonicalization before tokenization.
struct NormalizerOptions {
  bool lowercase = true;
  /// Replace every non-alphanumeric character with a space.
  bool strip_punctuation = true;
  /// Collapse runs of whitespace into a single space and trim the ends.
  bool collapse_whitespace = true;
};

/// Canonicalizes raw text (ASCII) so that trivially different spellings of
/// the same record tokenize identically. Mirrors the cleanup the paper
/// applies before segmenting citations and addresses.
class Normalizer {
 public:
  explicit Normalizer(NormalizerOptions options = {}) : options_(options) {}

  std::string Normalize(std::string_view text) const;

 private:
  NormalizerOptions options_;
};

}  // namespace ssjoin

#endif  // SSJOIN_TEXT_NORMALIZER_H_
