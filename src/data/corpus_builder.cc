#include "data/corpus_builder.h"

#include "text/normalizer.h"
#include "text/tokenizer.h"

namespace ssjoin {

namespace {

Record RecordFromPairs(std::vector<std::pair<TokenId, uint32_t>> pairs) {
  // Set semantics: multiplicity collapses to presence with unit score;
  // TF-IDF weighting re-derives term frequency from the corpus later via
  // term_frequencies(), and within-record multiplicity is folded into
  // text_length for q-gram corpora.
  std::vector<TokenId> tokens;
  tokens.reserve(pairs.size());
  for (const auto& [token, count] : pairs) tokens.push_back(token);
  return Record::FromTokens(std::move(tokens));
}

}  // namespace

RecordSet BuildWordCorpus(const std::vector<std::string>& texts,
                          TokenDictionary* dict,
                          const CorpusBuilderOptions& options) {
  Normalizer normalizer;
  WordTokenizer tokenizer;
  RecordSet set;
  for (const std::string& raw : texts) {
    std::string text = options.normalize ? normalizer.Normalize(raw) : raw;
    Record record = RecordFromPairs(tokenizer.Tokenize(text, dict));
    record.set_text_length(static_cast<uint32_t>(text.size()));
    set.Add(std::move(record), options.keep_text ? text : std::string());
  }
  return set;
}

RecordSet BuildQGramCorpus(const std::vector<std::string>& texts, int q,
                           TokenDictionary* dict,
                           const CorpusBuilderOptions& options) {
  Normalizer normalizer;
  // Occurrence tagging makes set intersection equal multiset q-gram
  // intersection, which the edit-distance count filter requires.
  QGramTokenizer tokenizer(q, '$', /*tag_occurrences=*/true);
  RecordSet set;
  for (const std::string& raw : texts) {
    std::string text = options.normalize ? normalizer.Normalize(raw) : raw;
    Record record = RecordFromPairs(tokenizer.Tokenize(text, dict));
    record.set_text_length(static_cast<uint32_t>(text.size()));
    set.Add(std::move(record), options.keep_text ? text : std::string());
  }
  return set;
}

}  // namespace ssjoin
