#include "data/synth_text.h"

#include <unordered_set>

#include "util/logging.h"

namespace ssjoin {

namespace {

constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",
                                   "k",  "l",  "m",  "n",  "p",  "r",  "s",
                                   "t",  "v",  "w",  "z",  "ch", "sh", "th",
                                   "br", "cr", "dr", "pr", "st", "tr", "kh"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ee", "oo"};
constexpr const char* kCodas[] = {"",  "",  "",  "n", "r", "l",
                                  "s", "t", "m", "k", "nd", "sh"};

std::string RandomSyllable(Rng& rng) {
  std::string s = kOnsets[rng.UniformU32(std::size(kOnsets))];
  s += kVowels[rng.UniformU32(std::size(kVowels))];
  s += kCodas[rng.UniformU32(std::size(kCodas))];
  return s;
}

std::string RandomWord(Rng& rng, int min_syllables, int max_syllables) {
  int n = rng.UniformInt(min_syllables, max_syllables);
  std::string word;
  for (int i = 0; i < n; ++i) word += RandomSyllable(rng);
  return word;
}

std::vector<std::string> SynthesizeDistinct(uint32_t count, Rng& rng,
                                            bool capitalize,
                                            int max_syllables) {
  std::vector<std::string> pool;
  pool.reserve(count);
  std::unordered_set<std::string> seen;
  int salt = 0;
  while (pool.size() < count) {
    std::string word = RandomWord(rng, 2, max_syllables);
    if (capitalize && !word.empty()) {
      word[0] = static_cast<char>(word[0] - 'a' + 'A');
    }
    if (!seen.insert(word).second) {
      // Collision: salt with a digit suffix to guarantee progress even when
      // the syllable space is nearly exhausted.
      word += std::to_string(salt++ % 10);
      if (!seen.insert(word).second) continue;
    }
    pool.push_back(std::move(word));
  }
  return pool;
}

}  // namespace

std::vector<std::string> SynthesizeWordPool(uint32_t count, Rng& rng) {
  return SynthesizeDistinct(count, rng, /*capitalize=*/false,
                            /*max_syllables=*/4);
}

std::vector<std::string> SynthesizeNamePool(uint32_t count, Rng& rng) {
  // Names are kept shorter than title words so the address corpus hits
  // the paper's ~14-character names / ~47-gram records.
  return SynthesizeDistinct(count, rng, /*capitalize=*/true,
                            /*max_syllables=*/3);
}

std::string ApplyTypo(const std::string& text, Rng& rng) {
  if (text.empty()) return text;
  std::string out = text;
  uint32_t pos = rng.UniformU32(static_cast<uint32_t>(out.size()));
  switch (rng.UniformU32(4)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng.UniformU32(26));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(out.begin() + pos,
                 static_cast<char>('a' + rng.UniformU32(26)));
      break;
    case 3:  // transpose
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string ApplyTypos(const std::string& text, int count, Rng& rng) {
  std::string out = text;
  for (int i = 0; i < count; ++i) out = ApplyTypo(out, rng);
  return out;
}

}  // namespace ssjoin
