#ifndef SSJOIN_DATA_CORPUS_STATS_H_
#define SSJOIN_DATA_CORPUS_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record_set.h"

namespace ssjoin {

/// Summary statistics over a RecordSet: the quantities Table 1 reports per
/// similarity function, plus skew diagnostics used to validate that the
/// synthetic corpora reproduce the paper's frequency distributions.
struct CorpusStats {
  uint64_t num_records = 0;
  /// Average number of distinct elements per set (Table 1 column 2).
  double average_set_size = 0;
  /// Number of distinct elements over all sets (Table 1 column 3).
  uint64_t num_distinct_elements = 0;
  /// Total word occurrences W (Section 4's index-size unit).
  uint64_t total_occurrences = 0;
  uint64_t max_set_size = 0;
  uint64_t min_set_size = 0;
  /// Document frequency of the most frequent element.
  uint64_t max_doc_frequency = 0;
  /// Fraction of total occurrences contributed by the 1% most frequent
  /// elements; close to 1 for highly skewed (Zipfian) corpora.
  double top1pct_occurrence_share = 0;

  std::string ToString() const;
};

/// Computes CorpusStats in one pass over `records`.
CorpusStats ComputeCorpusStats(const RecordSet& records);

/// Document frequencies sorted descending; used to pick stopwords and to
/// plot frequency skew.
std::vector<uint64_t> SortedDocFrequencies(const RecordSet& records);

/// Returns the ids of the `count` most document-frequent tokens
/// (ties broken by token id). Used by Probe-stopWords (Section 3.1).
std::vector<TokenId> TopFrequentTokens(const RecordSet& records, size_t count);

}  // namespace ssjoin

#endif  // SSJOIN_DATA_CORPUS_STATS_H_
