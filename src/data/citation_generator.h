#ifndef SSJOIN_DATA_CITATION_GENERATOR_H_
#define SSJOIN_DATA_CITATION_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssjoin {

/// Knobs for the synthetic citation corpus (stand-in for the paper's
/// CiteSeer download: 250k citations, avg 24 words/record, ~70k distinct
/// words, many near-duplicate entries because the same paper is cited in
/// many bibliographies with small formatting differences).
struct CitationGeneratorOptions {
  uint32_t num_records = 10000;
  uint64_t seed = 42;

  /// Fraction of records that are perturbed re-citations of an earlier
  /// base record. The paper's citation data is duplicate-heavy, which is
  /// what makes Probe Cluster shine there (Section 3.4).
  double duplicate_fraction = 0.5;

  /// Distinct base papers grow with corpus size; vocabulary below scales
  /// the Table-1 figure (70000 words / 250000 records) to num_records.
  uint32_t title_vocabulary = 0;  // 0 = scale automatically
  double zipf_exponent = 1.05;    // word-frequency skew

  uint32_t num_authors = 120;  // "100 most cited authors" pool
  uint32_t num_venues = 250;

  int min_title_words = 7;
  int max_title_words = 16;
  int min_authors_per_paper = 1;
  int max_authors_per_paper = 4;

  /// Perturbations applied to a duplicate: each independent.
  double drop_word_prob = 0.12;    // per title word
  double typo_word_prob = 0.08;    // per word, one char typo
  double abbreviate_prob = 0.5;    // first names -> initials
  double change_pages_prob = 0.4;  // re-roll page numbers
};

/// Generated corpus with ground truth: texts plus, for each record, the
/// id of the underlying paper it cites. Records with equal paper_id are
/// true duplicates — the labels quality evaluations score against.
struct GeneratedCitations {
  std::vector<std::string> texts;
  std::vector<uint32_t> paper_id;  // parallel to texts
};

/// Generates citation-like text records ("author(s). title. venue, year,
/// pages") with controlled duplication. Deterministic given the seed.
class CitationGenerator {
 public:
  explicit CitationGenerator(CitationGeneratorOptions options);

  /// Produces options.num_records raw citation strings.
  std::vector<std::string> Generate() const;

  /// Same stream of records plus the ground-truth paper id per record.
  GeneratedCitations GenerateWithProvenance() const;

 private:
  CitationGeneratorOptions options_;
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_CITATION_GENERATOR_H_
