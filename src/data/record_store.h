#ifndef SSJOIN_DATA_RECORD_STORE_H_
#define SSJOIN_DATA_RECORD_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "data/record_set.h"
#include "util/status.h"

namespace ssjoin {

/// Disk-backed record storage standing in for "the database" that
/// ClusterMem's second phase re-fetches records from (Section 4.2). Records
/// are serialized sequentially; an in-memory offset table supports random
/// Fetch by RecordId, while batched access in scan order stays sequential
/// on disk exactly as the paper's I/O discussion prescribes.
class RecordStore {
 public:
  RecordStore() = default;

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;

  /// Serializes every record of `records` (with retained text) to `path`,
  /// replacing any existing file, and returns an open store.
  static Result<RecordStore> Create(const std::string& path,
                                    const RecordSet& records);

  /// Opens an existing store, rebuilding the offset table with one
  /// sequential scan.
  static Result<RecordStore> Open(const std::string& path);

  size_t size() const { return offsets_.size(); }

  /// Reads record `id`. `text` may be nullptr if the caller does not need
  /// the original string.
  Status Fetch(RecordId id, Record* record, std::string* text) const;

 private:
  /// The whole file is kept as an in-memory string after open; datasets in
  /// this reproduction are laptop-scale, and keeping bytes (not parsed
  /// Records) preserves the phase-2 deserialization cost structure.
  std::string data_;
  std::vector<uint64_t> offsets_;
};

/// Serializes one record (tokens delta-coded, scores as IEEE doubles,
/// norm, text_length and raw text) into `out`.
void SerializeRecord(RecordView record, const std::string& text,
                     std::string* out);

/// Deserializes a record starting at data[*offset]; advances *offset.
/// Returns false on malformed input.
bool DeserializeRecord(const std::string& data, size_t* offset,
                       Record* record, std::string* text);

}  // namespace ssjoin

#endif  // SSJOIN_DATA_RECORD_STORE_H_
