#include "data/record_store.h"

#include <cstring>
#include <fstream>

#include "util/logging.h"
#include "util/varint.h"

namespace ssjoin {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'J', 'R'};

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  out->append(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

bool GetDouble(const std::string& data, size_t* offset, double* v) {
  if (*offset + sizeof(uint64_t) > data.size()) return false;
  uint64_t bits;
  std::memcpy(&bits, data.data() + *offset, sizeof(bits));
  *offset += sizeof(bits);
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace

void SerializeRecord(RecordView record, const std::string& text,
                     std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(record.size()));
  uint32_t prev = 0;
  for (size_t i = 0; i < record.size(); ++i) {
    PutVarint32(out, record.token(i) - prev);
    prev = record.token(i);
  }
  for (size_t i = 0; i < record.size(); ++i) PutDouble(out, record.score(i));
  PutDouble(out, record.norm());
  PutVarint32(out, record.text_length());
  PutVarint32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

bool DeserializeRecord(const std::string& data, size_t* offset,
                       Record* record, std::string* text) {
  uint32_t count = 0;
  if (!GetVarint32(data, offset, &count)) return false;
  std::vector<std::pair<TokenId, double>> weighted(count);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(data, offset, &delta)) return false;
    prev += delta;
    weighted[i].first = prev;
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (!GetDouble(data, offset, &weighted[i].second)) return false;
  }
  double norm = 0;
  if (!GetDouble(data, offset, &norm)) return false;
  uint32_t text_length = 0;
  if (!GetVarint32(data, offset, &text_length)) return false;
  uint32_t text_size = 0;
  if (!GetVarint32(data, offset, &text_size)) return false;
  if (*offset + text_size > data.size()) return false;

  *record = Record::FromWeightedTokens(std::move(weighted));
  record->set_norm(norm);
  record->set_text_length(text_length);
  if (text != nullptr) {
    text->assign(data, *offset, text_size);
  }
  *offset += text_size;
  return true;
}

Result<RecordStore> RecordStore::Create(const std::string& path,
                                        const RecordSet& records) {
  std::string buffer(kMagic, sizeof(kMagic));
  PutVarint32(&buffer, static_cast<uint32_t>(records.size()));
  RecordStore store;
  for (RecordId id = 0; id < records.size(); ++id) {
    store.offsets_.push_back(buffer.size());
    SerializeRecord(records.record(id), records.text(id), &buffer);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) return Status::IOError("short write: " + path);
  out.close();
  store.data_ = std::move(buffer);
  return store;
}

Result<RecordStore> RecordStore::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (buffer.size() < sizeof(kMagic) ||
      std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("bad magic in record store: " + path);
  }
  size_t offset = sizeof(kMagic);
  uint32_t count = 0;
  if (!GetVarint32(buffer, &offset, &count)) {
    return Status::IOError("truncated record count: " + path);
  }
  RecordStore store;
  store.offsets_.reserve(count);
  Record scratch;
  for (uint32_t i = 0; i < count; ++i) {
    store.offsets_.push_back(offset);
    if (!DeserializeRecord(buffer, &offset, &scratch, nullptr)) {
      return Status::IOError("corrupt record in store: " + path);
    }
  }
  store.data_ = std::move(buffer);
  return store;
}

Status RecordStore::Fetch(RecordId id, Record* record,
                          std::string* text) const {
  if (id >= offsets_.size()) {
    return Status::OutOfRange("record id out of range");
  }
  size_t offset = offsets_[id];
  if (!DeserializeRecord(data_, &offset, record, text)) {
    return Status::Internal("corrupt record payload");
  }
  return Status::OK();
}

}  // namespace ssjoin
