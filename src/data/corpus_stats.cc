#include "data/corpus_stats.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace ssjoin {

std::string CorpusStats::ToString() const {
  std::ostringstream out;
  out << "records=" << num_records << " avg_set_size=" << average_set_size
      << " distinct_elements=" << num_distinct_elements
      << " total_occurrences=" << total_occurrences
      << " set_size=[" << min_set_size << "," << max_set_size << "]"
      << " max_df=" << max_doc_frequency
      << " top1pct_share=" << top1pct_occurrence_share;
  return out.str();
}

CorpusStats ComputeCorpusStats(const RecordSet& records) {
  CorpusStats stats;
  stats.num_records = records.size();
  stats.total_occurrences = records.total_token_occurrences();
  stats.average_set_size = records.average_record_size();

  uint64_t min_size = UINT64_MAX;
  uint64_t max_size = 0;
  for (RecordId id = 0; id < records.size(); ++id) {
    uint64_t size = records.record_size(id);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  stats.min_set_size = records.empty() ? 0 : min_size;
  stats.max_set_size = max_size;

  std::vector<uint64_t> freqs = SortedDocFrequencies(records);
  stats.num_distinct_elements =
      static_cast<uint64_t>(std::count_if(freqs.begin(), freqs.end(),
                                          [](uint64_t f) { return f > 0; }));
  stats.max_doc_frequency = freqs.empty() ? 0 : freqs.front();

  if (stats.total_occurrences > 0 && !freqs.empty()) {
    size_t top = std::max<size_t>(1, stats.num_distinct_elements / 100);
    uint64_t top_sum = std::accumulate(
        freqs.begin(), freqs.begin() + std::min(top, freqs.size()),
        uint64_t{0});
    stats.top1pct_occurrence_share =
        static_cast<double>(top_sum) /
        static_cast<double>(stats.total_occurrences);
  }
  return stats;
}

std::vector<uint64_t> SortedDocFrequencies(const RecordSet& records) {
  std::vector<uint64_t> freqs;
  freqs.reserve(records.vocabulary_size());
  for (TokenId t = 0; t < records.vocabulary_size(); ++t) {
    freqs.push_back(records.doc_frequency(t));
  }
  std::sort(freqs.begin(), freqs.end(), std::greater<uint64_t>());
  return freqs;
}

std::vector<TokenId> TopFrequentTokens(const RecordSet& records,
                                       size_t count) {
  // The frequency order lives in the RecordSet's cached TokenStats (same
  // tie-break: descending df, ascending token id); just take the prefix.
  const std::vector<TokenId>& by_frequency =
      records.token_stats().tokens_by_frequency;
  if (by_frequency.size() <= count) return by_frequency;
  return std::vector<TokenId>(by_frequency.begin(),
                              by_frequency.begin() + count);
}

}  // namespace ssjoin
