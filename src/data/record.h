#ifndef SSJOIN_DATA_RECORD_H_
#define SSJOIN_DATA_RECORD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/record_view.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// Builder for one set-valued attribute value: the sorted set of its
/// tokens, each with a score. Scores are what the general framework of
/// Section 5 calls score(w, r); they default to 1. `norm` caches the
/// predicate-defined record score ||r|| (Equation 1) and `text_length`
/// carries the original string length used by the edit-distance threshold.
///
/// Records only exist at corpus-construction and deserialization
/// boundaries; once Add()ed to a RecordSet the tokens and scores live in
/// the set's columnar arena, and all hot paths operate on RecordView.
class Record {
 public:
  Record() = default;

  /// Builds a record from possibly-unsorted, possibly-duplicated tokens;
  /// duplicates are collapsed (set semantics) with unit scores.
  static Record FromTokens(std::vector<TokenId> tokens);

  /// Builds a record from (token, score) pairs; tokens must be distinct.
  static Record FromWeightedTokens(
      std::vector<std::pair<TokenId, double>> weighted);

  /// Deep-copies a view back into an owning builder (cluster summaries).
  static Record FromView(RecordView view);

  /// Token-set union of `a` and `b` with per-token score = max of the two:
  /// the cluster summary of Section 5.1.3 (score(w, C) = max over members).
  /// The result's norm is min(a.norm, b.norm) (= ||C||) and text_length is
  /// min of the two (the shortest member drives the edit-distance bound).
  static Record UnionMax(RecordView a, RecordView b);

  /// Non-owning view over the builder's storage; valid while the Record
  /// is alive and unmodified.
  RecordView view() const {
    return RecordView(tokens_.data(), scores_.data(),
                      static_cast<uint32_t>(tokens_.size()), norm_,
                      text_length_);
  }

  /// Implicit view conversion (std::string -> std::string_view style), so
  /// builders flow into RecordView-taking APIs without boilerplate.
  operator RecordView() const { return view(); }  // NOLINT

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  /// Tokens in strictly increasing order.
  const std::vector<TokenId>& tokens() const { return tokens_; }
  /// scores()[i] is the score of tokens()[i].
  const std::vector<double>& scores() const { return scores_; }

  TokenId token(size_t i) const { return tokens_[i]; }
  double score(size_t i) const { return scores_[i]; }

  /// Binary-searches for `t`; returns its position or SIZE_MAX.
  size_t Find(TokenId t) const { return view().Find(t); }
  bool Contains(TokenId t) const { return view().Contains(t); }

  /// Rewrites the score of tokens()[i].
  void set_score(size_t i, double score) { scores_[i] = score; }

  double norm() const { return norm_; }
  void set_norm(double norm) { norm_ = norm; }

  uint32_t text_length() const { return text_length_; }
  void set_text_length(uint32_t len) { text_length_ = len; }

  /// Sum over common tokens of score(w, r) * score(w, s).
  double OverlapWith(const Record& other) const {
    return view().OverlapWith(other.view());
  }

  /// Number of common tokens, ignoring scores.
  size_t IntersectionSize(const Record& other) const {
    return view().IntersectionSize(other.view());
  }

 private:
  std::vector<TokenId> tokens_;
  std::vector<double> scores_;
  double norm_ = 0;
  uint32_t text_length_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_RECORD_H_
