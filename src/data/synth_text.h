#ifndef SSJOIN_DATA_SYNTH_TEXT_H_
#define SSJOIN_DATA_SYNTH_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ssjoin {

/// Shared vocabulary machinery for the synthetic corpora. The paper's real
/// datasets (CiteSeer citations, Pune addresses) are not redistributable;
/// what the join algorithms are sensitive to is (a) the skewed Zipfian
/// frequency distribution of elements, (b) average set size, and (c) the
/// presence of near-duplicate records. These helpers synthesize
/// pronounceable pseudo-words so that q-gram tokenizations also behave like
/// natural text (shared prefixes/suffixes, non-uniform gram frequencies).

/// Generates `count` distinct pseudo-words of 2-4 syllables.
std::vector<std::string> SynthesizeWordPool(uint32_t count, Rng& rng);

/// Generates `count` distinct capitalized pseudo-names (for authors,
/// streets, cities).
std::vector<std::string> SynthesizeNamePool(uint32_t count, Rng& rng);

/// Applies a single random character-level typo (substitute, delete,
/// insert, or transpose) to `text`. No-op on empty input.
std::string ApplyTypo(const std::string& text, Rng& rng);

/// Applies `count` independent typos.
std::string ApplyTypos(const std::string& text, int count, Rng& rng);

}  // namespace ssjoin

#endif  // SSJOIN_DATA_SYNTH_TEXT_H_
