#include "data/segmented_corpus.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

void SegmentedCorpus::Append(std::shared_ptr<const RecordSet> segment) {
  SSJOIN_CHECK(segment != nullptr);
  offsets_.push_back(size() + segment->size());
  segments_.push_back(std::move(segment));
}

SegmentedCorpus::Location SegmentedCorpus::Locate(RecordId pos) const {
  SSJOIN_DCHECK(pos < size());
  // First segment whose cumulative end exceeds pos.
  size_t s = static_cast<size_t>(
      std::upper_bound(offsets_.begin(), offsets_.end(), pos) -
      offsets_.begin());
  return {s, pos - segment_offset(s)};
}

RecordView SegmentedCorpus::record(RecordId pos) const {
  Location loc = Locate(pos);
  return segments_[loc.segment]->record(loc.local);
}

const std::string& SegmentedCorpus::text(RecordId pos) const {
  Location loc = Locate(pos);
  return segments_[loc.segment]->text(loc.local);
}

}  // namespace ssjoin
