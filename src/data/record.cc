#include "data/record.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

Record Record::FromTokens(std::vector<TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  Record r;
  r.tokens_ = std::move(tokens);
  r.scores_.assign(r.tokens_.size(), 1.0);
  return r;
}

Record Record::FromWeightedTokens(
    std::vector<std::pair<TokenId, double>> weighted) {
  std::sort(weighted.begin(), weighted.end());
  Record r;
  r.tokens_.reserve(weighted.size());
  r.scores_.reserve(weighted.size());
  for (const auto& [token, score] : weighted) {
    SSJOIN_DCHECK(r.tokens_.empty() || r.tokens_.back() != token);
    r.tokens_.push_back(token);
    r.scores_.push_back(score);
  }
  return r;
}

Record Record::FromView(RecordView view) {
  Record r;
  r.tokens_.assign(view.tokens().begin(), view.tokens().end());
  r.scores_.assign(view.scores().begin(), view.scores().end());
  r.norm_ = view.norm();
  r.text_length_ = view.text_length();
  return r;
}

Record Record::UnionMax(RecordView a, RecordView b) {
  Record out;
  out.tokens_.reserve(a.size() + b.size());
  out.scores_.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a.token(i) < b.token(j))) {
      out.tokens_.push_back(a.token(i));
      out.scores_.push_back(a.score(i));
      ++i;
    } else if (i >= a.size() || b.token(j) < a.token(i)) {
      out.tokens_.push_back(b.token(j));
      out.scores_.push_back(b.score(j));
      ++j;
    } else {
      out.tokens_.push_back(a.token(i));
      out.scores_.push_back(std::max(a.score(i), b.score(j)));
      ++i;
      ++j;
    }
  }
  out.norm_ = std::min(a.norm(), b.norm());
  out.text_length_ = std::min(a.text_length(), b.text_length());
  return out;
}

}  // namespace ssjoin
