#include "data/record.h"

#include <algorithm>

#include "util/logging.h"

namespace ssjoin {

Record Record::FromTokens(std::vector<TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  Record r;
  r.tokens_ = std::move(tokens);
  r.scores_.assign(r.tokens_.size(), 1.0);
  return r;
}

Record Record::FromWeightedTokens(
    std::vector<std::pair<TokenId, double>> weighted) {
  std::sort(weighted.begin(), weighted.end());
  Record r;
  r.tokens_.reserve(weighted.size());
  r.scores_.reserve(weighted.size());
  for (const auto& [token, score] : weighted) {
    SSJOIN_DCHECK(r.tokens_.empty() || r.tokens_.back() != token);
    r.tokens_.push_back(token);
    r.scores_.push_back(score);
  }
  return r;
}

size_t Record::Find(TokenId t) const {
  auto it = std::lower_bound(tokens_.begin(), tokens_.end(), t);
  if (it == tokens_.end() || *it != t) return SIZE_MAX;
  return static_cast<size_t>(it - tokens_.begin());
}

double Record::OverlapWith(const Record& other) const {
  double total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < tokens_.size() && j < other.tokens_.size()) {
    if (tokens_[i] < other.tokens_[j]) {
      ++i;
    } else if (tokens_[i] > other.tokens_[j]) {
      ++j;
    } else {
      total += scores_[i] * other.scores_[j];
      ++i;
      ++j;
    }
  }
  return total;
}

Record Record::UnionMax(const Record& a, const Record& b) {
  Record out;
  out.tokens_.reserve(a.size() + b.size());
  out.scores_.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a.token(i) < b.token(j))) {
      out.tokens_.push_back(a.token(i));
      out.scores_.push_back(a.score(i));
      ++i;
    } else if (i >= a.size() || b.token(j) < a.token(i)) {
      out.tokens_.push_back(b.token(j));
      out.scores_.push_back(b.score(j));
      ++j;
    } else {
      out.tokens_.push_back(a.token(i));
      out.scores_.push_back(std::max(a.score(i), b.score(j)));
      ++i;
      ++j;
    }
  }
  out.norm_ = std::min(a.norm_, b.norm_);
  out.text_length_ = std::min(a.text_length_, b.text_length_);
  return out;
}

size_t Record::IntersectionSize(const Record& other) const {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < tokens_.size() && j < other.tokens_.size()) {
    if (tokens_[i] < other.tokens_[j]) {
      ++i;
    } else if (tokens_[i] > other.tokens_[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace ssjoin
