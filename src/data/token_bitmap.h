#ifndef SSJOIN_DATA_TOKEN_BITMAP_H_
#define SSJOIN_DATA_TOKEN_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "data/record_view.h"

namespace ssjoin {

/// Fixed-width per-record token bitmaps (the Bitmap Filter idea): every
/// record carries kTokenBitmapBits parity bits, bit h(t) FLIPPED once per
/// token, so a bit is set iff an odd number of the record's tokens hash
/// to it. For two records r, s,
///
///   popcount(B_r XOR B_s) <= |r Δ s| = |r| + |s| - 2 |r ∩ s|,
///
/// because every bit set in the XOR needs at least one symmetric-
/// difference token hashing to it (tokens common to both flip both sides
/// and cancel). Rearranged, that yields the candidate-pruning upper bound
///
///   |r ∩ s| <= (|r| + |s| - popcount(B_r XOR B_s)) / 2.
///
/// (The naive AND-of-bitmaps popcount is NOT a bound in either direction
/// once distinct tokens collide on a bit, which is why the filter is
/// parity/XOR based.) The bound degrades gracefully under saturation: a
/// fully saturated or fully zeroed XOR just returns the vacuous
/// (|r| + |s|) / 2 bound and prunes nothing — never a wrong answer.
///
/// Any PREFIX of the words keeps the inequality (dropping words can only
/// shrink the popcount), which is what lets callers trade filter memory
/// bandwidth for precision at probe time (`--bitmap-bits`).
inline constexpr size_t kTokenBitmapWords = 4;
inline constexpr size_t kTokenBitmapBits = kTokenBitmapWords * 64;

/// One record's slot in a RecordSet's bitmap arena: the parity words plus
/// the record's token count, padded to exactly one cache line. A probe-
/// time gate lookup needs both the bitmap AND the candidate's token count
/// (the bound is (|r| + |s| - xor_pop) / 2); storing the count inline
/// resolves the whole filter input with a single aligned 64-byte load
/// instead of scattering a second read across the CSR offsets array —
/// the lookup runs once per heap-popped candidate, so its memory traffic
/// is the filter's entire cost. Only the parity words are persisted
/// (checkpoints rebuild the count from the record itself).
struct alignas(64) TokenBitmapEntry {
  uint64_t bits[kTokenBitmapWords] = {};
  uint64_t tokens = 0;  // the record's token count
  uint64_t pad[8 - kTokenBitmapWords - 1] = {};
};
static_assert(sizeof(TokenBitmapEntry) == 64,
              "gate lookups rely on one arena entry per cache line");

/// Bit position of token `t`: multiplicative (Fibonacci) hashing by the
/// 64-bit golden ratio, top bits kept — adjacent token ids (the common
/// case: dictionary-assigned, dense) scatter across the whole bitmap.
inline uint32_t TokenBitmapBit(TokenId t) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull) >>
      (64 - std::bit_width(kTokenBitmapBits - 1)));
}

/// Flips token `t`'s parity bit in `words` (kTokenBitmapWords wide).
inline void TokenBitmapFlip(uint64_t* words, TokenId t) {
  const uint32_t bit = TokenBitmapBit(t);
  words[bit >> 6] ^= uint64_t{1} << (bit & 63);
}

/// popcount(a XOR b) over the first `words` words (1..kTokenBitmapWords).
inline uint32_t TokenBitmapXorPopcount(const uint64_t* a, const uint64_t* b,
                                       size_t words) {
  uint32_t pop = 0;
  for (size_t w = 0; w < words; ++w) {
    pop += static_cast<uint32_t>(std::popcount(a[w] ^ b[w]));
  }
  return pop;
}

/// The filter's overlap bound: an UPPER bound on the number of distinct
/// common tokens of two records with `tokens_a`/`tokens_b` tokens and
/// parity bitmaps `a`/`b`, using the first `words` words of each.
inline uint32_t TokenBitmapOverlapBound(const uint64_t* a, uint32_t tokens_a,
                                        const uint64_t* b, uint32_t tokens_b,
                                        size_t words) {
  const uint32_t xor_pop = TokenBitmapXorPopcount(a, b, words);
  // xor_pop <= |a Δ b| <= tokens_a + tokens_b, so this never wraps.
  return (tokens_a + tokens_b - xor_pop) / 2;
}

}  // namespace ssjoin

#endif  // SSJOIN_DATA_TOKEN_BITMAP_H_
