#ifndef SSJOIN_DATA_ADDRESS_GENERATOR_H_
#define SSJOIN_DATA_ADDRESS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ssjoin {

/// One generated address record, split into the name part and the address
/// part so the two Table-1 functions (All-3grams over everything,
/// Name-3grams over the name only) can be derived from the same corpus.
struct AddressRecord {
  std::string name;     // "lastname firstname middlename"
  std::string address;  // street/area/city/pin fields
  /// Full text: name + " " + address.
  std::string FullText() const { return name + " " + address; }
};

/// Knobs for the synthetic address corpus (stand-in for the Pune utility
/// list: 500k records, avg 47 3-grams over the whole record, ~14-char
/// names, fewer exact-duplicate clusters than the citation data but many
/// typo-level variants).
struct AddressGeneratorOptions {
  uint32_t num_records = 10000;
  uint64_t seed = 1234;

  /// Fraction of records that are typo-perturbed copies of an earlier one
  /// (the same household appearing in several utility databases).
  double duplicate_fraction = 0.25;

  uint32_t num_last_names = 400;
  uint32_t num_first_names = 400;
  uint32_t num_streets = 600;
  uint32_t num_areas = 120;
  uint32_t num_cities = 15;

  /// Typos per duplicated record (drawn uniformly in [1, max]).
  int max_typos_per_duplicate = 3;
};

/// Generates address-like records. Deterministic given the seed.
class AddressGenerator {
 public:
  explicit AddressGenerator(AddressGeneratorOptions options);

  std::vector<AddressRecord> Generate() const;

  /// Convenience: FullText() of every generated record.
  std::vector<std::string> GenerateFullTexts() const;

 private:
  AddressGeneratorOptions options_;
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_ADDRESS_GENERATOR_H_
