#include "data/record_set.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ssjoin {

RecordId RecordSet::Add(Record record, std::string text) {
  RecordId id = static_cast<RecordId>(records_.size());
  for (size_t i = 0; i < record.size(); ++i) {
    TokenId t = record.token(i);
    if (t >= doc_frequency_.size()) {
      doc_frequency_.resize(t + 1, 0);
      term_frequency_.resize(t + 1, 0);
    }
    ++doc_frequency_[t];
    ++term_frequency_[t];
  }
  total_occurrences_ += record.size();
  records_.push_back(std::move(record));
  texts_.push_back(std::move(text));
  return id;
}

uint64_t RecordSet::doc_frequency(TokenId t) const {
  return t < doc_frequency_.size() ? doc_frequency_[t] : 0;
}

uint64_t RecordSet::term_frequency(TokenId t) const {
  return t < term_frequency_.size() ? term_frequency_[t] : 0;
}

double RecordSet::average_record_size() const {
  if (records_.empty()) return 0;
  return static_cast<double>(total_occurrences_) /
         static_cast<double>(records_.size());
}

std::vector<RecordId> RecordSet::IdsByDecreasingSize() const {
  std::vector<RecordId> ids(records_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](RecordId a, RecordId b) {
    return records_[a].size() > records_[b].size();
  });
  return ids;
}

std::vector<RecordId> RecordSet::IdsByDecreasingNorm() const {
  std::vector<RecordId> ids(records_.size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](RecordId a, RecordId b) {
    return records_[a].norm() > records_[b].norm();
  });
  return ids;
}

}  // namespace ssjoin
