#include "data/record_set.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace ssjoin {

RecordSet RecordSet::MakeView(ViewSpec spec) {
  SSJOIN_CHECK(spec.tokens != nullptr || spec.total_occurrences == 0)
      << "view spec missing token arena";
  SSJOIN_CHECK(!spec.offsets.empty() && spec.offsets.front() == 0 &&
               spec.offsets.back() == spec.total_occurrences)
      << "view spec offsets inconsistent";
  const size_t n = spec.offsets.size() - 1;
  SSJOIN_CHECK(spec.norms.size() == n && spec.text_lengths.size() == n &&
               spec.bitmaps.size() == n)
      << "view spec per-record tables inconsistent";
  RecordSet set;
  set.view_tokens_ = spec.tokens;
  set.view_scores_ = spec.scores;
  set.view_text_offsets_ = spec.text_offsets;
  set.view_text_blob_ = spec.text_blob;
  set.view_vocabulary_size_ = spec.vocabulary_size;
  set.backing_ = std::move(spec.backing);
  set.offsets_ = std::move(spec.offsets);
  set.norms_ = std::move(spec.norms);
  set.text_lengths_ = std::move(spec.text_lengths);
  set.bitmap_arena_ = std::move(spec.bitmaps);
  set.total_occurrences_ = spec.total_occurrences;
  return set;
}

RecordId RecordSet::Add(RecordView record, std::string text) {
  SSJOIN_CHECK(!is_view()) << "RecordSet::Add on a view set";
  RecordId id = static_cast<RecordId>(size());
  for (size_t i = 0; i < record.size(); ++i) {
    TokenId t = record.token(i);
    SSJOIN_DCHECK(i == 0 || record.token(i - 1) < t);
    if (t >= doc_frequency_.size()) {
      doc_frequency_.resize(t + 1, 0);
      term_frequency_.resize(t + 1, 0);
    }
    ++doc_frequency_[t];
    ++term_frequency_[t];
  }
  // Self-insertion safety: `record` may view this set's own arena, whose
  // buffers can move when they grow. Resolve such views to an index first
  // and re-read through the (content-preserving) resized vectors.
  const size_t count = record.size();
  const size_t old_size = token_arena_.size();
  size_t self_offset = SIZE_MAX;
  if (count > 0 && !token_arena_.empty() &&
      record.tokens().data() >= token_arena_.data() &&
      record.tokens().data() + count <= token_arena_.data() + old_size) {
    self_offset = static_cast<size_t>(record.tokens().data() -
                                      token_arena_.data());
  }
  token_arena_.resize(old_size + count);
  score_arena_.resize(old_size + count);
  const TokenId* src_tokens = self_offset != SIZE_MAX
                                  ? token_arena_.data() + self_offset
                                  : record.tokens().data();
  const double* src_scores = self_offset != SIZE_MAX
                                 ? score_arena_.data() + self_offset
                                 : record.scores().data();
  std::copy(src_tokens, src_tokens + count, token_arena_.begin() + old_size);
  std::copy(src_scores, src_scores + count, score_arena_.begin() + old_size);
  bitmap_arena_.emplace_back();
  TokenBitmapEntry& entry = bitmap_arena_.back();
  for (size_t i = 0; i < count; ++i) {
    TokenBitmapFlip(entry.bits, token_arena_[old_size + i]);
  }
  entry.tokens = count;
  offsets_.push_back(offsets_.back() + count);
  norms_.push_back(record.norm());
  text_lengths_.push_back(record.text_length());
  texts_.push_back(std::move(text));
  total_occurrences_ += count;
  ++structure_version_;
  return id;
}

uint64_t RecordSet::doc_frequency(TokenId t) const {
  return t < doc_frequency_.size() ? doc_frequency_[t] : 0;
}

uint64_t RecordSet::term_frequency(TokenId t) const {
  return t < term_frequency_.size() ? term_frequency_[t] : 0;
}

double RecordSet::average_record_size() const {
  if (empty()) return 0;
  return static_cast<double>(total_occurrences_) /
         static_cast<double>(size());
}

std::vector<RecordId> RecordSet::IdsByDecreasingSize() const {
  std::vector<RecordId> ids(size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](RecordId a, RecordId b) {
    return record_size(a) > record_size(b);
  });
  return ids;
}

std::vector<RecordId> RecordSet::IdsByDecreasingNorm() const {
  std::vector<RecordId> ids(size());
  std::iota(ids.begin(), ids.end(), 0);
  std::stable_sort(ids.begin(), ids.end(), [this](RecordId a, RecordId b) {
    return norms_[a] > norms_[b];
  });
  return ids;
}

uint64_t RecordSet::ApproxMemoryBytes() const {
  uint64_t bytes = 0;
  bytes += token_arena_.size() * sizeof(TokenId);
  bytes += score_arena_.size() * sizeof(double);
  bytes += bitmap_arena_.size() * sizeof(TokenBitmapEntry);
  bytes += offsets_.size() * sizeof(size_t);
  bytes += norms_.size() * sizeof(double);
  bytes += text_lengths_.size() * sizeof(uint32_t);
  bytes += (doc_frequency_.size() + term_frequency_.size()) * sizeof(uint64_t);
  for (const std::string& t : texts_) bytes += sizeof(std::string) + t.size();
  return bytes;
}

const TokenStats& RecordSet::token_stats() const {
  // View sets do not carry corpus frequency tables (mapped segments are
  // probed through their prebuilt per-shard indexes, never re-planned).
  SSJOIN_CHECK(!is_view()) << "RecordSet::token_stats on a view set";
  if (stats_structure_version_ == structure_version_ &&
      stats_score_version_ == score_version_) {
    return token_stats_;
  }
  TokenStats& stats = token_stats_;
  stats.max_token_scores.assign(vocabulary_size(), 0.0);
  for (size_t i = 0; i < token_arena_.size(); ++i) {
    double& slot = stats.max_token_scores[token_arena_[i]];
    slot = std::max(slot, score_arena_[i]);
  }
  stats.tokens_by_frequency.resize(vocabulary_size());
  std::iota(stats.tokens_by_frequency.begin(),
            stats.tokens_by_frequency.end(), 0);
  std::stable_sort(stats.tokens_by_frequency.begin(),
                   stats.tokens_by_frequency.end(),
                   [this](TokenId a, TokenId b) {
                     return doc_frequency_[a] > doc_frequency_[b];
                   });
  stats_structure_version_ = structure_version_;
  stats_score_version_ = score_version_;
  return token_stats_;
}

}  // namespace ssjoin
