#ifndef SSJOIN_DATA_RECORD_SET_H_
#define SSJOIN_DATA_RECORD_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// The join input: an ordered collection of Records plus the corpus-level
/// token statistics the algorithms and weighting schemes need (document
/// frequency for stopword selection and list-length estimates, total term
/// frequency for TF-IDF). Optionally retains the original text of each
/// record for edit-distance verification and for human-readable output.
class RecordSet {
 public:
  RecordSet() = default;

  RecordSet(const RecordSet&) = default;
  RecordSet& operator=(const RecordSet&) = default;
  RecordSet(RecordSet&&) = default;
  RecordSet& operator=(RecordSet&&) = default;

  /// Appends `record` and returns its RecordId. `text` may be empty.
  RecordId Add(Record record, std::string text = {});

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& record(RecordId id) const { return records_[id]; }
  Record& mutable_record(RecordId id) { return records_[id]; }

  const std::vector<Record>& records() const { return records_; }

  /// Original text of record `id`; empty if not retained.
  const std::string& text(RecordId id) const { return texts_[id]; }

  /// Number of distinct tokens seen across all records.
  size_t vocabulary_size() const { return doc_frequency_.size(); }

  /// Number of records containing token `t` (0 for unseen tokens).
  uint64_t doc_frequency(TokenId t) const;

  /// Total occurrences of token `t` over all records, counting within-record
  /// multiplicity recorded at tokenization time. With set semantics this
  /// equals doc_frequency.
  uint64_t term_frequency(TokenId t) const;
  const std::vector<uint64_t>& term_frequencies() const {
    return term_frequency_;
  }

  /// Sum of record sizes == total word occurrences W of Section 4.
  uint64_t total_token_occurrences() const { return total_occurrences_; }

  /// Mean record size (0 for an empty set).
  double average_record_size() const;

  /// Returns record ids sorted by decreasing record size, breaking ties by
  /// id; the Section 3.3 pre-sort order. Does not move the records.
  std::vector<RecordId> IdsByDecreasingSize() const;

  /// Returns record ids sorted by decreasing norm(); the generalized
  /// pre-sort order of Section 5.1.2.
  std::vector<RecordId> IdsByDecreasingNorm() const;

 private:
  std::vector<Record> records_;
  std::vector<std::string> texts_;
  std::vector<uint64_t> doc_frequency_;
  std::vector<uint64_t> term_frequency_;
  uint64_t total_occurrences_ = 0;
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_RECORD_SET_H_
