#ifndef SSJOIN_DATA_RECORD_SET_H_
#define SSJOIN_DATA_RECORD_SET_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/record.h"
#include "data/record_view.h"
#include "data/token_bitmap.h"
#include "text/token_dictionary.h"
#include "util/logging.h"

namespace ssjoin {

/// Corpus-level per-token statistics derived from the records, cached on
/// the RecordSet so join planning (stopword selection, prefix filtering,
/// Word-Groups) does not rescan the whole corpus per join call.
struct TokenStats {
  /// max_token_scores[t] = max over records r of score(t, r); 0 for tokens
  /// absent from the corpus.
  std::vector<double> max_token_scores;
  /// All token ids ordered by decreasing document frequency, ties broken
  /// by increasing token id.
  std::vector<TokenId> tokens_by_frequency;
};

/// The join input: a columnar CSR arena of records plus the corpus-level
/// token statistics the algorithms and weighting schemes need (document
/// frequency for stopword selection and list-length estimates, total term
/// frequency for TF-IDF). Optionally retains the original text of each
/// record for edit-distance verification and for human-readable output.
///
/// Storage layout (the memory spine every hot loop streams over; see
/// DESIGN.md "Memory layout"):
///
///   token_arena_  [t t t | t t | t t t t | ...]   one flat TokenId array
///   score_arena_  [s s s | s s | s s s s | ...]   parallel double array
///   offsets_      [0, 3, 5, 9, ...]               n + 1, monotone
///
/// record(id) materializes a trivially-copyable RecordView over the slice
/// [offsets_[id], offsets_[id+1]); no per-record heap allocations exist.
/// Invariants: tokens within a record are strictly increasing; offsets_
/// is non-decreasing with offsets_[0] == 0 and offsets_[n] == arena size.
///
/// Two storage modes share this one type (see DESIGN.md "Out-of-core
/// segments"):
///   * OWNED (default): every arena lives in the vectors below; Add()
///     grows them. This is every memtable, staged query and hot segment.
///   * VIEW (MakeView): the token/score arenas and text blob are BORROWED
///     pointers into an immutable mapped `.sseg` body, kept alive by a
///     shared backing handle, while the small per-record tables the probe
///     paths gate on (offsets, norms, text lengths, token bitmaps) are
///     heap-resident copies — candidate gating never faults a cold page.
///     View sets are frozen: Add/set_score/text() are illegal; readers go
///     through record()/text_view(), which behave identically in both
///     modes, so probe and merge code never branches on the mode.
class RecordSet {
 public:
  RecordSet() = default;

  RecordSet(const RecordSet&) = default;
  RecordSet& operator=(const RecordSet&) = default;
  RecordSet(RecordSet&&) = default;
  RecordSet& operator=(RecordSet&&) = default;

  /// Appends the builder's tokens/scores to the arena and returns the new
  /// RecordId. `text` may be empty.
  RecordId Add(const Record& record, std::string text = {}) {
    return Add(record.view(), std::move(text));
  }

  /// Appends a copy of `record` (e.g. a view into another RecordSet).
  /// Illegal on a view-mode set (mapped arenas are immutable).
  RecordId Add(RecordView record, std::string text = {});

  /// Borrowed + copied state of a view-mode set; see MakeView.
  struct ViewSpec {
    const TokenId* tokens = nullptr;   // borrowed; total_occurrences long
    const double* scores = nullptr;    // borrowed; parallel to tokens
    const uint64_t* text_offsets = nullptr;  // borrowed; num records + 1
    const char* text_blob = nullptr;         // borrowed
    std::vector<size_t> offsets;             // owned copy; num records + 1
    std::vector<double> norms;               // owned copy
    std::vector<uint32_t> text_lengths;      // owned copy
    std::vector<TokenBitmapEntry> bitmaps;   // owned copy
    uint64_t vocabulary_size = 0;
    uint64_t total_occurrences = 0;
    std::shared_ptr<const void> backing;  // keeps borrowed memory alive
  };

  /// Builds a view-mode set over arenas the caller borrowed (typically a
  /// mapped segment file; `spec.backing` keeps the mapping alive for the
  /// lifetime of this set and every copy of it). The owned-copy tables
  /// must be internally consistent: offsets monotone from 0 to
  /// total_occurrences, all per-record vectors the same length.
  static RecordSet MakeView(ViewSpec spec);

  /// Whether this set borrows its arenas (MakeView) instead of owning
  /// them. Structural mutation is illegal in view mode.
  bool is_view() const { return view_tokens_ != nullptr; }

  size_t size() const { return norms_.size(); }
  bool empty() const { return norms_.empty(); }

  /// View of record `id`; valid until the next Add (the arena may move).
  RecordView record(RecordId id) const {
    size_t begin = offsets_[id];
    const TokenId* tokens =
        view_tokens_ != nullptr ? view_tokens_ : token_arena_.data();
    const double* scores =
        view_scores_ != nullptr ? view_scores_ : score_arena_.data();
    return RecordView(tokens + begin, scores + begin,
                      static_cast<uint32_t>(offsets_[id + 1] - begin),
                      norms_[id], text_lengths_[id]);
  }

  /// Number of tokens of record `id` (without materializing a view).
  size_t record_size(RecordId id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// Record `id`'s fixed-width token parity bitmap (kTokenBitmapWords
  /// words, see data/token_bitmap.h), built by Add alongside the CSR
  /// arena append — every RecordSet carries bitmaps, whether it backs a
  /// compacted segment, a memtable or a staged query, and a decoded
  /// checkpoint rebuilds them bit-identically because decoding re-Adds.
  /// Bitmaps depend only on token SETS, never on scores, so Prepare /
  /// set_score cannot stale them. Valid until the next Add.
  const uint64_t* token_bitmap(RecordId id) const {
    return bitmap_arena_[id].bits;
  }

  /// The full cache-line arena slot (parity bitmap + token count): what
  /// BitmapGate lookups should hand to the merger, so one aligned load
  /// resolves the entire filter input for a candidate.
  const TokenBitmapEntry& token_bitmap_entry(RecordId id) const {
    return bitmap_arena_[id];
  }

  /// Rewrites score(token i, record id); used by Predicate::Prepare.
  /// Value-change detection keeps the token-stats cache warm across
  /// idempotent re-Prepares with the same predicate.
  void set_score(RecordId id, size_t i, double score) {
    double& slot = score_arena_[offsets_[id] + i];
    if (slot != score) {
      slot = score;
      ++score_version_;
    }
  }

  void set_norm(RecordId id, double norm) { norms_[id] = norm; }
  void set_text_length(RecordId id, uint32_t len) { text_lengths_[id] = len; }

  /// Original text of record `id`; empty if not retained. Owned mode
  /// only — view-mode texts live in the mapped blob, use text_view().
  const std::string& text(RecordId id) const {
    SSJOIN_CHECK(!is_view()) << "RecordSet::text on a view set";
    return texts_[id];
  }

  /// Original text of record `id` as a borrowed view; empty if not
  /// retained. Works in both modes — the one text reader probe/merge/
  /// verify paths should use. Valid while the set (or its backing
  /// mapping) is alive.
  std::string_view text_view(RecordId id) const {
    if (view_text_offsets_ != nullptr) {
      uint64_t begin = view_text_offsets_[id];
      uint64_t len = view_text_offsets_[id + 1] - begin;
      if (len == 0) return std::string_view();
      return std::string_view(view_text_blob_ + begin,
                              static_cast<size_t>(len));
    }
    return texts_[id];
  }

  /// Number of distinct tokens seen across all records. In view mode
  /// this is restored from the segment header (the per-token frequency
  /// tables are not rebuilt for mapped segments).
  size_t vocabulary_size() const {
    return is_view() ? static_cast<size_t>(view_vocabulary_size_)
                     : doc_frequency_.size();
  }

  /// Number of records containing token `t` (0 for unseen tokens).
  uint64_t doc_frequency(TokenId t) const;
  const std::vector<uint64_t>& doc_frequencies() const {
    return doc_frequency_;
  }

  /// Total occurrences of token `t` over all records, counting within-record
  /// multiplicity recorded at tokenization time. With set semantics this
  /// equals doc_frequency.
  uint64_t term_frequency(TokenId t) const;
  const std::vector<uint64_t>& term_frequencies() const {
    return term_frequency_;
  }

  /// Sum of record sizes == total word occurrences W of Section 4.
  uint64_t total_token_occurrences() const { return total_occurrences_; }

  /// Mean record size (0 for an empty set).
  double average_record_size() const;

  /// Returns record ids sorted by decreasing record size, breaking ties by
  /// id; the Section 3.3 pre-sort order. Does not move the records.
  std::vector<RecordId> IdsByDecreasingSize() const;

  /// Returns record ids sorted by decreasing norm(); the generalized
  /// pre-sort order of Section 5.1.2.
  std::vector<RecordId> IdsByDecreasingNorm() const;

  /// Approximate heap bytes held by the CSR arenas, offset/norm tables
  /// and retained texts (element counts times element sizes; vector
  /// over-allocation ignored). The serving tier sums this per segment to
  /// report `segment_bytes` without rescanning arenas on every stats
  /// call.
  uint64_t ApproxMemoryBytes() const;

  /// Cached per-token statistics, recomputed lazily when records were
  /// added or scores changed since the last call. Not thread-safe: call
  /// once from the serial planning phase before any parallel fan-out
  /// (every join driver does this before spawning workers).
  const TokenStats& token_stats() const;

 private:
  // Columnar CSR arena (see class comment).
  std::vector<TokenId> token_arena_;
  std::vector<double> score_arena_;
  std::vector<TokenBitmapEntry> bitmap_arena_;  // one cache line per record
  std::vector<size_t> offsets_{0};  // offsets_[n] == arena size
  std::vector<double> norms_;
  std::vector<uint32_t> text_lengths_;
  std::vector<std::string> texts_;

  // View mode (MakeView): borrowed arena pointers, non-null iff is_view().
  // The owned vectors above double as the heap-resident copies (offsets_,
  // norms_, text_lengths_, bitmap_arena_); texts_/token_arena_/
  // score_arena_ stay empty. backing_ pins the borrowed memory.
  const TokenId* view_tokens_ = nullptr;
  const double* view_scores_ = nullptr;
  const uint64_t* view_text_offsets_ = nullptr;
  const char* view_text_blob_ = nullptr;
  uint64_t view_vocabulary_size_ = 0;
  std::shared_ptr<const void> backing_;

  std::vector<uint64_t> doc_frequency_;
  std::vector<uint64_t> term_frequency_;
  uint64_t total_occurrences_ = 0;

  // Token-stats cache, keyed on the two version counters: Add bumps the
  // structure version, set_score bumps the score version only on actual
  // value changes.
  uint64_t structure_version_ = 0;
  uint64_t score_version_ = 0;
  mutable TokenStats token_stats_;
  mutable uint64_t stats_structure_version_ =
      std::numeric_limits<uint64_t>::max();
  mutable uint64_t stats_score_version_ =
      std::numeric_limits<uint64_t>::max();
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_RECORD_SET_H_
