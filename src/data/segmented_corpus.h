#ifndef SSJOIN_DATA_SEGMENTED_CORPUS_H_
#define SSJOIN_DATA_SEGMENTED_CORPUS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/record_set.h"
#include "data/record_view.h"

namespace ssjoin {

/// A non-copying concatenated view over a chain of immutable RecordSet
/// arenas: position p addresses the record at p - offset(s) inside the
/// segment s whose half-open range [offset(s), offset(s+1)) contains p.
/// Appending a segment shares it by shared_ptr — no token, score or text
/// is ever copied, which is the whole point of the segment chain: the
/// serving tier's compaction appends a delta segment in O(delta) and
/// every older segment stays byte-identical behind this view.
///
/// The view itself is cheap to copy (a vector of shared_ptrs plus the
/// cumulative offset table) and immutable-after-build in spirit: Append
/// grows it, nothing shrinks it. Record lookups are O(log segments) via
/// the offset table; chains are short (the tier's merge policy keeps
/// them logarithmic), so this never shows up in profiles.
class SegmentedCorpus {
 public:
  SegmentedCorpus() = default;

  /// Appends one segment to the chain; must be non-null. Empty segments
  /// are accepted and keep their slot, so segment indices stay stable
  /// for Locate callers that align with an external chain.
  void Append(std::shared_ptr<const RecordSet> segment);

  /// Total records across all segments.
  size_t size() const { return offsets_.empty() ? 0 : offsets_.back(); }
  size_t num_segments() const { return segments_.size(); }
  bool empty() const { return size() == 0; }

  /// The segment/local-id pair a global position resolves to.
  struct Location {
    size_t segment;
    RecordId local;
  };
  /// Resolves position `pos` (< size()) to its owning segment.
  Location Locate(RecordId pos) const;

  /// Record / text access across the concatenation, same contracts as
  /// RecordSet::record / RecordSet::text.
  RecordView record(RecordId pos) const;
  const std::string& text(RecordId pos) const;

  /// Direct access to one segment (never null once appended).
  const RecordSet& segment(size_t i) const { return *segments_[i]; }
  /// First position of segment `i` in the concatenated space.
  RecordId segment_offset(size_t i) const { return i == 0 ? 0 : offsets_[i - 1]; }

 private:
  std::vector<std::shared_ptr<const RecordSet>> segments_;
  /// offsets_[i] = records in segments_[0..i] (cumulative, inclusive).
  std::vector<RecordId> offsets_;
};

}  // namespace ssjoin

#endif  // SSJOIN_DATA_SEGMENTED_CORPUS_H_
