#ifndef SSJOIN_DATA_RECORD_VIEW_H_
#define SSJOIN_DATA_RECORD_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "text/token_dictionary.h"

namespace ssjoin {

/// Dense record identifier: position of the record in its RecordSet.
using RecordId = uint32_t;

/// A non-owning view of one record inside the columnar corpus arena (or a
/// Record builder): a span of sorted tokens, the parallel span of scores,
/// and the cached norm / text length. Trivially copyable — this is what
/// every probe loop, predicate and index passes by value instead of
/// chasing per-record heap vectors.
///
/// Invariants (guaranteed by RecordSet/Record construction):
///   * tokens are strictly increasing;
///   * scores has the same extent as tokens (scores[i] = score(tokens[i], r)).
class RecordView {
 public:
  constexpr RecordView() = default;
  constexpr RecordView(const TokenId* tokens, const double* scores,
                       uint32_t size, double norm, uint32_t text_length)
      : tokens_(tokens),
        scores_(scores),
        size_(size),
        norm_(norm),
        text_length_(text_length) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tokens in strictly increasing order.
  std::span<const TokenId> tokens() const { return {tokens_, size_}; }
  /// scores()[i] is the score of tokens()[i].
  std::span<const double> scores() const { return {scores_, size_}; }

  TokenId token(size_t i) const { return tokens_[i]; }
  double score(size_t i) const { return scores_[i]; }

  double norm() const { return norm_; }
  uint32_t text_length() const { return text_length_; }

  /// Binary-searches for `t`; returns its position or SIZE_MAX.
  size_t Find(TokenId t) const {
    const TokenId* end = tokens_ + size_;
    const TokenId* it = std::lower_bound(tokens_, end, t);
    if (it == end || *it != t) return SIZE_MAX;
    return static_cast<size_t>(it - tokens_);
  }
  bool Contains(TokenId t) const { return Find(t) != SIZE_MAX; }

  /// Sum over common tokens of score(w, r) * score(w, s): the match amount
  /// of the general framework. Linear in size() + other.size().
  double OverlapWith(RecordView other) const {
    double total = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < size_ && j < other.size_) {
      if (tokens_[i] < other.tokens_[j]) {
        ++i;
      } else if (tokens_[i] > other.tokens_[j]) {
        ++j;
      } else {
        total += scores_[i] * other.scores_[j];
        ++i;
        ++j;
      }
    }
    return total;
  }

  /// Number of common tokens, ignoring scores.
  size_t IntersectionSize(RecordView other) const {
    size_t count = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < size_ && j < other.size_) {
      if (tokens_[i] < other.tokens_[j]) {
        ++i;
      } else if (tokens_[i] > other.tokens_[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

 private:
  const TokenId* tokens_ = nullptr;
  const double* scores_ = nullptr;
  uint32_t size_ = 0;
  double norm_ = 0;
  uint32_t text_length_ = 0;
};

static_assert(std::is_trivially_copyable_v<RecordView>);

}  // namespace ssjoin

#endif  // SSJOIN_DATA_RECORD_VIEW_H_
