#include "data/citation_generator.h"

#include <algorithm>
#include <sstream>

#include "data/synth_text.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ssjoin {

namespace {

struct Paper {
  std::vector<std::string> author_first;  // parallel with author_last
  std::vector<std::string> author_last;
  std::vector<std::string> title_words;
  std::string venue;
  int year;
  int first_page;
  int last_page;
};

std::string RenderCitation(const Paper& paper, bool abbreviate_first_names) {
  std::ostringstream out;
  for (size_t i = 0; i < paper.author_last.size(); ++i) {
    if (i > 0) out << ", ";
    if (abbreviate_first_names) {
      out << paper.author_first[i][0] << ". ";
    } else {
      out << paper.author_first[i] << " ";
    }
    out << paper.author_last[i];
  }
  out << ". ";
  for (size_t i = 0; i < paper.title_words.size(); ++i) {
    if (i > 0) out << " ";
    out << paper.title_words[i];
  }
  out << ". " << paper.venue << ", " << paper.year << ", pages "
      << paper.first_page << "-" << paper.last_page << ".";
  return out.str();
}

}  // namespace

CitationGenerator::CitationGenerator(CitationGeneratorOptions options)
    : options_(options) {
  SSJOIN_CHECK(options_.num_records > 0);
  if (options_.title_vocabulary == 0) {
    // Scale Table 1's 70000 words / 250000 records, with a floor so tiny
    // test corpora still have a usable vocabulary.
    options_.title_vocabulary = std::max<uint32_t>(
        500, static_cast<uint32_t>(0.28 * options_.num_records));
  }
}

std::vector<std::string> CitationGenerator::Generate() const {
  return GenerateWithProvenance().texts;
}

GeneratedCitations CitationGenerator::GenerateWithProvenance() const {
  Rng rng(options_.seed);
  std::vector<std::string> words =
      SynthesizeWordPool(options_.title_vocabulary, rng);
  std::vector<std::string> last_names =
      SynthesizeNamePool(options_.num_authors, rng);
  std::vector<std::string> first_names =
      SynthesizeNamePool(options_.num_authors, rng);
  std::vector<std::string> venues = SynthesizeNamePool(options_.num_venues, rng);
  ZipfTable word_zipf(options_.title_vocabulary, options_.zipf_exponent);
  ZipfTable author_zipf(options_.num_authors, 0.8);
  ZipfTable venue_zipf(options_.num_venues, 0.9);

  std::vector<Paper> base_papers;
  GeneratedCitations out;
  out.texts.reserve(options_.num_records);
  out.paper_id.reserve(options_.num_records);

  for (uint32_t i = 0; i < options_.num_records; ++i) {
    bool make_duplicate =
        !base_papers.empty() && rng.Bernoulli(options_.duplicate_fraction);
    if (!make_duplicate) {
      Paper paper;
      int num_authors = rng.UniformInt(options_.min_authors_per_paper,
                                       options_.max_authors_per_paper);
      for (int a = 0; a < num_authors; ++a) {
        uint32_t who = author_zipf.Sample(rng);
        paper.author_first.push_back(first_names[who]);
        paper.author_last.push_back(last_names[who]);
      }
      int num_words =
          rng.UniformInt(options_.min_title_words, options_.max_title_words);
      for (int w = 0; w < num_words; ++w) {
        paper.title_words.push_back(words[word_zipf.Sample(rng)]);
      }
      paper.venue = venues[venue_zipf.Sample(rng)];
      paper.year = rng.UniformInt(1975, 2004);
      paper.first_page = rng.UniformInt(1, 800);
      paper.last_page = paper.first_page + rng.UniformInt(5, 25);
      out.paper_id.push_back(static_cast<uint32_t>(base_papers.size()));
      base_papers.push_back(paper);
      out.texts.push_back(RenderCitation(paper, rng.Bernoulli(0.5)));
      continue;
    }

    // Perturbed re-citation of an earlier paper. Popularity is heavy-
    // tailed like real citation counts: squaring the uniform draw skews
    // picks toward early (famous) papers, giving the deep duplicate
    // clusters that make Probe-Cluster shine on this corpus.
    double u = rng.NextDouble();
    size_t base_index = static_cast<size_t>(u * u * base_papers.size());
    base_index = std::min(base_index, base_papers.size() - 1);
    Paper paper = base_papers[base_index];
    out.paper_id.push_back(static_cast<uint32_t>(base_index));
    std::vector<std::string> kept_words;
    for (std::string& word : paper.title_words) {
      if (rng.Bernoulli(options_.drop_word_prob)) continue;
      if (rng.Bernoulli(options_.typo_word_prob)) word = ApplyTypo(word, rng);
      kept_words.push_back(std::move(word));
    }
    if (kept_words.empty()) kept_words.push_back(words[word_zipf.Sample(rng)]);
    paper.title_words = std::move(kept_words);
    if (rng.Bernoulli(options_.change_pages_prob)) {
      paper.first_page = rng.UniformInt(1, 800);
      paper.last_page = paper.first_page + rng.UniformInt(5, 25);
    }
    out.texts.push_back(
        RenderCitation(paper, rng.Bernoulli(options_.abbreviate_prob)));
  }
  return out;
}

}  // namespace ssjoin
