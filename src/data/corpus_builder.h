#ifndef SSJOIN_DATA_CORPUS_BUILDER_H_
#define SSJOIN_DATA_CORPUS_BUILDER_H_

#include <string>
#include <vector>

#include "data/record_set.h"
#include "text/token_dictionary.h"

namespace ssjoin {

/// Options for turning raw text records into a RecordSet.
struct CorpusBuilderOptions {
  /// Retain the normalized text on each record (needed for edit-distance
  /// verification and readable example output).
  bool keep_text = true;
  /// Run the Normalizer (lowercase, strip punctuation) first.
  bool normalize = true;
};

/// Table 1's "All-words" style corpus: each record is the set of words in
/// its text. `dict` accumulates the token vocabulary and may be shared
/// across corpora.
RecordSet BuildWordCorpus(const std::vector<std::string>& texts,
                          TokenDictionary* dict,
                          const CorpusBuilderOptions& options = {});

/// Table 1's "All-3grams" style corpus with configurable q: each record is
/// the set of q-grams of its (padded) text. text_length is set so the
/// edit-distance predicate can evaluate its threshold.
RecordSet BuildQGramCorpus(const std::vector<std::string>& texts, int q,
                           TokenDictionary* dict,
                           const CorpusBuilderOptions& options = {});

}  // namespace ssjoin

#endif  // SSJOIN_DATA_CORPUS_BUILDER_H_
