#include "data/address_generator.h"

#include <sstream>

#include "data/synth_text.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ssjoin {

AddressGenerator::AddressGenerator(AddressGeneratorOptions options)
    : options_(options) {
  SSJOIN_CHECK(options_.num_records > 0);
}

std::vector<AddressRecord> AddressGenerator::Generate() const {
  Rng rng(options_.seed);
  std::vector<std::string> last_names =
      SynthesizeNamePool(options_.num_last_names, rng);
  std::vector<std::string> first_names =
      SynthesizeNamePool(options_.num_first_names, rng);
  std::vector<std::string> streets = SynthesizeNamePool(options_.num_streets, rng);
  std::vector<std::string> areas = SynthesizeNamePool(options_.num_areas, rng);
  std::vector<std::string> cities = SynthesizeNamePool(options_.num_cities, rng);
  ZipfTable last_zipf(options_.num_last_names, 0.9);
  ZipfTable first_zipf(options_.num_first_names, 0.9);
  ZipfTable street_zipf(options_.num_streets, 0.8);
  ZipfTable area_zipf(options_.num_areas, 0.7);
  ZipfTable city_zipf(options_.num_cities, 1.2);

  std::vector<AddressRecord> out;
  out.reserve(options_.num_records);

  for (uint32_t i = 0; i < options_.num_records; ++i) {
    bool make_duplicate =
        !out.empty() && rng.Bernoulli(options_.duplicate_fraction);
    if (make_duplicate) {
      const AddressRecord& base =
          out[rng.UniformU32(static_cast<uint32_t>(out.size()))];
      AddressRecord dup;
      int typos = rng.UniformInt(1, options_.max_typos_per_duplicate);
      // Distribute typos over name and address proportionally to length.
      int name_typos = 0;
      for (int t = 0; t < typos; ++t) {
        double name_share = static_cast<double>(base.name.size()) /
                            (base.name.size() + base.address.size() + 1.0);
        if (rng.Bernoulli(name_share)) ++name_typos;
      }
      dup.name = ApplyTypos(base.name, name_typos, rng);
      dup.address = ApplyTypos(base.address, typos - name_typos, rng);
      out.push_back(std::move(dup));
      continue;
    }

    AddressRecord rec;
    {
      std::ostringstream name;
      name << last_names[last_zipf.Sample(rng)] << " "
           << first_names[first_zipf.Sample(rng)];
      if (rng.Bernoulli(0.3)) {
        name << " " << first_names[first_zipf.Sample(rng)];
      }
      rec.name = name.str();
    }
    {
      std::ostringstream addr;
      addr << rng.UniformInt(1, 999) << " " << streets[street_zipf.Sample(rng)];
      if (rng.Bernoulli(0.3)) addr << " Rd";
      addr << " " << areas[area_zipf.Sample(rng)] << " "
           << cities[city_zipf.Sample(rng)] << " " << rng.UniformInt(400001, 411062);
      rec.address = addr.str();
    }
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<std::string> AddressGenerator::GenerateFullTexts() const {
  std::vector<AddressRecord> records = Generate();
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const AddressRecord& r : records) out.push_back(r.FullText());
  return out;
}

}  // namespace ssjoin
