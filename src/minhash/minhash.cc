#include "minhash/minhash.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/rng.h"

namespace ssjoin {

MinHasher::MinHasher(int k, uint64_t seed) {
  SSJOIN_CHECK(k > 0);
  Rng rng(seed);
  mul_.reserve(k);
  add_.reserve(k);
  for (int i = 0; i < k; ++i) {
    mul_.push_back(rng.NextU64() | 1);  // odd multiplier
    add_.push_back(rng.NextU64());
  }
}

uint64_t MinHasher::HashWith(size_t i, uint32_t id) const {
  // Multiply-shift style mixing; full 64-bit avalanche via xorshift steps.
  uint64_t x = (static_cast<uint64_t>(id) + add_[i]) * mul_[i];
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<uint32_t>& ids) const {
  std::vector<uint64_t> sig = EmptySignature();
  for (uint32_t id : ids) Absorb(&sig, id);
  return sig;
}

double MinHasher::EstimateResemblance(const std::vector<uint64_t>& sig1,
                                      const std::vector<uint64_t>& sig2) {
  SSJOIN_CHECK(sig1.size() == sig2.size());
  SSJOIN_CHECK(!sig1.empty());
  size_t equal = 0;
  for (size_t i = 0; i < sig1.size(); ++i) {
    if (sig1[i] == sig2[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(sig1.size());
}

void MinHasher::Absorb(std::vector<uint64_t>* signature, uint32_t id) const {
  SSJOIN_DCHECK(signature->size() == mul_.size());
  for (size_t i = 0; i < mul_.size(); ++i) {
    (*signature)[i] = std::min((*signature)[i], HashWith(i, id));
  }
}

std::vector<uint64_t> MinHasher::EmptySignature() const {
  return std::vector<uint64_t>(mul_.size(),
                               std::numeric_limits<uint64_t>::max());
}

}  // namespace ssjoin
