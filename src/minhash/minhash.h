#ifndef SSJOIN_MINHASH_MINHASH_H_
#define SSJOIN_MINHASH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssjoin {

/// k-signature MinHash over sets of 32-bit ids (Section 2.3). Each of the
/// k hash functions defines a pseudo-random order of ids; the signature
/// component is the minimum hash value in that order. The probability
/// that two sets agree on one component equals their Jaccard resemblance,
/// so the fraction of equal components estimates it.
class MinHasher {
 public:
  /// Requires k > 0. `seed` derives the k independent hash functions.
  MinHasher(int k, uint64_t seed);

  int k() const { return static_cast<int>(mul_.size()); }

  /// Signature of a set given as (possibly unsorted) ids.
  std::vector<uint64_t> Signature(const std::vector<uint32_t>& ids) const;

  /// Fraction of equal components: the S(g1, g2) estimator of Section 2.3.
  /// Requires both signatures to come from this hasher (same k).
  static double EstimateResemblance(const std::vector<uint64_t>& sig1,
                                    const std::vector<uint64_t>& sig2);

  /// Incremental form: a signature can absorb additional ids one at a
  /// time, which the Word-Groups compaction uses as groups grow.
  void Absorb(std::vector<uint64_t>* signature, uint32_t id) const;

  /// Identity element for Absorb (all components at +infinity).
  std::vector<uint64_t> EmptySignature() const;

 private:
  uint64_t HashWith(size_t i, uint32_t id) const;

  std::vector<uint64_t> mul_;
  std::vector<uint64_t> add_;
};

}  // namespace ssjoin

#endif  // SSJOIN_MINHASH_MINHASH_H_
