#ifndef SSJOIN_TESTS_TEST_UTIL_H_
#define SSJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "data/record_set.h"
#include "util/rng.h"

namespace ssjoin {
namespace testing_util {

/// Shape knobs for random synthetic record sets used across tests.
struct RandomSetOptions {
  uint32_t num_records = 200;
  uint32_t vocabulary = 120;   // small vocab => plenty of overlap
  int min_tokens = 3;
  int max_tokens = 18;
  double zipf_exponent = 0.9;  // skewed token frequencies like real text
  /// Fraction of records cloned from an earlier record with a few token
  /// edits (creates guaranteed high-overlap pairs).
  double duplicate_fraction = 0.3;
  int max_duplicate_edits = 3;
};

/// Deterministic random lowercase ASCII string.
inline std::string RandomAsciiString(Rng& rng, int min_len, int max_len) {
  int len = rng.UniformInt(min_len, max_len);
  std::string s(len, 'a');
  for (char& c : s) c = static_cast<char>('a' + rng.UniformU32(26));
  return s;
}

/// Deterministic random RecordSet (unit scores; Prepare installs real
/// scores later). Texts are synthesized as space-joined token names so
/// predicates needing text still work; text_length is set from the text.
inline RecordSet MakeRandomRecordSet(const RandomSetOptions& options,
                                     uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(options.vocabulary, options.zipf_exponent);
  RecordSet set;
  std::vector<std::vector<TokenId>> raw;
  for (uint32_t i = 0; i < options.num_records; ++i) {
    std::vector<TokenId> tokens;
    if (!raw.empty() && rng.Bernoulli(options.duplicate_fraction)) {
      tokens = raw[rng.UniformU32(static_cast<uint32_t>(raw.size()))];
      int edits = rng.UniformInt(0, options.max_duplicate_edits);
      for (int e = 0; e < edits && !tokens.empty(); ++e) {
        uint32_t pos = rng.UniformU32(static_cast<uint32_t>(tokens.size()));
        if (rng.Bernoulli(0.5)) {
          tokens[pos] = zipf.Sample(rng);
        } else {
          tokens.erase(tokens.begin() + pos);
        }
      }
      if (tokens.empty()) tokens.push_back(zipf.Sample(rng));
    } else {
      int count = rng.UniformInt(options.min_tokens, options.max_tokens);
      for (int t = 0; t < count; ++t) tokens.push_back(zipf.Sample(rng));
    }
    raw.push_back(tokens);
    Record record = Record::FromTokens(tokens);
    std::string text;
    for (size_t t = 0; t < record.size(); ++t) {
      if (t > 0) text += ' ';
      text += 'w' + std::to_string(record.token(t));
    }
    record.set_text_length(static_cast<uint32_t>(text.size()));
    set.Add(std::move(record), std::move(text));
  }
  return set;
}

/// Pairs as a sorted vector for set comparison in EXPECT_EQ.
inline std::vector<std::pair<RecordId, RecordId>> SortedPairs(
    std::vector<std::pair<RecordId, RecordId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace testing_util
}  // namespace ssjoin

#endif  // SSJOIN_TESTS_TEST_UTIL_H_
