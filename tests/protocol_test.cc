// Unit tests for the shared serve/protocol grammar and the net/wire
// framing: every command form parses the way the REPL documents, every
// malformed input produces the REPL's exact ERR string, the dispatcher's
// output bytes match the service's own format helpers, ExecuteBatch is
// byte-identical to one-at-a-time Execute, and both wire codecs survive
// a pipelined stream split at EVERY byte boundary.

#include "serve/protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/jaccard_predicate.h"
#include "data/corpus_builder.h"
#include "net/wire.h"
#include "serve/similarity_service.h"
#include "text/token_dictionary.h"

namespace ssjoin {
namespace {

// -------------------------------------------------------------------
// ParseRequest: the grammar, command by command.

TEST(ParseRequestTest, BlankLinesAreNone) {
  EXPECT_EQ(ParseRequest("").type, RequestType::kNone);
  EXPECT_EQ(ParseRequest("   \t  ").type, RequestType::kNone);
  EXPECT_EQ(ParseRequest("\r").type, RequestType::kNone);
}

TEST(ParseRequestTest, BareTextIsAQueryKeepingTheRawLine) {
  Request request = ParseRequest("set joins on similarity");
  EXPECT_EQ(request.type, RequestType::kQuery);
  EXPECT_EQ(request.text, "set joins on similarity");
}

TEST(ParseRequestTest, LeadingWhitespaceSuppressesTheSigil) {
  // The sigil is the line's FIRST byte, exactly like the REPL: a line
  // that leads with whitespace is a bare query even if a sigil follows.
  Request request = ParseRequest(" + not an insert");
  EXPECT_EQ(request.type, RequestType::kQuery);
  EXPECT_EQ(request.text, " + not an insert");
}

TEST(ParseRequestTest, ExplicitQueryTrimsItsArgument) {
  Request request = ParseRequest("?   padded text \t");
  EXPECT_EQ(request.type, RequestType::kQuery);
  EXPECT_EQ(request.text, "padded text");
}

TEST(ParseRequestTest, StatsForms) {
  EXPECT_EQ(ParseRequest("?").type, RequestType::kStats);
  EXPECT_EQ(ParseRequest("? stats").type, RequestType::kStats);
  EXPECT_EQ(ParseRequest("?  stats  ").type, RequestType::kStats);
  EXPECT_EQ(ParseRequest("stats").type, RequestType::kStats);
  EXPECT_EQ(ParseRequest("  stats  ").type, RequestType::kStats);
}

TEST(ParseRequestTest, InsertTrimsText) {
  Request request = ParseRequest("+  new record text ");
  EXPECT_EQ(request.type, RequestType::kInsert);
  EXPECT_EQ(request.text, "new record text");
  // Empty text is legal (the REPL documents it).
  EXPECT_EQ(ParseRequest("+").type, RequestType::kInsert);
  EXPECT_EQ(ParseRequest("+").text, "");
}

TEST(ParseRequestTest, DeleteParsesTheId) {
  Request request = ParseRequest("- 17");
  EXPECT_EQ(request.type, RequestType::kDelete);
  EXPECT_EQ(request.id, 17u);
  EXPECT_EQ(request.text, "17");
}

TEST(ParseRequestTest, MalformedDeletesCarryTheReplErrString) {
  for (const char* line :
       {"- not-a-number", "-", "- -3", "- +3", "- 12x", "- 4294967296"}) {
    Request request = ParseRequest(line);
    EXPECT_EQ(request.type, RequestType::kMalformed) << line;
    EXPECT_EQ(request.error, "malformed delete '" + std::string(line) +
                                 "' (want '- <id>')")
        << line;
  }
  // Largest 32-bit id still parses.
  EXPECT_EQ(ParseRequest("- 4294967295").type, RequestType::kDelete);
}

TEST(ParseRequestTest, TopKParsesKAndText) {
  Request request = ParseRequest("?k 3 some query text");
  EXPECT_EQ(request.type, RequestType::kTopK);
  EXPECT_EQ(request.k, 3u);
  EXPECT_EQ(request.text, "some query text");
  // Tab separators work too.
  request = ParseRequest("?k\t5\tother");
  EXPECT_EQ(request.type, RequestType::kTopK);
  EXPECT_EQ(request.k, 5u);
  EXPECT_EQ(request.text, "other");
}

TEST(ParseRequestTest, MalformedTopKCarriesTheReplErrString) {
  for (const char* line : {"?k", "?k ", "?k abc text", "?k 0 text"}) {
    Request request = ParseRequest(line);
    EXPECT_EQ(request.type, RequestType::kMalformed) << line;
    EXPECT_EQ(request.error, "malformed top-k '" + std::string(line) +
                                 "' (want '?k <k> <text>')")
        << line;
  }
  // "?kxyz" is not the top-k form: it queries for "kxyz".
  Request request = ParseRequest("?kxyz");
  EXPECT_EQ(request.type, RequestType::kQuery);
  EXPECT_EQ(request.text, "kxyz");
}

TEST(ParseRequestTest, CompactForms) {
  EXPECT_EQ(ParseRequest("!").type, RequestType::kCompact);
  EXPECT_EQ(ParseRequest("! compact").type, RequestType::kCompact);
  Request request = ParseRequest("! compactify");
  EXPECT_EQ(request.type, RequestType::kMalformed);
  EXPECT_EQ(request.error,
            "unknown command '! compactify' (want '! compact')");
}

// -------------------------------------------------------------------
// ServiceDispatcher: output bytes match the service's own formatting.

std::vector<std::string> TestCorpusLines() {
  return {
      "efficient set joins on similarity predicates",
      "efficient set joins with similarity predicates",
      "an unrelated record about inverted indexes",
      "set joins on similarity predicates",
      "totally different text entirely",
  };
}

struct DispatcherFixture {
  DispatcherFixture()
      : pred(0.5),
        service(BuildWordCorpus(TestCorpusLines(), &dict), pred),
        dispatcher(&service, [this](const std::vector<std::string>& lines) {
          return BuildWordCorpus(lines, &dict);
        }) {}

  Response Run(const std::string& line) {
    return dispatcher.Execute(ParseRequest(line));
  }

  TokenDictionary dict;
  JaccardPredicate pred;
  SimilarityService service;
  ServiceDispatcher dispatcher;
};

TEST(ServiceDispatcherTest, QueryMatchesTheServiceFormatting) {
  DispatcherFixture fx;
  // Interning is idempotent, so probing through the same dictionary the
  // dispatcher uses leaves it unchanged.
  RecordSet staged = BuildWordCorpus(
      {"efficient set joins on similarity predicates"}, &fx.dict);
  std::string expected =
      FormatMatches(fx.service.Query(staged.record(0), staged.text(0)));
  Response response = fx.Run("efficient set joins on similarity predicates");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.payload, expected);
  EXPECT_FALSE(response.payload.empty());  // self-match at least
}

TEST(ServiceDispatcherTest, InsertDeleteCompactAcknowledge) {
  DispatcherFixture fx;
  Response inserted = fx.Run("+ a brand new record about set joins");
  ASSERT_TRUE(inserted.ok);
  EXPECT_EQ(inserted.payload, FormatInserted(5));

  Response deleted = fx.Run("- 5");
  ASSERT_TRUE(deleted.ok);
  EXPECT_EQ(deleted.payload, FormatDeleted(5));

  Response missing = fx.Run("- 5");
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.payload, "no live record with id 5");

  Response compacted = fx.Run("! compact");
  ASSERT_TRUE(compacted.ok);
  EXPECT_EQ(compacted.payload,
            FormatCompacted(fx.service.size(), fx.service.epoch()));
}

TEST(ServiceDispatcherTest, StatsIsTheServiceJsonPlusNewline) {
  DispatcherFixture fx;
  Response response = fx.Run("? stats");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.payload, fx.service.StatsJson() + "\n");
}

TEST(ServiceDispatcherTest, StatsDecoratorRuns) {
  TokenDictionary dict;
  JaccardPredicate pred(0.5);
  SimilarityService service(BuildWordCorpus(TestCorpusLines(), &dict), pred);
  ServiceDispatcher dispatcher(
      &service,
      [&dict](const std::vector<std::string>& lines) {
        return BuildWordCorpus(lines, &dict);
      },
      /*default_topk=*/0, /*before_insert=*/{},
      [](std::string json) {
        return AppendNetSection(std::move(json), NetStats{});
      });
  Response response = dispatcher.Execute(ParseRequest("stats"));
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.payload.find("\"net\""), std::string::npos);
  EXPECT_EQ(response.payload.back(), '\n');
}

TEST(ServiceDispatcherTest, MalformedRequestsEchoTheError) {
  DispatcherFixture fx;
  Response response = fx.Run("- nope");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.payload, "malformed delete '- nope' (want '- <id>')");
}

TEST(ServiceDispatcherTest, BeforeInsertHookRunsPerInsert) {
  TokenDictionary dict;
  JaccardPredicate pred(0.5);
  SimilarityService service(BuildWordCorpus(TestCorpusLines(), &dict), pred);
  int hook_runs = 0;
  ServiceDispatcher dispatcher(
      &service,
      [&dict](const std::vector<std::string>& lines) {
        return BuildWordCorpus(lines, &dict);
      },
      /*default_topk=*/0, [&hook_runs] { ++hook_runs; });
  dispatcher.Execute(ParseRequest("+ one record"));
  dispatcher.Execute(ParseRequest("+ two records"));
  dispatcher.Execute(ParseRequest("some query"));
  EXPECT_EQ(hook_runs, 2);
}

// ExecuteBatch (the pipelined path, query runs >= 2 riding BatchQuery)
// must be byte-identical to one-at-a-time Execute on a twin service.
TEST(ServiceDispatcherTest, ExecuteBatchMatchesSequentialExecution) {
  std::vector<std::string> script = {
      "efficient set joins on similarity predicates",
      "set joins on similarity predicates",
      "an unrelated record about inverted indexes",  // 3-query run
      "+ efficient set joins on similarity predicates again",
      "efficient set joins on similarity predicates",
      "totally different text entirely",  // 2-query run after a write
      "- 2",
      "?k 2 set joins on similarity predicates",
      "! compact",
      "efficient set joins with similarity predicates",  // lone query
      // NOT "? stats": the batch path legitimately counts its query run
      // under batch_queries where serial execution counts point_queries,
      // so the stats JSON is the one response that may differ.
  };
  std::vector<Request> requests;
  for (const std::string& line : script) {
    requests.push_back(ParseRequest(line));
  }

  DispatcherFixture batch_fx;
  DispatcherFixture serial_fx;
  std::vector<Response> batched = batch_fx.dispatcher.ExecuteBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Response expected = serial_fx.dispatcher.Execute(requests[i]);
    EXPECT_EQ(batched[i].ok, expected.ok) << script[i];
    EXPECT_EQ(batched[i].payload, expected.payload) << script[i];
  }
}

// -------------------------------------------------------------------
// LineFramer: pipelined request framing, split at every byte boundary.

std::vector<std::string> FrameAll(net::LineFramer* framer,
                                  std::string_view data) {
  std::vector<std::string> lines;
  EXPECT_TRUE(framer->Feed(
      data, [&lines](std::string_view line) { lines.emplace_back(line); }));
  return lines;
}

TEST(LineFramerTest, SplitAtEveryByteBoundary) {
  const std::string stream = "+ first record\r\n- 12\n\n? stats\nquery text\n";
  const std::vector<std::string> expected = {"+ first record", "- 12", "",
                                             "? stats", "query text"};
  for (size_t split = 0; split <= stream.size(); ++split) {
    net::LineFramer framer(1 << 16);
    std::vector<std::string> lines = FrameAll(&framer, stream.substr(0, split));
    std::vector<std::string> tail = FrameAll(&framer, stream.substr(split));
    lines.insert(lines.end(), tail.begin(), tail.end());
    EXPECT_EQ(lines, expected) << "split at byte " << split;
    EXPECT_EQ(framer.pending_bytes(), 0u) << "split at byte " << split;
  }
}

TEST(LineFramerTest, ByteAtATime) {
  const std::string stream = "abc\ndef\r\nghi\n";
  net::LineFramer framer(1 << 16);
  std::vector<std::string> lines;
  for (char byte : stream) {
    ASSERT_TRUE(framer.Feed(std::string_view(&byte, 1),
                            [&lines](std::string_view line) {
                              lines.emplace_back(line);
                            }));
  }
  EXPECT_EQ(lines, (std::vector<std::string>{"abc", "def", "ghi"}));
}

TEST(LineFramerTest, OversizeLinePoisons) {
  net::LineFramer framer(8);
  // 9 bytes without a newline: over the limit, poisoned for good.
  EXPECT_FALSE(framer.Feed("123456789", [](std::string_view) {
    FAIL() << "no line should be emitted";
  }));
  EXPECT_TRUE(framer.poisoned());
  EXPECT_FALSE(framer.Feed("\n", [](std::string_view) {}));

  // Exactly the limit is fine.
  net::LineFramer exact(8);
  std::vector<std::string> lines = FrameAll(&exact, "12345678\n");
  EXPECT_EQ(lines, (std::vector<std::string>{"12345678"}));

  // The limit also applies across buffered chunks.
  net::LineFramer split(8);
  EXPECT_TRUE(split.Feed("12345", [](std::string_view) {}));
  EXPECT_FALSE(split.Feed("6789\n", [](std::string_view) {
    FAIL() << "no line should be emitted";
  }));
  EXPECT_TRUE(split.poisoned());
}

// -------------------------------------------------------------------
// ResponseReader: the client-side decoder for "OK <n>\n<payload>" /
// "ERR <msg>\n" frames, split at every byte boundary.

TEST(ResponseReaderTest, SplitAtEveryByteBoundary) {
  const std::string payload = "0\t1\n3\t0.75\n";
  const std::string stream = net::OkFrame(payload) + net::ErrFrame("boom") +
                             net::OkFrame("") +
                             net::OkFrame("ends without newline");
  for (size_t split = 0; split <= stream.size(); ++split) {
    net::ResponseReader reader;
    std::vector<net::WireResponse> responses;
    ASSERT_TRUE(reader.Feed(stream.substr(0, split), &responses));
    ASSERT_TRUE(reader.Feed(stream.substr(split), &responses));
    ASSERT_EQ(responses.size(), 4u) << "split at byte " << split;
    EXPECT_TRUE(responses[0].ok);
    EXPECT_EQ(responses[0].payload, payload);
    EXPECT_FALSE(responses[1].ok);
    EXPECT_EQ(responses[1].payload, "boom");
    EXPECT_TRUE(responses[2].ok);
    EXPECT_EQ(responses[2].payload, "");
    EXPECT_TRUE(responses[3].ok);
    EXPECT_EQ(responses[3].payload, "ends without newline");
    EXPECT_TRUE(reader.idle()) << "split at byte " << split;
  }
}

TEST(ResponseReaderTest, RejectsGarbageHeaders) {
  net::ResponseReader reader;
  std::vector<net::WireResponse> responses;
  EXPECT_FALSE(reader.Feed("WAT 12\n", &responses));

  net::ResponseReader bad_length;
  EXPECT_FALSE(bad_length.Feed("OK nope\n", &responses));
}

TEST(ResponseReaderTest, BoundsThePayload) {
  net::ResponseReader reader(/*max_payload_bytes=*/16);
  std::vector<net::WireResponse> responses;
  EXPECT_FALSE(reader.Feed("OK 17\n", &responses));
}

}  // namespace
}  // namespace ssjoin
